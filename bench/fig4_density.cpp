// Reproduces Figure 4: density distributions of the average-probability
// output, normal vs abnormal traces, with C4.5, plus the decision-threshold
// line, for all four scenarios.
//
// Paper shape expectations:
//  * normal and abnormal densities are clearly distinct;
//  * DSR leaves more abnormal mass on the "normal" side of the threshold
//    than AODV (i.e. AODV detects better).

#include <cstdio>

#include "bench/common.h"
#include "bench/registry.h"

namespace xfa::bench {
namespace {

int run_plan() {
  using namespace xfa;
  using namespace xfa::bench;

  print_rule('=');
  std::printf("Figure 4: average-probability density, normal vs abnormal "
              "(C4.5)\n");
  print_rule('=');

  double aodv_missed = 0, dsr_missed = 0;
  for (const ScenarioCombo& combo : paper_scenarios()) {
    const ExperimentData data = gather_experiment(
        combo.routing, combo.transport, paper_mixed_options());
    const Cell cell = evaluate(data, make_c45_factory());
    const double theta = cell.detector.threshold_probability;

    const auto normal_scores = pooled(cell.normal_scores,
                                      ScoreKind::Probability);
    // Abnormal density uses post-onset windows only (the labelled events).
    std::vector<double> abnormal_scores;
    for (std::size_t t = 0; t < cell.abnormal_scores.size(); ++t)
      for (std::size_t i = 0; i < cell.abnormal_scores[t].size(); ++i)
        if (cell.data->abnormal[t].labels[i] != 0)
          abnormal_scores.push_back(
              cell.abnormal_scores[t][i].avg_probability);

    const DensityHistogram normal_hist = density_histogram(normal_scores, 25);
    const DensityHistogram abnormal_hist =
        density_histogram(abnormal_scores, 25);

    std::printf("\n--- %s (threshold = %.3f; left of it = anomaly) ---\n",
                combo.name.c_str(), theta);
    std::printf("  %-8s %-12s %-12s\n", "score", "normal", "abnormal");
    for (std::size_t b = 0; b < normal_hist.bins(); ++b)
      std::printf("  %-8.2f %-12.3f %-12.3f\n", normal_hist.bin_centers[b],
                  normal_hist.density[b], abnormal_hist.density[b]);

    const double false_alarm_mass = mass_below(normal_hist, theta);
    const double missed_mass = 1.0 - mass_below(abnormal_hist, theta);
    std::printf("  normal mass left of threshold (false alarms):   %.3f\n",
                false_alarm_mass);
    std::printf("  abnormal mass right of threshold (missed):      %.3f\n",
                missed_mass);
    (combo.routing == RoutingKind::Aodv ? aodv_missed : dsr_missed) +=
        missed_mass / 2;
  }

  print_rule('=');
  std::printf("shape check: DSR leaves more abnormal mass undetected than "
              "AODV?  %s (AODV %.3f vs DSR %.3f)\n",
              dsr_missed > aodv_missed ? "YES" : "no", aodv_missed,
              dsr_missed);
  return 0;
}

const PlanRegistrar registrar{"fig4",
                              "Figure 4: average-probability density distributions with threshold, C4.5",
                              run_plan};

}  // namespace
}  // namespace xfa::bench
