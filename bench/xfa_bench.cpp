// The one bench driver: runs any registered ExperimentPlan (figures, tables,
// ablations, smoke). See bench/registry.h for the CLI contract.
#include "bench/registry.h"

int main(int argc, char** argv) {
  return xfa::bench::run_plan_cli(argc, argv);
}
