// Ablation D: cross-scenario generalization. The paper's evaluation keeps
// one mobility scenario and one connection pattern per experiment (the ns-2
// reused-scenario-file convention); this ablation measures how much accuracy
// is lost when evaluation traces instead use *different* mobility scenarios
// and/or connection patterns than the training trace.

#include <cstdio>

#include "bench/common.h"
#include "bench/registry.h"

namespace {

using namespace xfa;

ExperimentData gather_varied(bool vary_mobility, bool vary_traffic) {
  // Reduced scale (4000 s, 2 normal + 1 abnormal evaluation traces): this
  // ablation needs 16 traces that nothing else shares, and only the
  // *relative* accuracy across the four cases matters.
  ExperimentOptions options = paper_mixed_options();
  options.duration = 4000;
  options.normal_eval_traces = 2;
  options.abnormal_traces = 1;
  for (AttackSpec& attack : options.attacks) attack.schedule.start *= 0.4;
  if (fast_mode_enabled()) options = scaled(options);

  ScenarioConfig base;
  base.routing = RoutingKind::Aodv;
  base.transport = TransportKind::Udp;
  base.duration = options.duration;
  const auto& attacks = options.attacks;

  ExperimentData data;
  data.base_config = base;
  for (std::size_t i = 0; i < 1 + options.normal_eval_traces +
                                  options.abnormal_traces;
       ++i) {
    ScenarioConfig config = base;
    config.seed = options.base_seed + i;
    if (i > 0 && vary_mobility) config.mobility_seed += i;
    if (i > 0 && vary_traffic) config.traffic_seed += i;
    const bool is_abnormal = i > options.normal_eval_traces;
    if (is_abnormal) config.attacks = attacks;
    ScenarioResult result = run_scenario(config, options.label_policy);
    if (i == 0)
      data.train_normal = std::move(result.trace);
    else if (!is_abnormal)
      data.normal_eval.push_back(std::move(result.trace));
    else
      data.abnormal.push_back(std::move(result.trace));
    data.summaries.push_back(result.summary);
  }
  return data;
}

}  // namespace

namespace xfa::bench {
namespace {

int run_plan() {
  using namespace xfa::bench;

  print_rule('=');
  std::printf("Ablation D: cross-scenario generalization (AODV/UDP, C4.5)\n");
  print_rule('=');

  struct Case {
    const char* name;
    bool vary_mobility;
    bool vary_traffic;
  };
  const Case cases[] = {
      {"shared scenario files (paper setup)", false, false},
      {"varied mobility scenario", true, false},
      {"varied connection pattern", false, true},
      {"varied both", true, true},
  };

  std::printf("%-40s %-10s %-16s\n", "evaluation traces", "AUC+",
              "optimal (r,p)");
  for (const Case& c : cases) {
    const xfa::ExperimentData data =
        gather_varied(c.vary_mobility, c.vary_traffic);
    const Cell cell = evaluate(data, xfa::make_c45_factory());
    const xfa::PrCurve curve = pr_curve(cell, xfa::ScoreKind::Probability);
    const xfa::PrPoint best = curve.optimal_point();
    std::printf("%-40s %-10.3f (%.2f, %.2f)\n", c.name,
                curve.area_above_diagonal(), best.recall, best.precision);
  }
  std::printf(
      "\nReading: the normal profile is scenario-specific — accuracy drops\n"
      "when the deployment's mobility/traffic context changes, which is why\n"
      "a fielded MANET IDS would retrain its profile in place.\n");
  return 0;
}

const PlanRegistrar registrar{"ablation_generalization",
                              "Ablation D: cross-scenario generalization loss",
                              run_plan};

}  // namespace
}  // namespace xfa::bench
