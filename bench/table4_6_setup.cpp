// Reproduces Tables 4, 5 and 6: the feature inventory and the simulated
// intrusion inventory, generated from the library's own schema/attack code
// (so the printed counts are the counts actually used everywhere else).

#include <cstdio>

#include "attacks/blackhole.h"
#include "attacks/dropper.h"
#include "bench/common.h"
#include "bench/registry.h"
#include "features/schema.h"

namespace xfa::bench {
namespace {

int run_plan() {
  using namespace xfa;

  bench::print_rule('=');
  std::printf("Table 4: Feature Set I — topology and route related features\n");
  bench::print_rule('=');
  const FeatureSchema schema = FeatureSchema::standard();
  static constexpr const char* kNotes[] = {
      "ignored in classification, only used for reference",
      "from the mobility trace",
      "routes newly added by route discovery",
      "stale routes being removed",
      "routes found in cache, no re-discovery needed",
      "routes noticed to cache, eavesdropped from somewhere else",
      "broken routes currently under repair",
      "route adds + removals",
      "mean length over route table / cache",
  };
  for (std::size_t c = 0; c < schema.traffic_base_column(); ++c)
    std::printf("  %-24s %s\n", schema.name(c).c_str(), kNotes[c]);

  bench::print_rule('=');
  std::printf("Table 5: Feature Set II — traffic related feature dimensions\n");
  bench::print_rule('=');
  std::printf("  %-20s data, route(all), RREQ, RREP, RERR, HELLO\n",
              "Packet type");
  std::printf("  %-20s received, sent, forwarded, dropped\n",
              "Flow direction");
  std::printf("  %-20s 5, 60 and 900 seconds\n", "Sampling periods");
  std::printf("  %-20s count, stddev of inter-packet intervals\n",
              "Statistics measures");
  std::printf("\n  excluded combinations: data x forwarded, data x dropped\n");
  std::printf("  generated features: (6 x 4 - 2) x 3 x 2 = %zu  (paper: 132)\n",
              schema.traffic_specs().size());
  std::printf("  total feature-vector width (with Set I + time): %zu\n",
              schema.size());
  std::printf("  classifiable features (sub-models trained): %zu\n",
              schema.classifiable_columns().size());
  std::printf("\n  example encoding: %s = \"stddev of inter-packet intervals\n"
              "  of received ROUTE REQUEST packets every 5 seconds\"\n",
              [] {
                TrafficFeatureSpec spec;
                spec.type = AuditPacketType::RouteRequest;
                spec.dir = FlowDirection::Received;
                spec.period = 5.0;
                spec.stat = TrafficStat::IatStdDev;
                static std::string encoded;
                encoded = spec.encode();
                return encoded.c_str();
              }());

  bench::print_rule('=');
  std::printf("Table 6: simulated MANET intrusions\n");
  bench::print_rule('=');
  std::printf("  %-28s %-42s %s\n", "Attack script", "Description",
              "Parameters");
  std::printf("  %-28s %-42s %s\n", "Black hole",
              "bogus shortest route to all nodes,", "duration");
  std::printf("  %-28s %-42s %s\n", "",
              "absorbs (drops) all traffic nearby", "");
  std::printf("  %-28s %-42s %s\n", "Selective packet dropping",
              "drop packets to specific destination", "duration, destination");
  std::printf(
      "\n  on-off model: session duration == gap duration (paper §4.1);\n"
      "  mixed evaluation: black hole from 2500 s, dropping from 5000 s;\n"
      "  per-attack evaluation (Fig. 5): sessions at 2500/5000/7500 s x 100 "
      "s.\n");
  return 0;
}

const PlanRegistrar registrar{"table4_6",
                              "Tables 4-6: feature inventory and simulated-intrusion inventory",
                              run_plan};

}  // namespace
}  // namespace xfa::bench
