// Micro-benchmarks (google-benchmark): classifier training and scoring
// costs, feature extraction and discretization throughput — the
// computational-cost axis of the paper's future work ("we are developing
// technologies to reduce computational cost").

#include <benchmark/benchmark.h>

#include "cfa/model.h"
#include "features/discretize.h"
#include "features/extract.h"
#include "ml/c45.h"
#include "ml/naive_bayes.h"
#include "ml/ripper.h"
#include "sim/rng.h"

namespace xfa {
namespace {

/// Synthetic discrete dataset with realistic shape: `rows` x `columns`,
/// cardinality 5, correlated in blocks of 4 columns.
Dataset synthetic(std::size_t rows, std::size_t columns,
                  std::uint64_t seed = 5) {
  Dataset data;
  data.cardinality.assign(columns, 5);
  Rng rng(seed);
  for (std::size_t r = 0; r < rows; ++r) {
    std::vector<int> row(columns);
    for (std::size_t c = 0; c < columns; c += 4) {
      const int base = static_cast<int>(rng.uniform_int(5));
      for (std::size_t k = c; k < std::min(c + 4, columns); ++k)
        row[k] = rng.chance(0.8)
                     ? base
                     : static_cast<int>(rng.uniform_int(5));
    }
    data.rows.push_back(std::move(row));
  }
  return data;
}

std::vector<std::size_t> all_columns(std::size_t n) {
  std::vector<std::size_t> columns(n);
  for (std::size_t i = 0; i < n; ++i) columns[i] = i;
  return columns;
}

template <typename ClassifierT>
void BM_ClassifierFit(benchmark::State& state) {
  const auto rows = static_cast<std::size_t>(state.range(0));
  const Dataset data = synthetic(rows, 40);
  std::vector<std::size_t> features = all_columns(40);
  features.pop_back();
  for (auto _ : state) {
    ClassifierT classifier;
    classifier.fit(data, features, 39);
    benchmark::DoNotOptimize(classifier);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(rows));
}
BENCHMARK(BM_ClassifierFit<C45>)->Arg(500)->Arg(2000);
BENCHMARK(BM_ClassifierFit<Ripper>)->Arg(500)->Arg(2000);
BENCHMARK(BM_ClassifierFit<NaiveBayes>)->Arg(500)->Arg(2000);

template <typename ClassifierT>
void BM_ClassifierPredict(benchmark::State& state) {
  const Dataset data = synthetic(1000, 40);
  std::vector<std::size_t> features = all_columns(40);
  features.pop_back();
  ClassifierT classifier;
  classifier.fit(data, features, 39);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        classifier.predict_dist(data.rows[i++ % data.rows.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ClassifierPredict<C45>);
BENCHMARK(BM_ClassifierPredict<Ripper>);
BENCHMARK(BM_ClassifierPredict<NaiveBayes>);

void BM_CrossFeatureTrain(benchmark::State& state) {
  const auto columns = static_cast<std::size_t>(state.range(0));
  const Dataset data = synthetic(500, columns);
  const auto label_columns = all_columns(columns);
  for (auto _ : state) {
    CrossFeatureModel model;
    model.train(data, label_columns,
                [] { return std::make_unique<C45>(); }, 1);
    benchmark::DoNotOptimize(model);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(columns));
}
BENCHMARK(BM_CrossFeatureTrain)->Arg(20)->Arg(60)->Arg(140)
    ->Unit(benchmark::kMillisecond);

void BM_CrossFeatureScore(benchmark::State& state) {
  const Dataset data = synthetic(500, 60);
  CrossFeatureModel model;
  model.train(data, all_columns(60),
              [] { return std::make_unique<C45>(); }, 1);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.score(data.rows[i++ % data.rows.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CrossFeatureScore);

void BM_FeatureExtraction(benchmark::State& state) {
  // An audit log with ~30k packet observations over 2000 s.
  AuditLog audit;
  Rng rng(7);
  double t = 0;
  while (t < 2000) {
    t += rng.exponential(0.07);
    const auto type = static_cast<AuditPacketType>(rng.uniform_int(6));
    auto dir = static_cast<FlowDirection>(rng.uniform_int(4));
    if (type == AuditPacketType::Data &&
        (dir == FlowDirection::Forwarded || dir == FlowDirection::Dropped))
      dir = FlowDirection::Sent;
    audit.record_packet(t, type, dir);
  }
  const FeatureSchema schema = FeatureSchema::standard();
  const FeatureExtractor extractor(schema, 5.0);
  SampledNodeState node_state;
  node_state.velocity.assign(extractor.sample_count(2000.0), 1.0);
  node_state.average_route_len.assign(extractor.sample_count(2000.0), 2.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(extractor.extract(audit, node_state, 2000.0));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(audit.total_packet_records()));
  state.SetLabel("2000s trace, 141 features");
}
BENCHMARK(BM_FeatureExtraction)->Unit(benchmark::kMillisecond);

void BM_Discretizer(benchmark::State& state) {
  Rng rng(9);
  std::vector<std::vector<double>> rows;
  for (int r = 0; r < 2000; ++r) {
    std::vector<double> row(141);
    for (double& v : row) v = rng.exponential(5.0);
    rows.push_back(std::move(row));
  }
  for (auto _ : state) {
    EqualFrequencyDiscretizer discretizer(5);
    discretizer.fit(rows, 500);
    benchmark::DoNotOptimize(discretizer);
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_Discretizer)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace xfa

BENCHMARK_MAIN();
