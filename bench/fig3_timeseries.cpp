// Reproduces Figure 3: average-probability output over time, normal vs
// abnormal traces, with C4.5, for all four scenarios. Multiple traces per
// condition are averaged, as in the paper.
//
// Paper shape expectations:
//  * normal and abnormal curves coincide before the first intrusion (2500s);
//  * afterwards normal traces stay flat while abnormal traces drop and
//    oscillate, without fully recovering (the non-self-healing effect).

#include <cmath>
#include <cstdio>

#include "bench/common.h"
#include "bench/registry.h"

namespace xfa::bench {
namespace {

int run_plan() {
  using namespace xfa;
  using namespace xfa::bench;

  print_rule('=');
  std::printf("Figure 3: average probability over time, normal vs abnormal "
              "(C4.5)\n");
  print_rule('=');

  const ExperimentOptions options = paper_mixed_options();
  const SimTime onset =
      (options.fast || fast_mode_enabled()) ? 2500 * 0.25 : 2500;
  const SimTime bin = onset / 10;  // 250 s bins at full scale

  for (const ScenarioCombo& combo : paper_scenarios()) {
    const ExperimentData data =
        gather_experiment(combo.routing, combo.transport, options);
    const Cell cell = evaluate(data, make_c45_factory());

    std::vector<const RawTrace*> normal_traces, abnormal_traces;
    for (std::size_t i = 1; i < data.normal_eval.size(); ++i)
      normal_traces.push_back(&data.normal_eval[i]);
    for (const RawTrace& trace : data.abnormal)
      abnormal_traces.push_back(&trace);

    const TimeSeries normal = downsample(
        score_series(cell.normal_scores, normal_traces,
                     ScoreKind::Probability),
        bin);
    const TimeSeries abnormal = downsample(
        score_series(cell.abnormal_scores, abnormal_traces,
                     ScoreKind::Probability),
        bin);

    std::printf("\n--- %s ---\n", combo.name.c_str());
    std::printf("  %-10s %-10s %-10s\n", "time(s)", "normal", "abnormal");
    for (std::size_t i = 0; i < normal.size() && i < abnormal.size(); ++i)
      std::printf("  %-10.0f %-10.3f %-10.3f\n", normal.times[i],
                  normal.values[i], abnormal.values[i]);

    // Shape statistics.
    double pre_gap = 0, post_gap = 0;
    std::size_t pre_n = 0, post_n = 0;
    double normal_post_var = 0, abnormal_post_var = 0, normal_post_mean = 0,
           abnormal_post_mean = 0;
    for (std::size_t i = 0; i < normal.size() && i < abnormal.size(); ++i) {
      const double gap = normal.values[i] - abnormal.values[i];
      if (normal.times[i] <= onset) {
        pre_gap += gap;
        ++pre_n;
      } else {
        post_gap += gap;
        ++post_n;
        normal_post_mean += normal.values[i];
        abnormal_post_mean += abnormal.values[i];
      }
    }
    pre_gap /= static_cast<double>(pre_n);
    post_gap /= static_cast<double>(post_n);
    normal_post_mean /= static_cast<double>(post_n);
    abnormal_post_mean /= static_cast<double>(post_n);
    for (std::size_t i = 0; i < normal.size() && i < abnormal.size(); ++i) {
      if (normal.times[i] > onset) {
        normal_post_var += std::pow(normal.values[i] - normal_post_mean, 2);
        abnormal_post_var +=
            std::pow(abnormal.values[i] - abnormal_post_mean, 2);
      }
    }
    normal_post_var /= static_cast<double>(post_n);
    abnormal_post_var /= static_cast<double>(post_n);

    std::printf("  pre-onset normal-abnormal gap:  %+.3f (expected ~0)\n",
                pre_gap);
    std::printf("  post-onset normal-abnormal gap: %+.3f (expected > 0)\n",
                post_gap);
    std::printf("  post-onset stddev: normal %.3f vs abnormal %.3f "
                "(abnormal oscillates more: %s)\n",
                std::sqrt(normal_post_var), std::sqrt(abnormal_post_var),
                abnormal_post_var > normal_post_var ? "YES" : "no");
  }
  return 0;
}

const PlanRegistrar registrar{"fig3",
                              "Figure 3: average-probability time series, normal vs abnormal, C4.5",
                              run_plan};

}  // namespace
}  // namespace xfa::bench
