// Reproduces Figure 1: recall-precision curves using average probability,
// for C4.5 / RIPPER / NBC on all four scenarios (AODV/DSR x TCP/UDP).
//
// Paper shape expectations this bench verifies and prints:
//  * C4.5 is the most accurate classifier (largest AUC above the random-
//    guess diagonal), RIPPER second, NBC last;
//  * AODV scenarios beat the corresponding DSR scenarios.

#include <cstdio>
#include <map>

#include "bench/common.h"
#include "bench/registry.h"

namespace xfa::bench {
namespace {

int run_plan() {
  using namespace xfa;
  using namespace xfa::bench;

  print_rule('=');
  std::printf(
      "Figure 1: recall-precision curves (average probability)\n"
      "mixed intrusions: black hole @2500s + selective dropping @5000s\n");
  print_rule('=');

  std::map<std::string, double> auc;  // "scenario/classifier" -> AUC
  for (const ScenarioCombo& combo : paper_scenarios()) {
    const ExperimentData data =
        gather_experiment(combo.routing, combo.transport,
                          paper_mixed_options());
    for (const NamedFactory& classifier : paper_classifiers()) {
      std::printf("\n--- %s, %s ---\n", combo.name.c_str(),
                  classifier.name.c_str());
      const Cell cell = evaluate(data, classifier.factory);
      const PrCurve curve = pr_curve(cell, ScoreKind::Probability);
      print_curve(curve);
      auc[combo.name + "/" + classifier.name] = curve.area_above_diagonal();
    }
  }

  print_rule('=');
  std::printf("AUC-above-diagonal summary (paper shape checks)\n");
  print_rule('=');
  std::printf("%-12s %10s %10s %10s\n", "scenario", "C4.5", "RIPPER", "NBC");
  for (const ScenarioCombo& combo : paper_scenarios())
    std::printf("%-12s %10.3f %10.3f %10.3f\n", combo.name.c_str(),
                auc[combo.name + "/C4.5"], auc[combo.name + "/RIPPER"],
                auc[combo.name + "/NBC"]);

  double c45_mean = 0, ripper_mean = 0, nbc_mean = 0;
  double aodv_c45 = 0, dsr_c45 = 0;
  for (const ScenarioCombo& combo : paper_scenarios()) {
    c45_mean += auc[combo.name + "/C4.5"] / 4;
    ripper_mean += auc[combo.name + "/RIPPER"] / 4;
    nbc_mean += auc[combo.name + "/NBC"] / 4;
    (combo.routing == RoutingKind::Aodv ? aodv_c45 : dsr_c45) +=
        auc[combo.name + "/C4.5"] / 2;
  }
  std::printf("\nshape check: C4.5 best classifier on mean AUC?     %s "
              "(C4.5=%.3f RIPPER=%.3f NBC=%.3f)\n",
              (c45_mean >= ripper_mean && c45_mean >= nbc_mean) ? "YES" : "no",
              c45_mean, ripper_mean, nbc_mean);
  std::printf("shape check: AODV beats DSR with C4.5?             %s "
              "(AODV=%.3f DSR=%.3f)\n",
              aodv_c45 > dsr_c45 ? "YES" : "no", aodv_c45, dsr_c45);
  return 0;
}

const PlanRegistrar registrar{"fig1",
                              "Figure 1: recall-precision curves (average probability), all scenarios/classifiers",
                              run_plan};

}  // namespace
}  // namespace xfa::bench
