// Ablation C: threshold selection — target false-alarm rate (1 - confidence
// level) vs the realized false-alarm and detection rates on fresh traces,
// plus the labelling-policy alternative (active sessions only).

#include <cstdio>

#include "bench/common.h"
#include "bench/registry.h"
#include "cfa/threshold.h"

namespace xfa::bench {
namespace {

int run_plan() {
  using namespace xfa;
  using namespace xfa::bench;

  print_rule('=');
  std::printf("Ablation C: threshold confidence sweep (AODV/UDP, C4.5)\n");
  print_rule('=');

  const ExperimentData data = gather_experiment(
      RoutingKind::Aodv, TransportKind::Udp, paper_mixed_options());
  // Train once, sweep thresholds over the calibration-trace quantiles.
  DetectorOptions options;
  const Cell cell = evaluate(data, make_c45_factory(), options);
  const auto calibration =
      project(cell.detector.score_trace(data.normal_eval.front()),
              ScoreKind::Probability);

  const auto fresh_normal = pooled(cell.normal_scores, ScoreKind::Probability);
  std::vector<double> attack_scores;
  std::size_t positives = 0;
  for (std::size_t t = 0; t < cell.abnormal_scores.size(); ++t)
    for (std::size_t i = 0; i < cell.abnormal_scores[t].size(); ++i)
      if (cell.data->abnormal[t].labels[i] != 0) {
        attack_scores.push_back(cell.abnormal_scores[t][i].avg_probability);
        ++positives;
      }

  std::printf("%-12s %-12s %-14s %-12s\n", "target FAR", "theta",
              "realized FAR", "detection");
  for (const double target : {0.005, 0.01, 0.02, 0.05, 0.10}) {
    const double theta = select_threshold(calibration, target);
    const double realized = realized_false_alarm_rate(fresh_normal, theta);
    std::size_t detected = 0;
    for (const double s : attack_scores)
      if (s < theta) ++detected;
    std::printf("%-12.3f %-12.3f %-14.4f %-12.3f\n", target, theta, realized,
                static_cast<double>(detected) /
                    static_cast<double>(positives));
  }
  std::printf(
      "\nReading: the held-out-normal quantile transfers to fresh traces\n"
      "(realized FAR tracks the target), and detection degrades gracefully\n"
      "as the threshold tightens — the paper's recall/precision trade-off.\n");
  return 0;
}

const PlanRegistrar registrar{"ablation_threshold",
                              "Ablation C: target false-alarm rate vs realized FAR/detection",
                              run_plan};

}  // namespace
}  // namespace xfa::bench
