// Reproduces Tables 1, 2 and 3 of the paper: the 2-node illustrative
// example, including the paper's bespoke illustrative classifier, verbatim.
//
// Table 1: complete set of normal events {Reachable?, Delivered?, Cached?}.
// Table 2: the three sub-models (predicted class + probability per input).
// Table 3: average match count and average probability for all 8 events.
//
// Expected output matches the paper exactly (e.g. the {F,F,F} event scores
// match count 0.33 / probability 0.67, and threshold 0.5 gives Algorithm 2
// one false alarm while Algorithm 3 is perfect).

#include <array>
#include <cstdio>
#include <vector>

#include "bench/common.h"
#include "bench/registry.h"

namespace {

// The four normal events of Table 1 (1 = True, 0 = False).
constexpr std::array<std::array<int, 3>, 4> kNormalEvents = {
    {{1, 1, 1}, {1, 0, 0}, {0, 0, 1}, {0, 0, 0}}};

constexpr const char* kFeatureNames[3] = {"Reachable?", "Delivered?",
                                          "Cached?"};

const char* tf(int v) { return v != 0 ? "True" : "False"; }

/// The paper's illustrative classifier for one labelled feature:
///  * one class seen for the given other-feature combination -> that class,
///    probability 1.0;
///  * both classes seen -> True, probability 0.5;
///  * combination unseen -> the label appearing more in the other rules,
///    probability 0.5.
struct IllustrativeSubmodel {
  int label = 0;  // which feature this sub-model predicts

  struct Rule {
    int a = 0, b = 0;       // the two non-labelled feature values
    int predicted = 0;
    double probability = 0;
  };
  std::array<Rule, 4> rules;

  void fit() {
    // Count classes per combination over the normal events.
    int counts[2][2][2] = {};
    for (const auto& event : kNormalEvents) {
      int other[2], k = 0;
      for (int f = 0; f < 3; ++f)
        if (f != label) other[k++] = event[static_cast<std::size_t>(f)];
      ++counts[other[0]][other[1]][event[static_cast<std::size_t>(label)]];
    }
    // First pass: resolve seen combinations; tally predictions for the
    // unseen-combination fallback.
    int prediction_tally[2] = {0, 0};
    std::size_t r = 0;
    for (int a = 0; a < 2; ++a) {
      for (int b = 0; b < 2; ++b) {
        Rule rule;
        rule.a = a;
        rule.b = b;
        const int seen0 = counts[a][b][0], seen1 = counts[a][b][1];
        if (seen0 > 0 && seen1 > 0) {
          rule.predicted = 1;  // "label True is always selected"
          rule.probability = 0.5;
        } else if (seen0 + seen1 > 0) {
          rule.predicted = seen1 > 0 ? 1 : 0;
          rule.probability = 1.0;
        } else {
          rule.predicted = -1;  // resolved below
          rule.probability = 0.5;
        }
        if (rule.predicted >= 0) ++prediction_tally[rule.predicted];
        rules[r++] = rule;
      }
    }
    const int fallback = prediction_tally[1] >= prediction_tally[0] ? 1 : 0;
    for (Rule& rule : rules)
      if (rule.predicted < 0) rule.predicted = fallback;
  }

  const Rule& rule_for(const std::array<int, 3>& event) const {
    int other[2], k = 0;
    for (int f = 0; f < 3; ++f)
      if (f != label) other[k++] = event[static_cast<std::size_t>(f)];
    for (const Rule& rule : rules)
      if (rule.a == other[0] && rule.b == other[1]) return rule;
    return rules[0];  // unreachable
  }

  /// Probability of the event's true class: the rule probability when the
  /// prediction matches, 1 - probability otherwise (paper §3).
  double probability_of_truth(const std::array<int, 3>& event) const {
    const Rule& rule = rule_for(event);
    const int truth = event[static_cast<std::size_t>(label)];
    return rule.predicted == truth ? rule.probability
                                   : 1.0 - rule.probability;
  }
  bool matches(const std::array<int, 3>& event) const {
    return rule_for(event).predicted ==
           event[static_cast<std::size_t>(label)];
  }
};

bool is_normal(const std::array<int, 3>& event) {
  for (const auto& normal : kNormalEvents)
    if (normal == event) return true;
  return false;
}

}  // namespace

namespace xfa::bench {
namespace {

int run_plan() {
  xfa::bench::print_rule('=');
  std::printf("Tables 1-3: the 2-node network illustrative example\n");
  xfa::bench::print_rule('=');

  std::printf("\nTable 1: complete set of normal events\n");
  std::printf("%-12s %-12s %-8s\n", "Reachable?", "Delivered?", "Cached?");
  for (const auto& event : kNormalEvents)
    std::printf("%-12s %-12s %-8s\n", tf(event[0]), tf(event[1]),
                tf(event[2]));

  // Train the three sub-models.
  std::array<IllustrativeSubmodel, 3> submodels;
  for (int f = 0; f < 3; ++f) {
    submodels[static_cast<std::size_t>(f)].label = f;
    submodels[static_cast<std::size_t>(f)].fit();
  }

  std::printf("\nTable 2: sub-models (predicted class + probability)\n");
  for (int f = 0; f < 3; ++f) {
    const auto& submodel = submodels[static_cast<std::size_t>(f)];
    int other[2], k = 0;
    for (int g = 0; g < 3; ++g)
      if (g != f) other[k++] = g;
    std::printf("\n(%c) sub-model with respect to '%s'\n",
                static_cast<char>('a' + f), kFeatureNames[f]);
    std::printf("%-12s %-12s %-12s %-12s\n", kFeatureNames[other[0]],
                kFeatureNames[other[1]], kFeatureNames[f], "Probability");
    for (const auto& rule : submodel.rules)
      std::printf("%-12s %-12s %-12s %-12.1f\n", tf(rule.a), tf(rule.b),
                  tf(rule.predicted), rule.probability);
  }

  std::printf("\nTable 3: all 8 events, threshold = 0.5\n");
  std::printf("%-10s %-10s %-8s %-9s %-12s %-12s %-s\n", "Reachable",
              "Delivered", "Cached", "Class", "AvgMatch", "AvgProb",
              "Alg2/Alg3 verdicts");
  int alg2_errors = 0, alg3_errors = 0;
  for (int r = 1; r >= 0; --r) {
    for (int d = 1; d >= 0; --d) {
      for (int c = 1; c >= 0; --c) {
        const std::array<int, 3> event = {r, d, c};
        double match = 0, prob = 0;
        for (const auto& submodel : submodels) {
          match += submodel.matches(event) ? 1.0 : 0.0;
          prob += submodel.probability_of_truth(event);
        }
        match /= 3.0;
        prob /= 3.0;
        const bool normal = is_normal(event);
        const bool alg2 = match >= 0.5;
        const bool alg3 = prob >= 0.5;
        if (alg2 != normal) ++alg2_errors;
        if (alg3 != normal) ++alg3_errors;
        std::printf("%-10s %-10s %-8s %-9s %-12.2f %-12.2f %s/%s\n", tf(r),
                    tf(d), tf(c), normal ? "Normal" : "Abnormal", match, prob,
                    alg2 ? "normal" : "ANOMALY", alg3 ? "normal" : "ANOMALY");
      }
    }
  }
  std::printf(
      "\nAlgorithm 2 (match count) errors:  %d   (paper: 1 false alarm on "
      "{F,F,F})\n",
      alg2_errors);
  std::printf(
      "Algorithm 3 (probability) errors:  %d   (paper: perfect accuracy)\n",
      alg3_errors);
  return alg3_errors == 0 ? 0 : 1;
}

const PlanRegistrar registrar{"table1_3",
                              "Tables 1-3: two-node worked example with the paper's illustrative classifier",
                              run_plan};

}  // namespace
}  // namespace xfa::bench
