// Ablation E: ground-truth labelling policy. The paper observes that the
// implemented intrusions do not self-heal, making "when did the attack end"
// ill-defined. This bench quantifies the difference between labelling
// everything after the first onset as abnormal (our default, matching
// Figure 3's flat-vs-oscillating split) and labelling only windows that
// overlap an active attack session.

#include <cstdio>

#include "bench/common.h"
#include "bench/registry.h"

namespace xfa::bench {
namespace {

int run_plan() {
  using namespace xfa;
  using namespace xfa::bench;

  print_rule('=');
  std::printf("Ablation E: labelling policy (AODV/UDP, C4.5)\n");
  print_rule('=');

  std::printf("%-28s %-10s %-16s %-14s\n", "policy", "AUC+", "optimal (r,p)",
              "positives");
  for (const LabelPolicy policy :
       {LabelPolicy::OnsetOnwards, LabelPolicy::ActiveSessions}) {
    ExperimentOptions options = paper_mixed_options();
    options.label_policy = policy;
    const ExperimentData data = gather_experiment(
        RoutingKind::Aodv, TransportKind::Udp, options);
    const Cell cell = evaluate(data, make_c45_factory());
    const PrCurve curve = pr_curve(cell, ScoreKind::Probability);
    const PrPoint best = curve.optimal_point();
    std::size_t positives = 0;
    for (const RawTrace& trace : data.abnormal)
      for (const int label : trace.labels) positives += label != 0 ? 1 : 0;
    std::printf("%-28s %-10.3f (%.2f, %.2f)      %-14zu\n",
                policy == LabelPolicy::OnsetOnwards ? "onset-onwards (default)"
                                                    : "active sessions only",
                curve.area_above_diagonal(), best.recall, best.precision,
                positives);
  }
  std::printf(
      "\nReading: with session-only labels, the lasting damage between\n"
      "sessions counts as false alarms, depressing precision — the paper's\n"
      "\"no way to figure out exactly when the intrusion actions have\n"
      "ended\" problem, made quantitative.\n");
  return 0;
}

const PlanRegistrar registrar{"ablation_labels",
                              "Ablation E: onset-onwards vs active-sessions labelling",
                              run_plan};

}  // namespace
}  // namespace xfa::bench
