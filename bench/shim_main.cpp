// Shared main() for the legacy per-figure binaries: each shim target
// compiles this file with XFA_BENCH_DEFAULT_PLAN set to its plan name, so
// `./fig1_recall_precision` behaves exactly like `./xfa_bench fig1` (and
// still accepts --threads/--out/--list).
#include "bench/registry.h"

#ifndef XFA_BENCH_DEFAULT_PLAN
#error "compile with -DXFA_BENCH_DEFAULT_PLAN=\"<plan>\""
#endif

int main(int argc, char** argv) {
  return xfa::bench::run_plan_cli(argc, argv, XFA_BENCH_DEFAULT_PLAN);
}
