// Reproduces Figure 6: average-probability density distributions for the
// single-attack scenarios of Figure 5 (black hole only / dropping only),
// AODV/UDP with C4.5, including the threshold line and the two error
// masses the paper calls out ("areas under normal curve ... to the left of
// the threshold (false alarms) and under intrusive curves ... to the right
// (anomalies mistakenly accepted) are both very small").

#include <cstdio>

#include "bench/common.h"
#include "bench/registry.h"

namespace xfa::bench {
namespace {

int run_plan() {
  using namespace xfa;
  using namespace xfa::bench;

  print_rule('=');
  std::printf("Figure 6: per-attack score densities, AODV/UDP, C4.5\n");
  print_rule('=');

  for (const AttackKind kind :
       {AttackKind::Blackhole, AttackKind::SelectiveDrop}) {
    // Session-overlap labels: the attack density is built from the windows
    // where the intrusion is actually acting, which is what the paper's
    // per-attack densities depict.
    ExperimentOptions options = paper_single_attack_options(kind);
    options.label_policy = LabelPolicy::ActiveSessions;
    const ExperimentData data = gather_experiment(
        RoutingKind::Aodv, TransportKind::Udp, options);
    const Cell cell = evaluate(data, make_c45_factory());
    const double theta = cell.detector.threshold_probability;

    const auto normal_scores =
        pooled(cell.normal_scores, ScoreKind::Probability);
    std::vector<double> attack_scores;
    for (std::size_t t = 0; t < cell.abnormal_scores.size(); ++t)
      for (std::size_t i = 0; i < cell.abnormal_scores[t].size(); ++i)
        if (cell.data->abnormal[t].labels[i] != 0)
          attack_scores.push_back(cell.abnormal_scores[t][i].avg_probability);

    const DensityHistogram normal_hist = density_histogram(normal_scores, 25);
    const DensityHistogram attack_hist = density_histogram(attack_scores, 25);

    std::printf("\n--- %s only (threshold = %.3f) ---\n", to_string(kind),
                theta);
    std::printf("  %-8s %-12s %-12s\n", "score", "normal", "attack");
    for (std::size_t b = 0; b < normal_hist.bins(); ++b)
      std::printf("  %-8.2f %-12.3f %-12.3f\n", normal_hist.bin_centers[b],
                  normal_hist.density[b], attack_hist.density[b]);
    std::printf("  false-alarm mass (normal left of threshold): %.3f\n",
                mass_below(normal_hist, theta));
    std::printf("  accepted-anomaly mass (attack right of threshold): %.3f\n",
                1.0 - mass_below(attack_hist, theta));

    // Distinctness: compare distribution means.
    double nm = 0, am = 0;
    for (const double v : normal_scores) nm += v;
    for (const double v : attack_scores) am += v;
    nm /= static_cast<double>(normal_scores.size());
    am /= static_cast<double>(attack_scores.size());
    std::printf("  mean scores: normal %.3f vs attack %.3f "
                "(distinct: %s)\n",
                nm, am, nm > am ? "YES" : "no");
  }
  return 0;
}

const PlanRegistrar registrar{"fig6",
                              "Figure 6: per-attack density distributions, AODV/UDP, C4.5",
                              run_plan};

}  // namespace
}  // namespace xfa::bench
