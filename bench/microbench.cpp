// xfa_microbench: simulation-core and detection-pipeline hot-path kernels,
// reported as ops/sec.
//
// Usage: xfa_microbench [--quick] [--kernel=NAME]
//
// Simulation kernels:
//   transmit-throughput  Broadcast transmits through the channel (spatial
//                        neighbor grid + zero-copy fan-out) with full event
//                        drain, on the paper's topology (50 nodes, 1000x1000,
//                        250 m range, 20 m/s waypoint motion).
//   scheduler-churn      schedule / cancel / dispatch cycles through the
//                        slab-allocated scheduler, including the tombstone
//                        compaction path.
//   mobility-query       Random-waypoint position evaluation at advancing
//                        times, including the same-instant memoization hit
//                        pattern the channel produces.
//   packet-fanout        Shared-handle fan-out of a route-bearing packet to
//                        12 receivers versus the deep-copy equivalent.
//
// Detection kernels (the paper's computational-cost axis):
//   c45-train            C4.5 fit through the column-major DatasetView and
//                        the flat count-scratch arena.
//   ripper-train         RIPPER fit (grow/prune decision list) through the
//                        view with reused shuffle/coverage scratch.
//   nbc-train            Naive Bayes fit: one column pass per feature into
//                        the flattened conditional table.
//   score-throughput     CrossFeatureModel::score_all over a discrete trace
//                        (allocation-free predict_dist_into scoring, block-
//                        parallel on the shared pool).
//
// --quick shrinks the iteration counts so the run doubles as a CI
// correctness smoke: every kernel self-checks its results with XFA_CHECK
// (the detection kernels check determinism across fits and the bit-identity
// of serial score() versus parallel score_all()), so a nonzero exit means a
// real hot-path bug, not a slow machine.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "cfa/model.h"
#include "common/check.h"
#include "ml/c45.h"
#include "ml/dataset_view.h"
#include "ml/naive_bayes.h"
#include "ml/ripper.h"
#include "mobility/waypoint.h"
#include "net/channel.h"
#include "net/node.h"
#include "net/packet.h"
#include "sim/simulator.h"

namespace xfa {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

void report(const char* kernel, std::uint64_t ops, double wall_s) {
  std::printf("%-22s %12llu ops  %9.1f ms  %12.0f ops/s\n", kernel,
              static_cast<unsigned long long>(ops), wall_s * 1e3,
              wall_s > 0 ? static_cast<double>(ops) / wall_s : 0.0);
}

/// Routing stub: counts deliveries, relays nothing.
class CountingProtocol final : public RoutingProtocol {
 public:
  void send_data(Packet&&) override {}
  void receive(PacketPtr pkt, NodeId) override {
    ++received;
    ttl_sum += pkt->ttl;
  }
  void link_failure(const Packet&, NodeId) override { ++failures; }
  double average_route_length() const override { return 0; }
  std::size_t route_count() const override { return 0; }
  const char* name() const override { return "bench-stub"; }

  std::uint64_t received = 0;
  std::uint64_t failures = 0;
  std::uint64_t ttl_sum = 0;
};

void bench_transmit(bool quick) {
  const std::size_t kNodes = 50;
  const std::uint64_t iters = quick ? 2000 : 200000;

  Simulator sim(1);
  MobilityConfig mobility_config;  // paper defaults: 1000x1000, 20 m/s
  RandomWaypointMobility mobility(kNodes, mobility_config, Rng(7));
  ChannelConfig config;
  config.max_jitter_s = 0;
  config.promiscuous_taps = false;
  config.max_node_speed = mobility_config.max_speed;  // enable the grid
  Channel channel(sim, mobility, config);

  std::vector<std::unique_ptr<Node>> nodes;
  std::vector<CountingProtocol*> protocols;
  for (std::size_t i = 0; i < kNodes; ++i) {
    nodes.push_back(
        std::make_unique<Node>(sim, channel, static_cast<NodeId>(i)));
    channel.register_node(*nodes.back());
    auto protocol = std::make_unique<CountingProtocol>();
    protocols.push_back(protocol.get());
    nodes.back()->set_routing(std::move(protocol));
  }

  // Spread the transmits over sim time so waypoint motion forces periodic
  // grid rebuilds (the production access pattern), then drain everything.
  const auto start = Clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) {
    const SimTime when = static_cast<double>(i) * 0.005;
    const NodeId from = static_cast<NodeId>(i % kNodes);
    sim.at(when, [&channel, from] {
      Packet pkt;
      pkt.src = from;
      pkt.dst = kBroadcast;
      pkt.size_bytes = kDataPacketBytes;
      channel.transmit(from, std::move(pkt), kBroadcast);
    });
  }
  sim.run();
  report("transmit-throughput", iters, seconds_since(start));

  std::uint64_t delivered = 0;
  for (const CountingProtocol* protocol : protocols)
    delivered += protocol->received;
  XFA_CHECK_EQ(channel.stats().transmissions, iters);
  XFA_CHECK_EQ(channel.stats().deliveries, delivered);
  XFA_CHECK_GT(delivered, 0u) << "50 nodes at 250 m range never connected";

  // Correctness smoke: the grid-pruned neighbor set must equal the O(N^2)
  // oracle at the post-run time.
  const SimTime t = sim.now();
  for (NodeId a = 0; a < static_cast<NodeId>(kNodes); ++a) {
    const std::vector<NodeId> pruned = channel.neighbors(a);
    std::vector<NodeId> brute;
    for (NodeId b = 0; b < static_cast<NodeId>(kNodes); ++b)
      if (a != b && channel.in_range(a, b)) brute.push_back(b);
    XFA_CHECK(pruned == brute) << "grid mismatch at node " << a << " t=" << t;
  }
  const NeighborIndex::Stats& grid = channel.neighbor_index().stats();
  XFA_CHECK_GT(grid.queries, 0u);
  XFA_CHECK_GE(grid.candidates, grid.confirmed);
}

void bench_scheduler(bool quick) {
  const std::uint64_t iters = quick ? 20000 : 2000000;

  Simulator sim(1);
  Scheduler& scheduler = sim.scheduler();
  std::uint64_t fired = 0;
  const auto start = Clock::now();
  // Per cycle: two schedules, one cancel, then drain — the discovery-timer
  // churn pattern (arm a retry, cancel it when the reply arrives) that made
  // tombstones pile up in the old map-based scheduler.
  for (std::uint64_t i = 0; i < iters; ++i) {
    const SimTime base = static_cast<double>(i) * 0.001;
    const EventId keep = sim.at(base + 0.01, [&fired] { ++fired; });
    const EventId drop = sim.at(base + 5.0, [&fired] { ++fired; });
    XFA_CHECK_NE(keep, drop);
    XFA_CHECK(sim.cancel(drop));
    sim.run_until(base);
  }
  sim.run();
  report("scheduler-churn", iters * 3, seconds_since(start));

  XFA_CHECK_EQ(fired, iters);
  XFA_CHECK_EQ(scheduler.dispatched(), iters);
  XFA_CHECK_EQ(scheduler.cancelled(), iters);
  XFA_CHECK_EQ(scheduler.pending(), 0u);
}

void bench_mobility(bool quick) {
  const std::size_t kNodes = 50;
  const std::uint64_t steps = quick ? 5000 : 500000;

  MobilityConfig config;
  RandomWaypointMobility mobility(kNodes, config, Rng(7));
  double checksum = 0;
  const auto start = Clock::now();
  for (std::uint64_t i = 0; i < steps; ++i) {
    const SimTime t = static_cast<double>(i) * 0.01;
    // One fresh query plus one same-instant repeat per node: the channel's
    // pattern (sender positioned, then re-confirmed as a grid candidate).
    const NodeId node = static_cast<NodeId>(i % kNodes);
    const Vec2 fresh = mobility.position(node, t);
    const Vec2 repeat = mobility.position(node, t);
    XFA_CHECK(fresh.x == repeat.x && fresh.y == repeat.y);
    checksum += fresh.x;
  }
  report("mobility-query", steps * 2, seconds_since(start));

  XFA_CHECK(checksum >= 0);
  for (NodeId node = 0; node < static_cast<NodeId>(kNodes); ++node) {
    const Vec2 p = mobility.position(node, static_cast<double>(steps) * 0.01);
    XFA_CHECK(p.x >= 0 && p.x <= config.field_width);
    XFA_CHECK(p.y >= 0 && p.y <= config.field_height);
  }
}

void bench_fanout(bool quick) {
  const std::uint64_t iters = quick ? 20000 : 1000000;
  const std::size_t kReceivers = 12;

  Packet pkt;
  pkt.kind = PacketKind::Data;
  pkt.src = 0;
  pkt.dst = 9;
  DsrSourceRoute route;
  for (NodeId hop = 0; hop < 10; ++hop) route.hops.push_back(hop);
  pkt.header = route;

  std::vector<PacketPtr> shared_handles;
  shared_handles.reserve(kReceivers);
  std::uint64_t ttl_sum = 0;
  auto start = Clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) {
    // What the channel does per broadcast: one allocation, then a refcount
    // bump per receiver lambda.
    const PacketPtr shared = std::make_shared<const Packet>(pkt);
    shared_handles.clear();
    for (std::size_t r = 0; r < kReceivers; ++r)
      shared_handles.push_back(shared);
    for (const PacketPtr& handle : shared_handles) ttl_sum += handle->ttl;
  }
  const double shared_s = seconds_since(start);
  report("packet-fanout/shared", iters * kReceivers, shared_s);

  std::vector<Packet> copies;
  copies.reserve(kReceivers);
  start = Clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) {
    // The pre-refactor fan-out: a deep copy (vector-bearing header included)
    // per receiver lambda.
    copies.clear();
    for (std::size_t r = 0; r < kReceivers; ++r) copies.push_back(pkt);
    for (const Packet& copy : copies) ttl_sum += copy.ttl;
  }
  const double copy_s = seconds_since(start);
  report("packet-fanout/copy", iters * kReceivers, copy_s);

  XFA_CHECK_EQ(ttl_sum, 2 * iters * kReceivers * pkt.ttl);
}

/// Synthetic discrete dataset with the detection pipeline's shape:
/// cardinality 5, correlated in blocks of 4 columns (mirrors
/// bench/perf_classifiers.cpp so the kernels exercise comparable trees).
Dataset synthetic_dataset(std::size_t rows, std::size_t columns,
                          std::uint64_t seed) {
  Dataset data;
  data.cardinality.assign(columns, 5);
  Rng rng(seed);
  for (std::size_t r = 0; r < rows; ++r) {
    std::vector<int> row(columns);
    for (std::size_t c = 0; c < columns; c += 4) {
      const int base = static_cast<int>(rng.uniform_int(5));
      for (std::size_t k = c; k < std::min(c + 4, columns); ++k)
        row[k] =
            rng.chance(0.8) ? base : static_cast<int>(rng.uniform_int(5));
    }
    data.rows.push_back(std::move(row));
  }
  return data;
}

std::vector<std::size_t> iota_columns(std::size_t n) {
  std::vector<std::size_t> columns(n);
  for (std::size_t i = 0; i < n; ++i) columns[i] = i;
  return columns;
}

/// Self-check shared by the training kernels: predict_dist_into must agree
/// bit-for-bit with the allocating predict_dist on every training row.
void check_predict_paths(const Classifier& classifier, const Dataset& data) {
  std::vector<double> scratch(16);
  for (const std::vector<int>& row : data.rows) {
    const std::vector<double> dist = classifier.predict_dist(row);
    const std::size_t n = classifier.predict_dist_into(row, scratch);
    XFA_CHECK_EQ(n, dist.size());
    for (std::size_t v = 0; v < n; ++v) XFA_CHECK(scratch[v] == dist[v]);
  }
}

void bench_c45_train(bool quick) {
  const std::size_t rows = quick ? 300 : 2000;
  const std::uint64_t iters = quick ? 3 : 30;
  const Dataset data = synthetic_dataset(rows, 40, 5);
  const DatasetView view(data);
  std::vector<std::size_t> features = iota_columns(40);
  features.pop_back();

  std::string reference;
  const auto start = Clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) {
    C45 tree;
    tree.fit(view, features, 39);
    XFA_CHECK_GT(tree.node_count(), 1u) << "degenerate training tree";
    if (i == 0) reference = tree.describe({});
  }
  report("c45-train", iters * rows, seconds_since(start));

  // Determinism + path equivalence: a fresh fit through the Dataset overload
  // must produce the identical tree, and both predict paths must agree.
  C45 tree;
  tree.fit(data, features, 39);
  XFA_CHECK(tree.describe({}) == reference)
      << "Dataset-overload fit diverged from DatasetView fit";
  check_predict_paths(tree, data);
}

void bench_ripper_train(bool quick) {
  const std::size_t rows = quick ? 300 : 2000;
  const std::uint64_t iters = quick ? 3 : 30;
  const Dataset data = synthetic_dataset(rows, 40, 5);
  const DatasetView view(data);
  std::vector<std::size_t> features = iota_columns(40);
  features.pop_back();

  std::string reference;
  const auto start = Clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) {
    Ripper ripper;
    ripper.fit(view, features, 39);
    if (i == 0) reference = ripper.describe({});
  }
  report("ripper-train", iters * rows, seconds_since(start));

  Ripper ripper;
  ripper.fit(data, features, 39);
  XFA_CHECK(ripper.describe({}) == reference)
      << "Dataset-overload fit diverged from DatasetView fit";
  check_predict_paths(ripper, data);
}

void bench_nbc_train(bool quick) {
  const std::size_t rows = quick ? 300 : 2000;
  const std::uint64_t iters = quick ? 30 : 300;
  const Dataset data = synthetic_dataset(rows, 40, 5);
  const DatasetView view(data);
  std::vector<std::size_t> features = iota_columns(40);
  features.pop_back();

  const auto start = Clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) {
    NaiveBayes nbc;
    nbc.fit(view, features, 39);
  }
  report("nbc-train", iters * rows, seconds_since(start));

  NaiveBayes nbc;
  nbc.fit(data, features, 39);
  check_predict_paths(nbc, data);
}

void bench_score_throughput(bool quick) {
  const std::size_t rows = quick ? 200 : 500;
  const std::uint64_t iters = quick ? 2 : 20;
  const Dataset data = synthetic_dataset(rows, 60, 5);
  CrossFeatureModel model;
  const Status status = model.train(
      data, iota_columns(60), [] { return std::make_unique<C45>(); });
  XFA_CHECK(status.ok()) << status.message();

  std::vector<EventScore> scores;
  const auto start = Clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) scores = model.score_all(data.rows);
  report("score-throughput", iters * rows, seconds_since(start));

  // Bit-identity: the block-parallel batch path must reproduce the serial
  // per-row score() exactly (same summation order per sub-model).
  XFA_CHECK_EQ(scores.size(), data.rows.size());
  for (std::size_t r = 0; r < data.rows.size(); ++r) {
    const EventScore serial = model.score(data.rows[r]);
    XFA_CHECK(scores[r].avg_match_count == serial.avg_match_count);
    XFA_CHECK(scores[r].avg_probability == serial.avg_probability);
  }
}

}  // namespace
}  // namespace xfa

int main(int argc, char** argv) {
  bool quick = false;
  std::string only;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strncmp(argv[i], "--kernel=", 9) == 0) {
      only = argv[i] + 9;
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--kernel=NAME]\n", argv[0]);
      return 64;
    }
  }
  const auto want = [&only](const char* name) {
    return only.empty() || only == name;
  };
  if (want("transmit-throughput")) xfa::bench_transmit(quick);
  if (want("scheduler-churn")) xfa::bench_scheduler(quick);
  if (want("mobility-query")) xfa::bench_mobility(quick);
  if (want("packet-fanout")) xfa::bench_fanout(quick);
  if (want("c45-train")) xfa::bench_c45_train(quick);
  if (want("ripper-train")) xfa::bench_ripper_train(quick);
  if (want("nbc-train")) xfa::bench_nbc_train(quick);
  if (want("score-throughput")) xfa::bench_score_throughput(quick);
  return 0;
}
