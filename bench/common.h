// Shared plumbing for the reproduction benches: trace gathering, detector
// training, score assembly and small print helpers.
//
// Conventions used by every figure bench:
//  * the detector trains on the scenario's normal training trace;
//  * thresholds are calibrated on the first normal evaluation trace;
//  * reported numbers (FAR, recall/precision, densities) come from the
//    remaining normal traces and the attack traces.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "eval/density.h"
#include "eval/pr.h"
#include "eval/series.h"
#include "scenario/pipeline.h"

namespace xfa::bench {

/// Everything a figure needs for one (scenario, classifier) cell.
struct Cell {
  Detector detector;
  // Scores for evaluation traces (thresh trace excluded).
  std::vector<std::vector<EventScore>> normal_scores;
  std::vector<std::vector<EventScore>> abnormal_scores;
  const ExperimentData* data = nullptr;
};

inline Cell evaluate(const ExperimentData& data,
                     const ClassifierFactory& factory,
                     const DetectorOptions& detector_options = {}) {
  Cell cell;
  cell.data = &data;
  cell.detector = train_detector(data.train_normal, factory, detector_options,
                                 data.normal_eval.empty()
                                     ? nullptr
                                     : &data.normal_eval.front());
  for (std::size_t i = 1; i < data.normal_eval.size(); ++i)
    cell.normal_scores.push_back(
        cell.detector.score_trace(data.normal_eval[i]));
  for (const RawTrace& trace : data.abnormal)
    cell.abnormal_scores.push_back(cell.detector.score_trace(trace));
  return cell;
}

/// Pools scores + ground truth for a recall-precision curve.
inline PrCurve pr_curve(const Cell& cell, ScoreKind kind) {
  std::vector<double> scores;
  std::vector<int> labels;
  for (const auto& trace_scores : cell.normal_scores) {
    for (const EventScore& s : trace_scores) {
      scores.push_back(pick(s, kind));
      labels.push_back(0);
    }
  }
  for (std::size_t t = 0; t < cell.abnormal_scores.size(); ++t) {
    const RawTrace& trace = cell.data->abnormal[t];
    for (std::size_t i = 0; i < cell.abnormal_scores[t].size(); ++i) {
      scores.push_back(pick(cell.abnormal_scores[t][i], kind));
      labels.push_back(trace.labels[i]);
    }
  }
  return recall_precision_curve(scores, labels);
}

/// Average score time series over the given traces (Figure 3/5 style).
inline TimeSeries score_series(const std::vector<std::vector<EventScore>>& all,
                               const std::vector<const RawTrace*>& traces,
                               ScoreKind kind) {
  std::vector<TimeSeries> series;
  for (std::size_t t = 0; t < all.size(); ++t) {
    TimeSeries s;
    s.times = traces[t]->times;
    for (const EventScore& e : all[t]) s.values.push_back(pick(e, kind));
    series.push_back(std::move(s));
  }
  return average_series(series);
}

/// Pools one score kind across traces (Figure 4/6 densities).
inline std::vector<double> pooled(
    const std::vector<std::vector<EventScore>>& all, ScoreKind kind) {
  std::vector<double> out;
  for (const auto& trace_scores : all)
    for (const EventScore& s : trace_scores) out.push_back(pick(s, kind));
  return out;
}

inline void print_rule(char c = '-') {
  for (int i = 0; i < 78; ++i) std::putchar(c);
  std::putchar('\n');
}

/// Prints a curve as a compact table (at most `max_rows` operating points,
/// evenly sampled along the sweep).
inline void print_curve(const PrCurve& curve, std::size_t max_rows = 12) {
  std::printf("    %-12s %-10s %-10s\n", "threshold", "recall", "precision");
  const std::size_t n = curve.points.size();
  const std::size_t step = n <= max_rows ? 1 : n / max_rows;
  for (std::size_t i = 0; i < n; i += step) {
    const PrPoint& p = curve.points[i];
    std::printf("    %-12.4f %-10.3f %-10.3f\n", p.threshold, p.recall,
                p.precision);
  }
  const PrPoint best = curve.optimal_point();
  std::printf("    optimal point (closest to (1,1)): (%.2f, %.2f), "
              "AUC-above-diagonal = %.3f\n",
              best.recall, best.precision, curve.area_above_diagonal());
}

}  // namespace xfa::bench
