// Smoke plan: a deliberately small end-to-end exercise of the whole engine
// (parallel gather, cache, training, scoring) that finishes in seconds even
// on one core. Used by the engine-determinism test to compare --threads=1
// against --threads=8 byte-for-byte, and handy as a quick manual sanity run.
//
// Everything is scaled down: 800-second traces, two evaluation and two
// attack traces, two scenarios, two classifiers. The numbers are NOT the
// paper's — only the plumbing is.

#include <cstdio>

#include "bench/common.h"
#include "bench/registry.h"

namespace xfa::bench {
namespace {

ExperimentOptions smoke_options() {
  ExperimentOptions options;
  options.duration = 800;
  options.normal_eval_traces = 2;
  options.abnormal_traces = 2;
  options.base_seed = 9100;
  options.attacks = mixed_attacks(/*session=*/100);
  // Early onsets so the short traces still contain both attack phases.
  options.attacks[0].schedule.start = 200;
  options.attacks[1].schedule.start = 400;
  return options;
}

int run_plan() {
  print_rule('=');
  std::printf("Smoke plan: scaled-down engine exercise (not paper numbers)\n");
  print_rule('=');

  const std::vector<ScenarioCombo> scenarios = {
      {RoutingKind::Aodv, TransportKind::Udp, "AODV/UDP"},
      {RoutingKind::Dsr, TransportKind::Tcp, "DSR/TCP"},
  };
  const std::vector<NamedFactory> classifiers = {
      {"C4.5", make_c45_factory()},
      {"NBC", make_nbc_factory()},
  };

  std::printf("%-12s %10s %10s\n", "scenario", "C4.5", "NBC");
  for (const ScenarioCombo& combo : scenarios) {
    const ExperimentData data =
        gather_experiment(combo.routing, combo.transport, smoke_options());
    std::printf("%-12s", combo.name.c_str());
    for (const NamedFactory& classifier : classifiers) {
      const Cell cell = evaluate(data, classifier.factory);
      const PrCurve curve = pr_curve(cell, ScoreKind::Probability);
      std::printf(" %10.3f", curve.area_above_diagonal());
    }
    std::printf("\n");
  }
  return 0;
}

const PlanRegistrar registrar{
    "smoke", "Scaled-down end-to-end engine exercise (seconds, not minutes)",
    run_plan};

}  // namespace
}  // namespace xfa::bench
