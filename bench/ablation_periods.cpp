// Ablation B: contribution of the sampling periods (5 / 60 / 900 s) —
// the direction of the paper's future work on reducing the sub-model count.

#include <cstdio>

#include "bench/common.h"
#include "bench/registry.h"

namespace xfa::bench {
namespace {

int run_plan() {
  using namespace xfa;
  using namespace xfa::bench;

  print_rule('=');
  std::printf("Ablation B: sampling-period slices (AODV/UDP, C4.5)\n");
  print_rule('=');

  const ExperimentData data = gather_experiment(
      RoutingKind::Aodv, TransportKind::Udp, paper_mixed_options());

  struct Slice {
    const char* name;
    std::vector<SimTime> periods;
  };
  const Slice slices[] = {
      {"5s only", {5.0}},
      {"60s only", {60.0}},
      {"900s only", {900.0}},
      {"5s+60s", {5.0, 60.0}},
      {"all (paper)", {}},
  };

  std::printf("%-14s %-12s %-10s %-16s\n", "periods", "sub-models", "AUC+",
              "optimal (r,p)");
  for (const Slice& slice : slices) {
    DetectorOptions options;
    options.periods = slice.periods;
    const Cell cell = evaluate(data, make_c45_factory(), options);
    const PrCurve curve = pr_curve(cell, ScoreKind::Probability);
    const PrPoint best = curve.optimal_point();
    std::printf("%-14s %-12zu %-10.3f (%.2f, %.2f)\n", slice.name,
                cell.detector.model.submodel_count(),
                curve.area_above_diagonal(), best.recall, best.precision);
  }
  std::printf(
      "\nReading: the long (900 s) windows dominate — they integrate attack\n"
      "damage far past each session and are immune to 5-second burst noise.\n"
      "A 52-sub-model detector on the 900 s slice alone matches or beats the\n"
      "full 140-model detector: exactly the reduction the paper's future\n"
      "work asks for (\"fewer number of models ... each model could be\n"
      "simplified with a reduced feature set\").\n");
  return 0;
}

const PlanRegistrar registrar{"ablation_periods",
                              "Ablation B: contribution of the 5/60/900 s sampling periods",
                              run_plan};

}  // namespace
}  // namespace xfa::bench
