// Reproduces Figure 2: average match count (Algorithm 2) vs average
// probability (Algorithm 3) with RIPPER, on all four scenarios.
//
// Paper shape expectations:
//  * RIPPER improves dramatically when average probability replaces average
//    match count;
//  * the same switch helps C4.5 and NBC much less (printed for contrast).

#include <cstdio>

#include "bench/common.h"
#include "bench/registry.h"

namespace xfa::bench {
namespace {

int run_plan() {
  using namespace xfa;
  using namespace xfa::bench;

  print_rule('=');
  std::printf("Figure 2: avg match count vs avg probability (RIPPER)\n");
  print_rule('=');

  double ripper_gain = 0, others_gain = 0;
  for (const ScenarioCombo& combo : paper_scenarios()) {
    const ExperimentData data = gather_experiment(
        combo.routing, combo.transport, paper_mixed_options());
    for (const NamedFactory& classifier : paper_classifiers()) {
      const Cell cell = evaluate(data, classifier.factory);
      const PrCurve match_curve = pr_curve(cell, ScoreKind::MatchCount);
      const PrCurve prob_curve = pr_curve(cell, ScoreKind::Probability);
      const double gain = prob_curve.area_above_diagonal() -
                          match_curve.area_above_diagonal();
      if (classifier.name == "RIPPER") {
        std::printf("\n--- %s, RIPPER ---\n", combo.name.c_str());
        std::printf("  average match count curve:\n");
        print_curve(match_curve, 8);
        std::printf("  average probability curve:\n");
        print_curve(prob_curve, 8);
        ripper_gain += gain / 4;
      } else {
        std::printf("  [contrast] %s %-7s AUC: match=%.3f prob=%.3f "
                    "(gain %+.3f)\n",
                    combo.name.c_str(), classifier.name.c_str(),
                    match_curve.area_above_diagonal(),
                    prob_curve.area_above_diagonal(), gain);
        others_gain += gain / 8;
      }
    }
  }

  print_rule('=');
  std::printf("shape check: probability >> match count for RIPPER?  %s "
              "(RIPPER gain %+.3f, C4.5/NBC mean gain %+.3f)\n",
              ripper_gain > others_gain ? "YES" : "no", ripper_gain,
              others_gain);
  return 0;
}

const PlanRegistrar registrar{"fig2",
                              "Figure 2: average match count vs average probability with RIPPER",
                              run_plan};

}  // namespace
}  // namespace xfa::bench
