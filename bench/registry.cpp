#include "bench/registry.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/check.h"
#include "exec/thread_pool.h"

namespace xfa::bench {
namespace {

/// Registration order is link order (unspecified); plans() sorts by name so
/// every listing is deterministic.
std::vector<ExperimentPlan>& registry() {
  static std::vector<ExperimentPlan> plans;
  return plans;
}

int print_plan_list() {
  std::printf("%-24s %s\n", "PLAN", "DESCRIPTION");
  for (const ExperimentPlan* plan : plans())
    std::printf("%-24s %s\n", plan->name.c_str(), plan->description.c_str());
  return 0;
}

int print_usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--list] [--threads=N] [--out=PATH] <plan>...\n"
               "       (run `%s --list` for the registered plans)\n",
               argv0, argv0);
  return 2;
}

/// Parses the integer suffix of "--threads=N"; aborts the CLI on garbage.
bool parse_threads(const std::string& value, std::size_t* threads) {
  if (value.empty()) return false;
  char* end = nullptr;
  const unsigned long parsed = std::strtoul(value.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  *threads = static_cast<std::size_t>(parsed);
  return true;
}

}  // namespace

void register_plan(ExperimentPlan plan) {
  XFA_CHECK(!plan.name.empty()) << "plan with empty name";
  XFA_CHECK(static_cast<bool>(plan.run)) << "plan '" << plan.name
                                         << "' has no run function";
  XFA_CHECK(find_plan(plan.name) == nullptr)
      << "duplicate plan name '" << plan.name << "'";
  registry().push_back(std::move(plan));
}

std::vector<const ExperimentPlan*> plans() {
  std::vector<const ExperimentPlan*> sorted;
  sorted.reserve(registry().size());
  for (const ExperimentPlan& plan : registry()) sorted.push_back(&plan);
  std::sort(sorted.begin(), sorted.end(),
            [](const ExperimentPlan* a, const ExperimentPlan* b) {
              return a->name < b->name;
            });
  return sorted;
}

const ExperimentPlan* find_plan(const std::string& name) {
  for (const ExperimentPlan& plan : registry())
    if (plan.name == name) return &plan;
  return nullptr;
}

int run_plan_cli(int argc, char** argv, const char* default_plan) {
  bool list = false;
  std::size_t threads = 0;  // 0 = leave the shared pool at its default size
  bool threads_set = false;
  std::string out_path;
  std::vector<std::string> selected;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list") {
      list = true;
    } else if (arg.rfind("--threads=", 0) == 0) {
      if (!parse_threads(arg.substr(10), &threads) || threads == 0) {
        std::fprintf(stderr, "bad --threads value: %s\n", arg.c_str());
        return 2;
      }
      threads_set = true;
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg == "--help" || arg == "-h") {
      return print_usage(argv[0]);
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    } else {
      selected.push_back(arg);
    }
  }

  if (list) return print_plan_list();
  if (selected.empty()) {
    if (default_plan == nullptr) return print_usage(argv[0]);
    selected.push_back(default_plan);
  }

  // Resolve every plan before running any, so a typo in the second name
  // does not waste the first plan's simulation time.
  std::vector<const ExperimentPlan*> to_run;
  for (const std::string& name : selected) {
    const ExperimentPlan* plan = find_plan(name);
    if (plan == nullptr) {
      std::fprintf(stderr, "unknown plan '%s'; run `%s --list`\n",
                   name.c_str(), argv[0]);
      return 2;
    }
    to_run.push_back(plan);
  }

  if (threads_set) resize_shared_pool(threads);
  if (!out_path.empty()) {
    if (std::freopen(out_path.c_str(), "w", stdout) == nullptr) {
      std::fprintf(stderr, "cannot open --out path '%s'\n", out_path.c_str());
      return 2;
    }
  }

  int exit_code = 0;
  for (const ExperimentPlan* plan : to_run) {
    const int code = plan->run();
    if (code != 0) exit_code = code;
  }
  std::fflush(stdout);
  return exit_code;
}

PlanRegistrar::PlanRegistrar(std::string name, std::string description,
                             std::function<int()> run) {
  register_plan({std::move(name), std::move(description), std::move(run)});
}

}  // namespace xfa::bench
