// Reproduces Figure 5: average-probability time series for single-attack
// traces (black hole only / selective dropping only) on AODV/UDP with C4.5.
// Each trace has three 100-second intrusion sessions at 2500/5000/7500 s.
//
// Paper shape expectations:
//  * each attack type is clearly separated from normal traces;
//  * the black hole's damage persists after sessions end (forged maximum
//    sequence numbers are never rectified), so scores do not recover.

#include <cstdio>

#include "bench/common.h"
#include "bench/registry.h"

namespace xfa::bench {
namespace {

int run_plan() {
  using namespace xfa;
  using namespace xfa::bench;

  print_rule('=');
  std::printf("Figure 5: per-attack time series, AODV/UDP, C4.5\n");
  print_rule('=');

  const bool fast = fast_mode_enabled();
  const double scale = fast ? 0.25 : 1.0;
  const SimTime bin = 100 * scale;  // bin == session length: dips stay visible

  for (const AttackKind kind :
       {AttackKind::Blackhole, AttackKind::SelectiveDrop}) {
    const ExperimentData data = gather_experiment(
        RoutingKind::Aodv, TransportKind::Udp,
        paper_single_attack_options(kind));
    const Cell cell = evaluate(data, make_c45_factory());

    std::vector<const RawTrace*> normal_traces, abnormal_traces;
    for (std::size_t i = 1; i < data.normal_eval.size(); ++i)
      normal_traces.push_back(&data.normal_eval[i]);
    for (const RawTrace& trace : data.abnormal)
      abnormal_traces.push_back(&trace);

    const TimeSeries normal = downsample(
        score_series(cell.normal_scores, normal_traces,
                     ScoreKind::Probability),
        bin);
    const TimeSeries abnormal = downsample(
        score_series(cell.abnormal_scores, abnormal_traces,
                     ScoreKind::Probability),
        bin);

    const double theta = cell.detector.threshold_probability;
    std::printf("\n--- %s only (sessions @%.0f/%.0f/%.0f s, 100 s each; "
                "threshold %.3f) ---\n",
                to_string(kind), 2500 * scale, 5000 * scale, 7500 * scale,
                theta);
    // Print the series around each session (the interesting neighborhoods),
    // eliding the long flat stretches.
    std::printf("  %-10s %-10s %-10s\n", "time(s)", "normal", "attack");
    for (std::size_t i = 0; i < normal.size() && i < abnormal.size(); ++i) {
      const double t = normal.times[i];
      bool near_session = false;
      for (const double s : {2500.0, 5000.0, 7500.0})
        if (t > (s - 200) * scale && t <= (s + 400) * scale)
          near_session = true;
      if (near_session)
        std::printf("  %-10.0f %-10.3f %-10.3f%s\n", t, normal.values[i],
                    abnormal.values[i],
                    abnormal.values[i] < theta ? "  << ALARM" : "");
    }

    // Per-session statistics: mean attack score inside each session window
    // vs the normal series over the same window, and the first-alarm time.
    std::printf("  %-12s %-12s %-12s %-12s\n", "session", "normal",
                "attack", "detected");
    for (const double s : {2500.0, 5000.0, 7500.0}) {
      double normal_mean = 0, attack_mean = 0;
      std::size_t n = 0;
      bool detected = false;
      for (std::size_t t = 0; t < cell.abnormal_scores.size(); ++t) {
        const RawTrace& trace = cell.data->abnormal[t];
        for (std::size_t i = 0; i < trace.size(); ++i) {
          const double time = trace.times[i];
          if (time > s * scale && time <= (s + 100) * scale) {
            attack_mean += cell.abnormal_scores[t][i].avg_probability;
            ++n;
            if (cell.abnormal_scores[t][i].avg_probability < theta)
              detected = true;
          }
        }
      }
      attack_mean /= static_cast<double>(n);
      n = 0;
      for (std::size_t i = 0; i < normal.size(); ++i) {
        if (normal.times[i] > s * scale &&
            normal.times[i] <= (s + 100) * scale) {
          normal_mean += normal.values[i];
          ++n;
        }
      }
      normal_mean /= static_cast<double>(std::max<std::size_t>(n, 1));
      std::printf("  @%-11.0f %-12.3f %-12.3f %-12s\n", s * scale,
                  normal_mean, attack_mean, detected ? "YES" : "no");
    }
    std::printf(
        "  (between sessions the network heals within ~60 s on our\n"
        "   RFC-semantics AODV — see DESIGN.md section 7.9 for how this\n"
        "   differs from ns-2's never-rectified behaviour.)\n");
  }
  return 0;
}

const PlanRegistrar registrar{"fig5",
                              "Figure 5: per-attack time series (black hole / dropping), AODV/UDP, C4.5",
                              run_plan};

}  // namespace
}  // namespace xfa::bench
