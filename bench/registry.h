// Declarative bench driver: every reproduced figure/table/ablation is an
// ExperimentPlan registered at static-init time, and one binary (xfa_bench)
// lists and runs them. The legacy per-figure binaries are thin shims that
// forward to the same registry with a default plan baked in.
//
// CLI contract (run_plan_cli):
//   xfa_bench --list                 print the registered plans, one per line
//   xfa_bench <plan> [<plan>...]     run plans in the given order
//   xfa_bench <plan> --threads=N     size the shared execution pool first
//   xfa_bench <plan> --out=PATH      redirect stdout to PATH
//
// Plans print to stdout exactly what the pre-registry binaries printed;
// --threads only changes wall-clock, never bytes (see DESIGN.md §9).
#pragma once

#include <functional>
#include <string>
#include <vector>

namespace xfa::bench {

struct ExperimentPlan {
  std::string name;         // CLI handle, e.g. "fig1"
  std::string description;  // one-line summary for --list
  std::function<int()> run; // returns the process exit code
};

/// Adds a plan to the registry. Duplicate names abort (XFA_CHECK).
void register_plan(ExperimentPlan plan);

/// All registered plans, sorted by name.
std::vector<const ExperimentPlan*> plans();

/// Looks up one plan; nullptr when unknown.
const ExperimentPlan* find_plan(const std::string& name);

/// The xfa_bench entry point. `default_plan` (used by the legacy shims)
/// names the plan to run when argv selects none.
int run_plan_cli(int argc, char** argv, const char* default_plan = nullptr);

/// Registers a plan from a translation-unit-scope static initializer:
///   const PlanRegistrar registrar{"fig1", "Figure 1: ...", run_plan};
struct PlanRegistrar {
  PlanRegistrar(std::string name, std::string description,
                std::function<int()> run);
};

}  // namespace xfa::bench
