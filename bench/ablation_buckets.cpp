// Ablation A: equal-frequency bucket count (the paper fixes 5) and the
// discretizer's relative-gap guard, on AODV/UDP with C4.5.

#include <cstdio>

#include "bench/common.h"
#include "bench/registry.h"

namespace xfa::bench {
namespace {

int run_plan() {
  using namespace xfa;
  using namespace xfa::bench;

  print_rule('=');
  std::printf("Ablation A: discretization buckets / cut-gap guard "
              "(AODV/UDP, C4.5, avg probability)\n");
  print_rule('=');

  const ExperimentData data = gather_experiment(
      RoutingKind::Aodv, TransportKind::Udp, paper_mixed_options());

  std::printf("%-10s %-8s %-10s %-16s\n", "buckets", "gap", "AUC+",
              "optimal (r,p)");
  for (const int buckets : {3, 5, 8}) {
    for (const double gap : {0.0, 0.25}) {
      DetectorOptions options;
      options.buckets = buckets;
      options.min_relative_gap = gap;
      const Cell cell = evaluate(data, make_c45_factory(), options);
      const PrCurve curve = pr_curve(cell, ScoreKind::Probability);
      const PrPoint best = curve.optimal_point();
      std::printf("%-10d %-8.2f %-10.3f (%.2f, %.2f)%s\n", buckets, gap,
                  curve.area_above_diagonal(), best.recall, best.precision,
                  (buckets == 5 && gap == 0.25) ? "   <- default" : "");
    }
  }
  std::printf(
      "\nReading: the paper's 5 buckets are a reasonable middle; the gap\n"
      "guard (collapsing quantile cuts through tightly clustered mass)\n"
      "is what makes bucket indices stable across runs of the scenario.\n");
  return 0;
}

const PlanRegistrar registrar{"ablation_buckets",
                              "Ablation A: equal-frequency bucket count and relative-gap guard",
                              run_plan};

}  // namespace
}  // namespace xfa::bench
