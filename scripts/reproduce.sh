#!/usr/bin/env sh
# Regenerates every table and figure of the paper, plus the ablations.
# First run simulates ~40 x 10^4-second traces (tens of minutes on one
# core); all traces are cached under ./xfa_cache for subsequent runs.
set -e
cmake -B build -G Ninja
cmake --build build
./build/examples/warm                      # pre-simulate all traces
ctest --test-dir build --output-on-failure
for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] && "$b"
done
