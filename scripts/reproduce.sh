#!/usr/bin/env sh
# Regenerates every table and figure of the paper, plus the ablations,
# through the declarative bench driver. First run simulates ~40 x
# 10^4-second traces (tens of minutes on one core); all traces are cached
# under ./xfa_cache for subsequent runs. Pass a thread count to parallelize
# the trace simulations, e.g. scripts/reproduce.sh 8 (the printed bytes are
# identical for any thread count).
set -e
THREADS="${1:-0}"
cmake -B build -G Ninja
cmake --build build
./build/tools/warm                         # pre-simulate all traces
ctest --test-dir build --output-on-failure
PLANS="table1_3 table4_6 fig1 fig2 fig3 fig4 fig5 fig6 \
  ablation_buckets ablation_periods ablation_threshold \
  ablation_generalization ablation_labels"
if [ "${THREADS}" -gt 0 ] 2>/dev/null; then
  # shellcheck disable=SC2086
  ./build/bench/xfa_bench --threads="${THREADS}" ${PLANS}
else
  # shellcheck disable=SC2086
  ./build/bench/xfa_bench ${PLANS}
fi
