#!/usr/bin/env bash
# Full correctness gate: build + test the tree three times —
#   1. plain Release with XFA_WERROR=ON (warnings are errors),
#   2. ASan+UBSan with recovery disabled (any report aborts the test), and
#   3. TSan over the concurrency suites (thread pool, task groups,
#      single-flight, cache stress, parallel gather, engine determinism) —
# running the xfa_lint repo rules in every pass, then re-running the chaos /
# corruption robustness suites under the sanitizers with the cache forced
# live (XFA_NO_CACHE) so every fault-injection and artifact-parsing path is
# actually exercised under ASan+UBSan. CI runs exactly this script.
#
# Usage: scripts/check.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

run_pass() {
  local name="$1" build_dir="$2"
  shift 2
  echo "=== ${name}: configure ==="
  cmake -B "${build_dir}" -S . -DXFA_WERROR=ON "$@"
  echo "=== ${name}: build ==="
  cmake --build "${build_dir}" -j "${JOBS}"
  echo "=== ${name}: lint ==="
  ctest --test-dir "${build_dir}" -R xfa_lint --output-on-failure
  # Machine-readable report for CI artifact upload; exit status already
  # enforced by the ctest gate above.
  "${build_dir}/tools/lint/xfa_lint" --format=sarif \
    --out="${build_dir}/xfa_lint.sarif" . >/dev/null || true
  echo "=== ${name}: hot-path smoke (simulation + detection kernels) ==="
  # Correctness smoke, not a benchmark: every kernel self-checks (grid vs
  # brute force, scheduler counters, memoization identity, view-fit vs
  # Dataset-fit determinism, serial vs parallel score bit-identity) under
  # XFA_CHECK.
  "${build_dir}/bench/xfa_microbench" --quick
  echo "=== ${name}: ctest ==="
  ctest --test-dir "${build_dir}" -j "${JOBS}" --output-on-failure
}

run_pass "release" build-check-release -DCMAKE_BUILD_TYPE=Release

run_pass "asan+ubsan" build-check-sanitize \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DXFA_SANITIZE="address;undefined"

# Robustness gate: the corruption sweeps (cache_robustness_test), the
# fault-injection layer (faults_test, degraded_cfa_test), and the
# determinism-under-faults guard must all hold with sanitizers armed and
# caching disabled — no cache artifact may crash the process, and no chaos
# path may contain UB.
echo "=== asan+ubsan: chaos/corruption robustness (cache disabled) ==="
XFA_NO_CACHE=1 ctest --test-dir build-check-sanitize -j "${JOBS}" \
  -R 'CacheRobustness|FaultPlan|FaultInjector|FaultScenario|DegradedCfa|DegradedPipeline|Determinism' \
  --output-on-failure

# Concurrency gate: the execution layer and everything built on it must be
# race-free under ThreadSanitizer. ASan and TSan cannot share a build, so
# this is its own pass; it runs only the concurrency-focused suites (a full
# TSan ctest would multiply the simulation-heavy tests' runtime ~10x for no
# extra interleaving coverage).
echo "=== tsan: configure + build ==="
cmake -B build-check-tsan -S . -DXFA_WERROR=ON \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DXFA_SANITIZE="thread"
cmake --build build-check-tsan -j "${JOBS}"
echo "=== tsan: concurrency suites ==="
ctest --test-dir build-check-tsan -j "${JOBS}" \
  -R 'ThreadPool|TaskGroup|ParallelFor|SingleFlight|SharedPool|CacheStress|ParallelGather|EngineDeterminism|ScoreAllBitIdentical|FamilyParamTest' \
  --output-on-failure

echo "All checks passed."
