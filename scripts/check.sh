#!/usr/bin/env bash
# Full correctness gate: build + test the tree twice —
#   1. plain Release with XFA_WERROR=ON (warnings are errors), and
#   2. ASan+UBSan with recovery disabled (any report aborts the test) —
# running the xfa_lint repo rules in both, then re-running the chaos /
# corruption robustness suites under the sanitizers with the cache forced
# live (XFA_NO_CACHE) so every fault-injection and artifact-parsing path is
# actually exercised under ASan+UBSan. CI runs exactly this script.
#
# Usage: scripts/check.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

run_pass() {
  local name="$1" build_dir="$2"
  shift 2
  echo "=== ${name}: configure ==="
  cmake -B "${build_dir}" -S . -DXFA_WERROR=ON "$@"
  echo "=== ${name}: build ==="
  cmake --build "${build_dir}" -j "${JOBS}"
  echo "=== ${name}: lint ==="
  ctest --test-dir "${build_dir}" -R xfa_lint --output-on-failure
  echo "=== ${name}: ctest ==="
  ctest --test-dir "${build_dir}" -j "${JOBS}" --output-on-failure
}

run_pass "release" build-check-release -DCMAKE_BUILD_TYPE=Release

run_pass "asan+ubsan" build-check-sanitize \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DXFA_SANITIZE="address;undefined"

# Robustness gate: the corruption sweeps (cache_robustness_test), the
# fault-injection layer (faults_test, degraded_cfa_test), and the
# determinism-under-faults guard must all hold with sanitizers armed and
# caching disabled — no cache artifact may crash the process, and no chaos
# path may contain UB.
echo "=== asan+ubsan: chaos/corruption robustness (cache disabled) ==="
XFA_NO_CACHE=1 ctest --test-dir build-check-sanitize -j "${JOBS}" \
  -R 'CacheRobustness|FaultPlan|FaultInjector|FaultScenario|DegradedCfa|DegradedPipeline|Determinism' \
  --output-on-failure

echo "All checks passed."
