#include "lint/rules.h"

#include <algorithm>

namespace xfa::lint {

const std::vector<RuleInfo>& rule_registry() {
  static const std::vector<RuleInfo> kRules = {
      {"check-no-side-effects",
       "no ++/--/assignment inside XFA_CHECK arguments",
       "src/**",
       "XFA_CHECK stays armed in every build, and the comparison variants "
       "re-evaluate operands when composing the failure message; XFA_DCHECK "
       "vanishes in release builds. Either way a side effect inside a check "
       "argument runs a different number of times across build types, so "
       "program state silently diverges from the sanitizer builds CI "
       "actually tests."},
      {"cmake-registered",
       "every .cpp under src/ is listed in src/CMakeLists.txt",
       "src/**/*.cpp",
       "A translation unit missing from the build silently drops out of "
       "compilation, clang-tidy, and sanitizer coverage while still looking "
       "maintained."},
      {"exec-only-threads",
       "no raw std::thread / std::jthread / std::async outside src/exec",
       "src/** except src/exec",
       "All concurrency goes through the shared execution layer (ThreadPool, "
       "TaskGroup, parallel_for), which owns the determinism and nested-wait "
       "guarantees; a raw thread bypasses cancellation, ExecStats, and the "
       "cooperative-drain deadlock protection."},
      {"hoist-or-grid",
       "no mobility_.position() inside src/net loop bodies",
       "src/net except net/neighbor_index.*",
       "Per-receiver position lookups in channel hot loops are O(N) trig "
       "each; hoist the query out of the loop or route it through the "
       "spatial NeighborIndex, which owns the sanctioned bulk query."},
      {"include-cycle",
       "the quoted-include graph under src/ is acyclic",
       "src/**",
       "An include cycle means no header in the loop can be understood (or "
       "compiled) on its own; whichever TU includes one of them first picks "
       "the winner by accident."},
      {"include-layering",
       "includes must respect the declared module-layering DAG",
       "src/**",
       "Modules are layered common/exec < sim/net/mobility < routing/"
       "transport/attacks/faults/audit < features/ml/cfa/eval/scenario. An "
       "upward include couples a lower layer to policy above it, which is "
       "how simulation internals grow detection dependencies and sharded "
       "execution becomes impossible to link in isolation."},
      {"no-mutable-global",
       "no mutable namespace-scope state outside src/exec and common/env.*",
       "src/** except src/exec, src/common/env.*",
       "Mutable globals are cross-trace coupling: two scenario runs on the "
       "shared pool would observe each other through them, breaking the "
       "byte-identical-for-any-thread-count guarantee. The execution layer "
       "and the immutable env snapshot are the two audited exceptions."},
      {"no-raw-assert",
       "no C assert(); contracts use the XFA_CHECK family",
       "src/**",
       "assert() vanishes under NDEBUG — exactly the configuration tier-1 CI "
       "builds — so none of those invariants would actually be exercised. "
       "XFA_CHECK (common/check.h) stays armed in every build type."},
      {"ordered-iteration",
       "no range-for over unordered containers in artifact-emitting modules",
       "src/audit, src/features, src/cfa, src/eval, src/scenario",
       "Unordered-container iteration order is an accident of hashing and "
       "insertion history; in a TU that feeds traces, alerts, or other "
       "artifacts, that order leaks into emitted bytes and breaks the "
       "byte-identical-per-seed guarantee across library versions. Iterate "
       "a sorted view or an order-preserving structure instead."},
      {"pragma-once",
       "every header opens with #pragma once",
       "src/**/*.h",
       "Headers must be safely includable from any TU; the repo "
       "standardizes on #pragma once (after any leading comment block) "
       "instead of guard macros."},
      {"rng-determinism",
       "no std::rand/random_device/srand/time() outside sim/rng.*",
       "src/** except src/sim/rng.*",
       "Every stochastic draw must come from the centrally seeded xfa::Rng "
       "so identical scenario seeds reproduce traces byte-for-byte; raw "
       "entropy or wall-clock input anywhere else silently forks the "
       "stream."},
      {"scratch-scoring",
       "no allocating predict_dist() inside src/cfa loop bodies",
       "src/cfa, loops",
       "Batched scoring is the detection hot path and must stay "
       "allocation-free: predict_dist() materializes a fresh vector per "
       "(row, sub-model) pair; use predict_dist_into with a reused scratch "
       "buffer (ml/dataset.h)."},
      {"status-not-abort",
       "scenario TUs that do file I/O must not XFA_CHECK",
       "src/scenario TUs including <fstream>/<filesystem>/<cstdio>",
       "Environmental failures (corrupt artifacts, full disks, racing "
       "writers) are expected at production scale and must propagate as "
       "Status/Result (common/status.h); an abort-style contract turns a "
       "recoverable cache problem into a process kill."},
      {"unused-include",
       "direct includes must provide at least one name the TU uses",
       "src/**",
       "IWYU-lite: an include whose declared names never appear in the "
       "including TU is dead coupling — it slows builds, widens the "
       "layering graph, and hides the include that is actually load-"
       "bearing. Matching is conservative (declaration-anchored names), so "
       "a finding here is near-certain dead weight."},
  };
  return kRules;
}

const RuleInfo* find_rule(std::string_view id) {
  const auto& rules = rule_registry();
  const auto it = std::find_if(rules.begin(), rules.end(),
                               [&](const RuleInfo& r) { return r.id == id; });
  return it == rules.end() ? nullptr : &*it;
}

const SourceFile* Project::find(std::string_view rel) const {
  const auto it = std::lower_bound(
      files.begin(), files.end(), rel,
      [](const SourceFile& f, std::string_view r) { return f.rel < r; });
  return it != files.end() && it->rel == rel ? &*it : nullptr;
}

}  // namespace xfa::lint
