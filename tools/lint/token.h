// Token model for the xfa_lint C++ lexer.
//
// The lexer (lint/lexer.h) turns a source buffer into a flat token vector.
// Rules match on tokens, never on raw text, which is what lets them stay
// silent on rule triggers that appear inside comments, string literals, and
// raw strings — the blind spot of the regex-based lint this framework
// replaced.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace xfa::lint {

enum class TokenKind : std::uint8_t {
  kIdentifier,    // foo, audit_, XFA_CHECK — keywords excluded
  kKeyword,       // C++20 keyword (for, while, namespace, const, ...)
  kNumber,        // pp-number: 42, 0x1F, 1'000'000, 1e-5, 0b1010
  kString,        // "..." including encoding prefixes and R"delim(...)delim"
  kCharLit,       // 'x', L'\n'
  kPunct,         // operators and punctuation, maximal munch ("<<=", "::")
  kComment,       // // line (with continuations) or /* block */
  kPreprocessor,  // a whole logical directive line: #include <x>, #define ...
};

struct Token {
  TokenKind kind;
  std::uint32_t offset;  // byte offset into the source buffer
  std::uint32_t length;  // byte length
  std::uint32_t line;    // 1-based line of the first byte
  std::uint32_t col;     // 1-based column of the first byte
};

/// Lexes a C++ source buffer. Never fails: malformed input (unterminated
/// literals, stray bytes) degrades to best-effort tokens so the linter can
/// still scan the rest of the file.
std::vector<Token> lex(std::string_view text);

/// The token's text within the buffer it was lexed from.
inline std::string_view token_text(std::string_view text, const Token& t) {
  return text.substr(t.offset, t.length);
}

/// True for the C++20 keyword set (including alternative operator
/// representations like `and`/`not_eq`).
bool is_cpp_keyword(std::string_view word);

}  // namespace xfa::lint
