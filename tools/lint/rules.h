// Rule registry and the two rule-execution entry points.
//
// Every rule has a stable ID, a one-line synopsis, a scope note, and a
// rationale paragraph — printable via `xfa_lint --list` and embedded into
// JSON/SARIF reports, following the actionable-output line of the paper's
// related work: a finding must say what fired, where, and why it matters.
//
// Rules come in two shapes:
//   - file rules: look at one lexed TU at a time (token patterns, brace/loop
//     tracking). Run in parallel across files.
//   - project rules: need the whole tree (the include graph, CMake
//     registration, cross-file type knowledge for ordered-iteration). Run
//     once after every file is lexed.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "lint/model.h"

namespace xfa::lint {

struct RuleInfo {
  std::string_view id;
  std::string_view synopsis;   // one line, shown in --list and reports
  std::string_view scope;      // where it applies, e.g. "src/net, loops"
  std::string_view rationale;  // why the invariant exists
};

/// All rules in stable (alphabetical) registry order.
const std::vector<RuleInfo>& rule_registry();

/// nullptr when the id is unknown (e.g. a typo in a suppression comment).
const RuleInfo* find_rule(std::string_view id);

/// The whole scanned tree plus out-of-band inputs for project rules.
struct Project {
  std::vector<SourceFile> files;  // sorted by rel
  std::string cmake_text;         // contents of src/CMakeLists.txt

  const SourceFile* find(std::string_view rel) const;
};

/// Runs every single-file rule over one TU.
void run_file_rules(const SourceFile& file, std::vector<Finding>& out);

/// Runs every whole-tree rule (include graph, layering, IWYU-lite,
/// CMake registration, cross-TU ordered-iteration).
void run_project_rules(const Project& project, std::vector<Finding>& out);

}  // namespace xfa::lint
