#include "lint/model.h"

namespace xfa::lint {
namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t'))
    s.remove_prefix(1);
  while (!s.empty() &&
         (s.back() == ' ' || s.back() == '\t' || s.back() == '\r' ||
          s.back() == '\n' || s.back() == '/' || s.back() == '*'))
    s.remove_suffix(1);
  return s;
}

/// Parses `xfa-lint: allow(rule-a, rule-b) reason...` occurrences inside a
/// comment token's text. Several rules may share one allow(); the reason is
/// everything after the closing paren.
void parse_suppressions(std::string_view comment, std::uint32_t line,
                        std::vector<Suppression>& out) {
  static constexpr std::string_view kMarker = "xfa-lint:";
  const std::size_t marker = comment.find(kMarker);
  if (marker == std::string_view::npos) return;
  std::string_view rest = comment.substr(marker + kMarker.size());
  const std::size_t open = rest.find("allow(");
  if (open == std::string_view::npos) return;
  rest.remove_prefix(open + 6);
  const std::size_t close = rest.find(')');
  if (close == std::string_view::npos) return;
  const std::string_view rules = rest.substr(0, close);
  const std::string reason{trim(rest.substr(close + 1))};

  std::size_t start = 0;
  while (start <= rules.size()) {
    std::size_t comma = rules.find(',', start);
    if (comma == std::string_view::npos) comma = rules.size();
    const std::string_view rule = trim(rules.substr(start, comma - start));
    if (!rule.empty()) out.push_back({std::string{rule}, reason, line, false});
    start = comma + 1;
  }
}

}  // namespace

SourceFile make_source_file(std::string rel, std::string text) {
  SourceFile file;
  file.rel = std::move(rel);
  file.text = std::move(text);
  file.is_header = file.rel.size() >= 2 &&
                   file.rel.compare(file.rel.size() - 2, 2, ".h") == 0;
  file.tokens = lex(file.text);
  for (const Token& t : file.tokens) {
    if (t.kind == TokenKind::kComment)
      parse_suppressions(file.tok(t), t.line, file.suppressions);
  }
  return file;
}

std::string_view module_of(std::string_view rel) {
  const std::size_t slash = rel.find('/');
  return slash == std::string_view::npos ? rel : rel.substr(0, slash);
}

}  // namespace xfa::lint
