// Include extraction and the declared module-layering DAG.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "lint/model.h"

namespace xfa::lint {

struct IncludeEdge {
  std::string target;  // "net/node.h" (quoted) or "vector" (angle)
  bool quoted = false;
  std::uint32_t line = 0;
};

/// Parses the #include directives out of a lexed file.
std::vector<IncludeEdge> extract_includes(const SourceFile& file);

/// The declared layering band of a module directory under src/, bottom = 0:
///   0: common, exec
///   1: sim, net, mobility
///   2: routing, transport, attacks, faults, audit
///   3: features, ml, cfa, eval, scenario
/// A module may include same-band or lower-band modules (the include-cycle
/// rule separately rejects loops); an upward edge is a layering violation.
/// Returns -1 for a directory not in the map.
int layer_band(std::string_view module);

}  // namespace xfa::lint
