#include "lint/token.h"

#include <array>
#include <string>
#include <unordered_set>

namespace xfa::lint {
namespace {

bool ident_start(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}
bool digit(char c) { return c >= '0' && c <= '9'; }
bool ident_char(char c) { return ident_start(c) || digit(c); }

/// Byte cursor with 1-based line/col tracking.
struct Cursor {
  std::string_view s;
  std::size_t i = 0;
  std::uint32_t line = 1;
  std::uint32_t col = 1;

  bool eof() const { return i >= s.size(); }
  char peek(std::size_t k = 0) const {
    return i + k < s.size() ? s[i + k] : '\0';
  }
  void advance() {
    if (s[i] == '\n') {
      ++line;
      col = 1;
    } else {
      ++col;
    }
    ++i;
  }
  void advance_n(std::size_t n) {
    for (std::size_t k = 0; k < n && !eof(); ++k) advance();
  }

  /// A backslash followed by (optionally \r and) \n: a spliced line.
  bool at_line_splice() const {
    if (peek() != '\\') return false;
    if (peek(1) == '\n') return true;
    return peek(1) == '\r' && peek(2) == '\n';
  }
  void skip_line_splice() {
    advance();                        // backslash
    if (peek() == '\r') advance();    // optional CR
    if (peek() == '\n') advance();    // newline
  }
};

/// Consumes a "..." or '...' literal body after the opening quote, honoring
/// backslash escapes. Stops (without consuming) at an unescaped newline so a
/// missing closing quote cannot eat the rest of the file.
void consume_quoted(Cursor& c, char quote) {
  while (!c.eof()) {
    const char ch = c.peek();
    if (ch == '\\') {
      if (c.at_line_splice()) {
        c.skip_line_splice();
        continue;
      }
      c.advance();
      if (!c.eof()) c.advance();  // the escaped character
      continue;
    }
    if (ch == '\n') return;  // unterminated; recover at end of line
    c.advance();
    if (ch == quote) return;
  }
}

/// Consumes R"delim( ... )delim" after the opening R has been recognized;
/// the cursor sits on the double quote.
void consume_raw_string(Cursor& c) {
  c.advance();  // opening quote
  std::string delim;
  while (!c.eof() && c.peek() != '(' && c.peek() != '\n' &&
         delim.size() <= 16) {
    delim.push_back(c.peek());
    c.advance();
  }
  if (c.eof() || c.peek() != '(') return;  // malformed; stop here
  c.advance();                             // '('
  const std::string close = ")" + delim + "\"";
  while (!c.eof()) {
    if (c.peek() == ')' && c.s.compare(c.i, close.size(), close) == 0) {
      c.advance_n(close.size());
      return;
    }
    c.advance();
  }
}

/// Consumes a pp-number: digits, identifier chars, '.', digit separators
/// ('\'' between digits), and signed exponents (e+ / E- / p+ / P-).
void consume_number(Cursor& c) {
  while (!c.eof()) {
    const char ch = c.peek();
    if (ident_char(ch) || ch == '.') {
      c.advance();
      continue;
    }
    if (ch == '\'' && ident_char(c.peek(1))) {  // digit separator
      c.advance();
      c.advance();
      continue;
    }
    if ((ch == '+' || ch == '-') && c.i > 0) {
      const char prev = c.s[c.i - 1];
      if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
        c.advance();
        continue;
      }
    }
    return;
  }
}

/// Consumes a // comment, honoring spliced lines (a trailing backslash
/// continues the comment onto the next physical line).
void consume_line_comment(Cursor& c) {
  while (!c.eof()) {
    if (c.at_line_splice()) {
      c.skip_line_splice();
      continue;
    }
    if (c.peek() == '\n') return;
    c.advance();
  }
}

/// Consumes a block comment through the first "*/" (block comments do not
/// nest in C++; an inner "/*" is plain comment text).
void consume_block_comment(Cursor& c) {
  while (!c.eof()) {
    if (c.peek() == '*' && c.peek(1) == '/') {
      c.advance();
      c.advance();
      return;
    }
    c.advance();
  }
}

/// Consumes one whole preprocessor directive (the cursor sits on '#'): up to
/// the end of the logical line, crossing spliced lines, skipping comments and
/// quoted regions so a '\n' inside them never ends the directive early.
void consume_directive(Cursor& c) {
  while (!c.eof()) {
    if (c.at_line_splice()) {
      c.skip_line_splice();
      continue;
    }
    const char ch = c.peek();
    if (ch == '\n') return;
    if (ch == '/' && c.peek(1) == '/') {
      consume_line_comment(c);
      return;
    }
    if (ch == '/' && c.peek(1) == '*') {
      c.advance();
      c.advance();
      consume_block_comment(c);
      continue;
    }
    if (ch == '"' || ch == '\'') {
      c.advance();
      consume_quoted(c, ch);
      continue;
    }
    c.advance();
  }
}

/// Multi-character operators, longest first within each leading character.
constexpr std::array<std::string_view, 21> kLongPuncts = {
    "<<=", ">>=", "->*", "...", "<=>", "::", "->", "++", "--",
    "<<",  ">>",  "<=",  ">=",  "==",  "!=", "&&", "||", "+=",
    "-=",  "##",  ".*",
};
constexpr std::array<std::string_view, 5> kCompoundAssign = {"*=", "/=", "%=",
                                                             "&=", "|="};

std::size_t punct_length(std::string_view rest) {
  for (const std::string_view op : kLongPuncts)
    if (rest.substr(0, op.size()) == op) return op.size();
  for (const std::string_view op : kCompoundAssign)
    if (rest.substr(0, op.size()) == op) return op.size();
  if (rest.substr(0, 2) == "^=") return 2;
  return 1;
}

/// Raw-string / encoding prefix lengths: returns the prefix length when the
/// characters at `rest` begin a string or char literal with that prefix, and
/// sets `raw` when it is a raw string. 0 when not a prefixed literal.
std::size_t literal_prefix(std::string_view rest, bool& raw) {
  static constexpr std::array<std::string_view, 5> kRaw = {"R\"", "u8R\"",
                                                           "uR\"", "UR\"",
                                                           "LR\""};
  for (const std::string_view p : kRaw) {
    if (rest.substr(0, p.size()) == p) {
      raw = true;
      return p.size() - 1;  // length up to (not including) the quote
    }
  }
  static constexpr std::array<std::string_view, 4> kEnc = {"u8", "u", "U",
                                                           "L"};
  for (const std::string_view p : kEnc) {
    if (rest.substr(0, p.size()) == p &&
        (rest.size() > p.size() &&
         (rest[p.size()] == '"' || rest[p.size()] == '\''))) {
      raw = false;
      return p.size();
    }
  }
  return 0;
}

}  // namespace

bool is_cpp_keyword(std::string_view word) {
  static const std::unordered_set<std::string_view> kKeywords = {
      "alignas",      "alignof",      "and",           "and_eq",
      "asm",          "auto",         "bitand",        "bitor",
      "bool",         "break",        "case",          "catch",
      "char",         "char8_t",      "char16_t",      "char32_t",
      "class",        "co_await",     "co_return",     "co_yield",
      "compl",        "concept",      "const",         "const_cast",
      "consteval",    "constexpr",    "constinit",     "continue",
      "decltype",     "default",      "delete",        "do",
      "double",       "dynamic_cast", "else",          "enum",
      "explicit",     "export",       "extern",        "false",
      "float",        "for",          "friend",        "goto",
      "if",           "inline",       "int",           "long",
      "mutable",      "namespace",    "new",           "noexcept",
      "not",          "not_eq",       "nullptr",       "operator",
      "or",           "or_eq",        "private",       "protected",
      "public",       "register",     "reinterpret_cast", "requires",
      "return",       "short",        "signed",        "sizeof",
      "static",       "static_assert", "static_cast",  "struct",
      "switch",       "template",     "this",          "thread_local",
      "throw",        "true",         "try",           "typedef",
      "typeid",       "typename",     "union",         "unsigned",
      "using",        "virtual",      "void",          "volatile",
      "wchar_t",      "while",        "xor",           "xor_eq",
  };
  return kKeywords.count(word) != 0;
}

std::vector<Token> lex(std::string_view text) {
  std::vector<Token> tokens;
  Cursor c{text};
  bool line_has_code = false;  // a '#' only opens a directive at line start

  while (!c.eof()) {
    const char ch = c.peek();
    if (ch == '\n') {
      line_has_code = false;
      c.advance();
      continue;
    }
    if (ch == ' ' || ch == '\t' || ch == '\r' || ch == '\v' || ch == '\f') {
      c.advance();
      continue;
    }
    if (c.at_line_splice()) {
      c.skip_line_splice();
      continue;
    }

    Token t;
    t.offset = static_cast<std::uint32_t>(c.i);
    t.line = c.line;
    t.col = c.col;

    if (ch == '/' && c.peek(1) == '/') {
      consume_line_comment(c);
      t.kind = TokenKind::kComment;
    } else if (ch == '/' && c.peek(1) == '*') {
      c.advance();
      c.advance();
      consume_block_comment(c);
      t.kind = TokenKind::kComment;
    } else if (ch == '#' && !line_has_code) {
      consume_directive(c);
      t.kind = TokenKind::kPreprocessor;
    } else if (ch == '"') {
      c.advance();
      consume_quoted(c, '"');
      t.kind = TokenKind::kString;
      line_has_code = true;
    } else if (ch == '\'') {
      c.advance();
      consume_quoted(c, '\'');
      t.kind = TokenKind::kCharLit;
      line_has_code = true;
    } else if (digit(ch) || (ch == '.' && digit(c.peek(1)))) {
      consume_number(c);
      t.kind = TokenKind::kNumber;
      line_has_code = true;
    } else if (ident_start(ch)) {
      bool raw = false;
      const std::size_t prefix = literal_prefix(text.substr(c.i), raw);
      if (prefix > 0) {
        c.advance_n(prefix);
        if (raw) {
          consume_raw_string(c);
          t.kind = TokenKind::kString;
        } else {
          const char quote = c.peek();
          c.advance();
          consume_quoted(c, quote);
          t.kind = quote == '"' ? TokenKind::kString : TokenKind::kCharLit;
        }
      } else {
        while (!c.eof() && ident_char(c.peek())) c.advance();
        const std::string_view word =
            text.substr(t.offset, c.i - t.offset);
        t.kind = is_cpp_keyword(word) ? TokenKind::kKeyword
                                      : TokenKind::kIdentifier;
      }
      line_has_code = true;
    } else {
      c.advance_n(punct_length(text.substr(c.i)));
      t.kind = TokenKind::kPunct;
      line_has_code = true;
    }

    t.length = static_cast<std::uint32_t>(c.i - t.offset);
    tokens.push_back(t);
  }
  return tokens;
}

}  // namespace xfa::lint
