#include "lint/include_graph.h"

#include <array>
#include <utility>

namespace xfa::lint {
namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t'))
    s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r'))
    s.remove_suffix(1);
  return s;
}

}  // namespace

std::vector<IncludeEdge> extract_includes(const SourceFile& file) {
  std::vector<IncludeEdge> edges;
  for (const Token& t : file.tokens) {
    if (t.kind != TokenKind::kPreprocessor) continue;
    std::string_view text = file.tok(t);
    if (text.empty() || text.front() != '#') continue;
    text.remove_prefix(1);
    text = trim(text);
    if (text.substr(0, 7) != "include") continue;
    text = trim(text.substr(7));
    if (text.empty()) continue;
    IncludeEdge edge;
    edge.line = t.line;
    char close;
    if (text.front() == '"') {
      edge.quoted = true;
      close = '"';
    } else if (text.front() == '<') {
      edge.quoted = false;
      close = '>';
    } else {
      continue;  // computed include — out of scope
    }
    text.remove_prefix(1);
    const std::size_t end = text.find(close);
    if (end == std::string_view::npos) continue;
    edge.target = std::string{text.substr(0, end)};
    edges.push_back(std::move(edge));
  }
  return edges;
}

int layer_band(std::string_view module) {
  static constexpr std::array<std::pair<std::string_view, int>, 15> kBands = {{
      {"common", 0},
      {"exec", 0},
      {"sim", 1},
      {"net", 1},
      {"mobility", 1},
      {"routing", 2},
      {"transport", 2},
      {"attacks", 2},
      {"faults", 2},
      {"audit", 2},
      {"features", 3},
      {"ml", 3},
      {"cfa", 3},
      {"eval", 3},
      {"scenario", 3},
  }};
  for (const auto& [name, band] : kBands)
    if (name == module) return band;
  return -1;
}

}  // namespace xfa::lint
