#include "lint/report.h"

#include <cstdio>
#include <string>
#include <string_view>

#include "lint/rules.h"

namespace xfa::lint {
namespace {

/// Minimal JSON string escaping (the only non-ASCII we emit is file text
/// we authored, so control characters and quotes are the real risks).
std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out.push_back(ch);
        }
    }
  }
  return out;
}

std::string src_path(const Finding& f) { return "src/" + f.file; }

}  // namespace

std::string render_text(const LintResult& r) {
  std::string out;
  for (const Finding& f : r.findings) {
    out += src_path(f) + ":" + std::to_string(f.line) + ":" +
           std::to_string(f.col) + ": [" + f.rule + "] " + f.message + "\n";
  }
  for (const Finding& f : r.suppressed) {
    out += src_path(f) + ":" + std::to_string(f.line) + ": [" + f.rule +
           "] suppressed";
    if (!f.suppress_reason.empty()) out += " — " + f.suppress_reason;
    out += "\n";
  }
  for (const Suppression& s : r.unused_suppressions) {
    out += "warning: unused suppression for '" + s.rule + "' at " + s.reason +
           " line " + std::to_string(s.line) +
           " — remove the stale allow comment\n";
  }
  out += "xfa_lint: " + std::to_string(r.files_scanned) + " files, " +
         std::to_string(r.findings.size()) + " finding(s), " +
         std::to_string(r.suppressed.size()) + " suppressed\n";
  return out;
}

std::string render_json(const LintResult& r) {
  std::string out = "{\n  \"tool\": \"xfa_lint\",\n  \"files_scanned\": " +
                    std::to_string(r.files_scanned) + ",\n  \"findings\": [";
  const auto emit = [&out](const Finding& f, bool first) {
    if (!first) out += ",";
    out += "\n    {\"file\": \"" + json_escape(src_path(f)) +
           "\", \"line\": " + std::to_string(f.line) +
           ", \"col\": " + std::to_string(f.col) + ", \"rule\": \"" +
           json_escape(f.rule) + "\", \"suppressed\": " +
           (f.suppressed ? "true" : "false") + ", \"message\": \"" +
           json_escape(f.message) + "\"";
    if (f.suppressed)
      out += ", \"suppress_reason\": \"" + json_escape(f.suppress_reason) +
             "\"";
    out += "}";
  };
  bool first = true;
  for (const Finding& f : r.findings) {
    emit(f, first);
    first = false;
  }
  out += "\n  ],\n  \"suppressed\": [";
  first = true;
  for (const Finding& f : r.suppressed) {
    emit(f, first);
    first = false;
  }
  out += "\n  ],\n  \"unused_suppressions\": [";
  first = true;
  for (const Suppression& s : r.unused_suppressions) {
    if (!first) out += ",";
    first = false;
    out += "\n    {\"rule\": \"" + json_escape(s.rule) +
           "\", \"line\": " + std::to_string(s.line) + "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

std::string render_sarif(const LintResult& r) {
  std::string out =
      "{\n"
      "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      "  \"version\": \"2.1.0\",\n"
      "  \"runs\": [{\n"
      "    \"tool\": {\"driver\": {\n"
      "      \"name\": \"xfa_lint\",\n"
      "      \"informationUri\": \"tools/lint\",\n"
      "      \"rules\": [";
  bool first = true;
  for (const RuleInfo& rule : rule_registry()) {
    if (!first) out += ",";
    first = false;
    out += "\n        {\"id\": \"" + json_escape(rule.id) +
           "\", \"shortDescription\": {\"text\": \"" +
           json_escape(rule.synopsis) +
           "\"}, \"fullDescription\": {\"text\": \"" +
           json_escape(rule.rationale) + "\"}}";
  }
  out +=
      "\n      ]\n"
      "    }},\n"
      "    \"results\": [";
  first = true;
  for (const Finding& f : r.findings) {
    if (!first) out += ",";
    first = false;
    out += "\n      {\"ruleId\": \"" + json_escape(f.rule) +
           "\", \"level\": \"error\", \"message\": {\"text\": \"" +
           json_escape(f.message) +
           "\"}, \"locations\": [{\"physicalLocation\": "
           "{\"artifactLocation\": {\"uri\": \"" +
           json_escape(src_path(f)) +
           "\"}, \"region\": {\"startLine\": " + std::to_string(f.line) +
           ", \"startColumn\": " + std::to_string(f.col) + "}}}]}";
  }
  for (const Finding& f : r.suppressed) {
    if (!first) out += ",";
    first = false;
    out += "\n      {\"ruleId\": \"" + json_escape(f.rule) +
           "\", \"level\": \"note\", \"message\": {\"text\": \"" +
           json_escape(f.message) +
           "\"}, \"suppressions\": [{\"kind\": \"inSource\", "
           "\"justification\": \"" +
           json_escape(f.suppress_reason) +
           "\"}], \"locations\": [{\"physicalLocation\": "
           "{\"artifactLocation\": {\"uri\": \"" +
           json_escape(src_path(f)) +
           "\"}, \"region\": {\"startLine\": " + std::to_string(f.line) +
           ", \"startColumn\": " + std::to_string(f.col) + "}}}]}";
  }
  out += "\n    ]\n  }]\n}\n";
  return out;
}

std::string render_rule_table() {
  std::string out = "| rule | checks | scope |\n|---|---|---|\n";
  for (const RuleInfo& rule : rule_registry()) {
    out += "| `" + std::string{rule.id} + "` | " + std::string{rule.synopsis} +
           " | " + std::string{rule.scope} + " |\n";
  }
  return out;
}

std::string render_rule_list() {
  std::string out = render_rule_table();
  out += "\n";
  for (const RuleInfo& rule : rule_registry()) {
    out += std::string{rule.id} + "\n  " + std::string{rule.rationale} +
           "\n\n";
  }
  return out;
}

}  // namespace xfa::lint
