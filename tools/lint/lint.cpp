#include "lint/lint.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <tuple>
#include <utility>

#include "exec/parallel_for.h"
#include "exec/thread_pool.h"

namespace xfa::lint {
namespace {

namespace fs = std::filesystem;

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Marks findings covered by an allow comment (same line or the line
/// below the comment) and flips the suppression's `used` bit.
void apply_suppressions(SourceFile& file, std::vector<Finding>& findings) {
  for (Finding& f : findings) {
    if (f.file != file.rel || f.suppressed) continue;
    for (Suppression& s : file.suppressions) {
      if (s.rule != "*" && s.rule != f.rule) continue;
      if (f.line != s.line && f.line != s.line + 1) continue;
      f.suppressed = true;
      f.suppress_reason = s.reason;
      s.used = true;
      break;
    }
  }
}

}  // namespace

LintResult finalize(Project project, std::vector<Finding> findings) {
  for (SourceFile& file : project.files) apply_suppressions(file, findings);

  LintResult result;
  result.files_scanned = project.files.size();
  for (Finding& f : findings)
    (f.suppressed ? result.suppressed : result.findings)
        .push_back(std::move(f));
  for (const SourceFile& file : project.files) {
    for (const Suppression& s : file.suppressions) {
      if (!s.used) {
        Suppression stale = s;
        stale.reason = "src/" + file.rel;  // repurposed as location for report
        result.unused_suppressions.push_back(std::move(stale));
      }
    }
  }

  const auto order = [](const Finding& a, const Finding& b) {
    return std::tie(a.file, a.line, a.col, a.rule) <
           std::tie(b.file, b.line, b.col, b.rule);
  };
  std::sort(result.findings.begin(), result.findings.end(), order);
  std::sort(result.suppressed.begin(), result.suppressed.end(), order);
  return result;
}

LintResult run_lint(const std::string& repo_root, std::size_t threads) {
  const fs::path src_root = fs::path{repo_root} / "src";

  // Deterministic file list, sorted by rel path.
  std::vector<std::pair<std::string, fs::path>> entries;
  for (const auto& entry : fs::recursive_directory_iterator(src_root)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext != ".h" && ext != ".cpp") continue;
    entries.emplace_back(
        fs::relative(entry.path(), src_root).generic_string(), entry.path());
  }
  std::sort(entries.begin(), entries.end());

  // Read + lex in parallel; slot-indexed writes keep the result identical
  // for any pool size.
  if (threads != 0) resize_shared_pool(threads);
  std::vector<SourceFile> files(entries.size());
  parallel_for(shared_pool(), entries.size(), [&](std::size_t i) {
    files[i] = make_source_file(entries[i].first, read_file(entries[i].second));
  });

  Project project;
  project.files = std::move(files);
  project.cmake_text = read_file(src_root / "CMakeLists.txt");

  // File rules in parallel with per-slot finding buckets, concatenated in
  // file order afterwards (ordering is finalized by the sort anyway, but
  // staying deterministic end-to-end keeps intermediate debugging sane).
  std::vector<std::vector<Finding>> buckets(project.files.size());
  parallel_for(shared_pool(), project.files.size(), [&](std::size_t i) {
    run_file_rules(project.files[i], buckets[i]);
  });
  std::vector<Finding> findings;
  for (std::vector<Finding>& bucket : buckets)
    for (Finding& f : bucket) findings.push_back(std::move(f));

  run_project_rules(project, findings);
  return finalize(std::move(project), std::move(findings));
}

LintResult lint_source(std::string rel, std::string text) {
  Project project;
  project.files.push_back(make_source_file(std::move(rel), std::move(text)));
  std::vector<Finding> findings;
  run_file_rules(project.files.front(), findings);
  return finalize(std::move(project), std::move(findings));
}

}  // namespace xfa::lint
