// Reporters: deterministic text / JSON / SARIF 2.1.0 rendering of a lint
// run, plus the markdown rule table behind `xfa_lint --list`.
#pragma once

#include <string>
#include <vector>

#include "lint/model.h"

namespace xfa::lint {

/// The complete outcome of a lint run, pre-sorted deterministically
/// (rel path, line, col, rule) regardless of scan parallelism.
struct LintResult {
  std::vector<Finding> findings;    // active (unsuppressed) findings
  std::vector<Finding> suppressed;  // findings covered by an allow comment
  std::vector<Suppression> unused_suppressions;  // stale allow comments
  std::size_t files_scanned = 0;
};

std::string render_text(const LintResult& result);
std::string render_json(const LintResult& result);
std::string render_sarif(const LintResult& result);

/// The `--list` output: a markdown table of every registered rule
/// (id | synopsis | scope) followed by per-rule rationale paragraphs.
/// README.md embeds the table portion verbatim so docs cannot drift.
std::string render_rule_list();

/// Just the markdown table rows (between the README generation markers).
std::string render_rule_table();

}  // namespace xfa::lint
