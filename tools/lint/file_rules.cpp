// Single-file token rules: the eight legacy regex rules re-expressed over
// the token stream, plus the token-level rules the regex scanner could not
// express (no-mutable-global, check-no-side-effects). All of them ignore
// comments and string literals by construction: rules only ever look at
// code tokens.

#include <cstddef>
#include <string>
#include <vector>

#include "lint/include_graph.h"
#include "lint/rules.h"

namespace xfa::lint {
namespace {

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

/// Indices of the tokens rules reason about: everything except comments and
/// preprocessor directives (those are handled by dedicated include/pragma
/// logic).
std::vector<std::size_t> code_indices(const SourceFile& f) {
  std::vector<std::size_t> code;
  code.reserve(f.tokens.size());
  for (std::size_t i = 0; i < f.tokens.size(); ++i) {
    const TokenKind kind = f.tokens[i].kind;
    if (kind != TokenKind::kComment && kind != TokenKind::kPreprocessor)
      code.push_back(i);
  }
  return code;
}

struct Ctx {
  const SourceFile& f;
  const std::vector<std::size_t>& code;
  std::vector<Finding>& out;

  std::string_view text(std::size_t ci) const { return f.tok(f.tokens[code[ci]]); }
  const Token& tok(std::size_t ci) const { return f.tokens[code[ci]]; }
  bool is_ident(std::size_t ci, std::string_view name) const {
    return tok(ci).kind == TokenKind::kIdentifier && text(ci) == name;
  }
  bool is_kw(std::size_t ci, std::string_view name) const {
    return tok(ci).kind == TokenKind::kKeyword && text(ci) == name;
  }
  bool is_punct(std::size_t ci, std::string_view p) const {
    return tok(ci).kind == TokenKind::kPunct && text(ci) == p;
  }
  void report(std::size_t ci, const char* rule, std::string message) const {
    const Token& t = tok(ci);
    out.push_back({f.rel, t.line, t.col, rule, std::move(message), false, ""});
  }

  /// True when code[ci-2..ci] spell `std::<name>`.
  bool std_qualified(std::size_t ci) const {
    return ci >= 2 && is_punct(ci - 1, "::") && is_ident(ci - 2, "std");
  }
};

// --- rng-determinism -------------------------------------------------------

void rule_rng_determinism(const Ctx& c) {
  if (starts_with(c.f.rel, "sim/rng.")) return;
  for (std::size_t i = 0; i < c.code.size(); ++i) {
    if (c.tok(i).kind != TokenKind::kIdentifier) continue;
    const std::string_view name = c.text(i);
    std::string banned;
    if (name == "rand" && c.std_qualified(i)) {
      banned = "std::rand";
    } else if (name == "srand" || name == "random_device") {
      banned = std::string{name};
    } else if (name == "time" && i + 1 < c.code.size() &&
               c.is_punct(i + 1, "(")) {
      banned = "time(";
    } else {
      continue;
    }
    c.report(i, "rng-determinism",
             "'" + banned +
                 "' breaks trace reproducibility; draw from the scenario's "
                 "xfa::Rng (src/sim/rng.h) instead");
  }
}

// --- no-raw-assert ---------------------------------------------------------

void rule_no_raw_assert(const Ctx& c,
                        const std::vector<IncludeEdge>& includes) {
  for (std::size_t i = 0; i + 1 < c.code.size(); ++i) {
    if (c.is_ident(i, "assert") && c.is_punct(i + 1, "(")) {
      c.report(i, "no-raw-assert",
               "compiled out under NDEBUG; use XFA_CHECK from "
               "common/check.h");
    }
  }
  for (const IncludeEdge& edge : includes) {
    if (!edge.quoted && (edge.target == "cassert" ||
                         edge.target == "assert.h")) {
      c.out.push_back({c.f.rel, edge.line, 1, "no-raw-assert",
                       "include common/check.h instead of the C assert "
                       "header",
                       false, ""});
    }
  }
}

// --- pragma-once -----------------------------------------------------------

/// Collapses runs of whitespace so `#  pragma   once` normalizes.
bool is_pragma_once(std::string_view directive) {
  std::string squeezed;
  bool in_space = false;
  for (const char ch : directive) {
    if (ch == ' ' || ch == '\t' || ch == '\r') {
      in_space = true;
      continue;
    }
    if (in_space && !squeezed.empty()) squeezed.push_back(' ');
    in_space = false;
    squeezed.push_back(ch);
  }
  return starts_with(squeezed, "# pragma once") ||
         starts_with(squeezed, "#pragma once");
}

void rule_pragma_once(const SourceFile& f, std::vector<Finding>& out) {
  if (!f.is_header) return;
  for (const Token& t : f.tokens) {
    if (t.kind == TokenKind::kComment) continue;
    if (t.kind == TokenKind::kPreprocessor &&
        is_pragma_once(token_text(f.text, t))) {
      return;
    }
    out.push_back({f.rel, t.line, t.col, "pragma-once",
                   "headers must start with #pragma once (after leading "
                   "comments)",
                   false, ""});
    return;
  }
  out.push_back({f.rel, 1, 1, "pragma-once",
                 "empty header missing #pragma once", false, ""});
}

// --- exec-only-threads -----------------------------------------------------

void rule_exec_only_threads(const Ctx& c) {
  if (starts_with(c.f.rel, "exec/")) return;
  for (std::size_t i = 0; i < c.code.size(); ++i) {
    if (c.tok(i).kind != TokenKind::kIdentifier || !c.std_qualified(i))
      continue;
    const std::string_view name = c.text(i);
    if (name != "thread" && name != "jthread" && name != "async") continue;
    c.report(i, "exec-only-threads",
             "'std::" + std::string{name} +
                 "' bypasses the shared execution layer; use ThreadPool / "
                 "TaskGroup / parallel_for (src/exec) so scheduling stays "
                 "deterministic and nested waits cannot deadlock");
  }
}

// --- loop tracking shared by hoist-or-grid / scratch-scoring ---------------

/// Calls `visit(ci, in_loop)` for every code token, where in_loop covers
/// both loop bodies (brace-tracked) and loop headers (`for (...)` before
/// the body opens).
template <typename Visit>
void walk_loops(const Ctx& c, Visit visit) {
  int depth = 0;
  int paren = 0;
  std::vector<int> loop_depths;  // brace depth of each enclosing loop body
  bool pending = false;          // saw for/while, waiting for '{' or ';'
  for (std::size_t i = 0; i < c.code.size(); ++i) {
    if (c.is_kw(i, "for") || c.is_kw(i, "while")) pending = true;
    visit(i, pending || !loop_depths.empty());
    if (c.tok(i).kind != TokenKind::kPunct) continue;
    const std::string_view p = c.text(i);
    if (p == "(") {
      ++paren;
    } else if (p == ")") {
      --paren;
    } else if (p == "{") {
      ++depth;
      if (pending) {
        loop_depths.push_back(depth);
        pending = false;
      }
    } else if (p == "}") {
      if (!loop_depths.empty() && loop_depths.back() == depth)
        loop_depths.pop_back();
      --depth;
    } else if (p == ";" && pending && paren == 0) {
      // Braceless loop body or a do/while tail — the `;`s inside a
      // `for (init; cond; step)` header sit at paren depth > 0 and must
      // not end the pending loop.
      pending = false;
    }
  }
}

// --- hoist-or-grid ---------------------------------------------------------

void rule_hoist_or_grid(const Ctx& c) {
  if (!starts_with(c.f.rel, "net/")) return;
  // The spatial index owns the one sanctioned bulk position query (its
  // rebuild loop); everything else in src/net must hoist or go through it.
  if (starts_with(c.f.rel, "net/neighbor_index.")) return;
  walk_loops(c, [&c](std::size_t i, bool in_loop) {
    if (!in_loop || !c.is_ident(i, "mobility_")) return;
    if (i + 3 >= c.code.size() || !c.is_punct(i + 1, ".") ||
        !c.is_ident(i + 2, "position") || !c.is_punct(i + 3, "(")) {
      return;
    }
    c.report(i, "hoist-or-grid",
             "per-iteration mobility position query in a src/net loop; "
             "hoist it out of the loop or use the spatial NeighborIndex "
             "(net/neighbor_index.h)");
  });
}

// --- scratch-scoring -------------------------------------------------------

void rule_scratch_scoring(const Ctx& c) {
  if (!starts_with(c.f.rel, "cfa/")) return;
  walk_loops(c, [&c](std::size_t i, bool in_loop) {
    // predict_dist_into / predict_dist_span are different identifier
    // tokens, so the scratch-buffer path never matches.
    if (!in_loop || !c.is_ident(i, "predict_dist")) return;
    if (i + 1 >= c.code.size() || !c.is_punct(i + 1, "(")) return;
    c.report(i, "scratch-scoring",
             "allocating predict_dist call in a src/cfa loop; use "
             "predict_dist_into with a reused scratch buffer so batched "
             "scoring stays allocation-free");
  });
}

// --- status-not-abort ------------------------------------------------------

void rule_status_not_abort(const Ctx& c,
                           const std::vector<IncludeEdge>& includes) {
  if (!starts_with(c.f.rel, "scenario/")) return;
  // A scenario TU that does file I/O is a recoverable path: everything that
  // can go wrong there (corrupt bytes, ENOSPC, races with other processes)
  // is environmental, so abort-style contracts are banned in the whole TU.
  bool does_io = false;
  for (const IncludeEdge& edge : includes) {
    if (!edge.quoted && (edge.target == "fstream" ||
                         edge.target == "filesystem" ||
                         edge.target == "cstdio")) {
      does_io = true;
      break;
    }
  }
  if (!does_io) return;
  for (std::size_t i = 0; i < c.code.size(); ++i) {
    if (c.tok(i).kind != TokenKind::kIdentifier) continue;
    const std::string_view name = c.text(i);
    if (starts_with(name, "XFA_CHECK") || starts_with(name, "XFA_DCHECK")) {
      c.report(i, "status-not-abort",
               "this scenario TU does file I/O; recoverable failures must "
               "return Status/Result (common/status.h), not abort via "
               "XFA_CHECK");
    }
  }
}

// --- check-no-side-effects -------------------------------------------------

void rule_check_no_side_effects(const Ctx& c) {
  for (std::size_t i = 0; i + 1 < c.code.size(); ++i) {
    if (c.tok(i).kind != TokenKind::kIdentifier) continue;
    const std::string_view name = c.text(i);
    if (!starts_with(name, "XFA_CHECK") && !starts_with(name, "XFA_DCHECK"))
      continue;
    if (!c.is_punct(i + 1, "(")) continue;
    int paren = 0;
    for (std::size_t j = i + 1; j < c.code.size(); ++j) {
      if (c.tok(j).kind != TokenKind::kPunct) continue;
      const std::string_view p = c.text(j);
      if (p == "(") {
        ++paren;
      } else if (p == ")") {
        if (--paren == 0) break;
      } else if (p == "++" || p == "--" || p == "=" || p == "+=" ||
                 p == "-=" || p == "*=" || p == "/=" || p == "%=" ||
                 p == "&=" || p == "|=" || p == "^=" || p == "<<=" ||
                 p == ">>=") {
        // `[=]` / `[x = y]` lambda captures are value semantics, not a
        // mutation of checked state.
        if (p == "=" && j > 0 &&
            (c.is_punct(j - 1, "[") || c.is_punct(j - 1, ","))) {
          continue;
        }
        c.report(j, "check-no-side-effects",
                 "side effect ('" + std::string{p} + "') inside " +
                     std::string{name} +
                     " arguments; check arguments may be evaluated a "
                     "different number of times per build type — hoist the "
                     "mutation out of the contract");
      }
    }
  }
}

// --- no-mutable-global -----------------------------------------------------

/// Scope classification for brace tracking: we only flag declarations made
/// directly at namespace scope (file scope counts as the global namespace).
enum class Scope { kNamespace, kOther };

bool statement_has_kw(const Ctx& c, std::size_t begin, std::size_t end,
                      std::string_view kw) {
  for (std::size_t i = begin; i < end; ++i)
    if (c.is_kw(i, kw)) return true;
  return false;
}

bool statement_has_punct(const Ctx& c, std::size_t begin, std::size_t end,
                         std::string_view p) {
  for (std::size_t i = begin; i < end; ++i)
    if (c.is_punct(i, p)) return true;
  return false;
}

void rule_no_mutable_global(const Ctx& c) {
  // The execution layer and the immutable env snapshot are the audited
  // exceptions; everything else must thread state through objects.
  if (starts_with(c.f.rel, "exec/") || starts_with(c.f.rel, "common/env."))
    return;

  std::vector<Scope> scopes = {Scope::kNamespace};
  std::size_t stmt_begin = 0;  // first code token of the current statement
  for (std::size_t i = 0; i < c.code.size(); ++i) {
    if (c.tok(i).kind != TokenKind::kPunct) continue;
    const std::string_view p = c.text(i);
    if (p == "{") {
      const bool ns = statement_has_kw(c, stmt_begin, i, "namespace") &&
                      !statement_has_kw(c, stmt_begin, i, "using");
      scopes.push_back(ns ? Scope::kNamespace : Scope::kOther);
      stmt_begin = i + 1;
    } else if (p == "}") {
      if (scopes.size() > 1) scopes.pop_back();
      // Resetting here makes a type-definition tail (`};`) an empty
      // statement, which the `e == b` disqualifier skips. The cost is
      // missing `struct { } x;`-style anonymous globals — acceptable for
      // a rule that must never cry wolf.
      stmt_begin = i + 1;
    } else if (p == ";") {
      if (scopes.back() == Scope::kNamespace) {
        // Candidate mutable global: `[static] Type name = init;` or
        // `[static] Type name;` with nothing that marks it immutable,
        // a type alias, a forward declaration, or a function.
        const std::size_t b = stmt_begin, e = i;
        const bool disqualified =
            e == b || statement_has_kw(c, b, e, "const") ||
            statement_has_kw(c, b, e, "constexpr") ||
            statement_has_kw(c, b, e, "constinit") ||
            statement_has_kw(c, b, e, "using") ||
            statement_has_kw(c, b, e, "typedef") ||
            statement_has_kw(c, b, e, "extern") ||
            statement_has_kw(c, b, e, "friend") ||
            statement_has_kw(c, b, e, "class") ||
            statement_has_kw(c, b, e, "struct") ||
            statement_has_kw(c, b, e, "union") ||
            statement_has_kw(c, b, e, "enum") ||
            statement_has_kw(c, b, e, "namespace") ||
            statement_has_kw(c, b, e, "template") ||
            statement_has_kw(c, b, e, "concept") ||
            statement_has_kw(c, b, e, "operator") ||
            statement_has_kw(c, b, e, "static_assert") ||
            statement_has_kw(c, b, e, "return") ||
            statement_has_punct(c, b, e, "(");
        bool has_name = false;  // some identifier to declare
        for (std::size_t k = b; k < e; ++k) {
          if (c.tok(k).kind == TokenKind::kIdentifier) {
            has_name = true;
            break;
          }
        }
        if (!disqualified && has_name) {
          c.report(b, "no-mutable-global",
                   "mutable namespace-scope state outside src/exec and "
                   "common/env.*; globals couple concurrent scenario runs "
                   "on the shared pool — make it const/constexpr, or own "
                   "it inside the object that uses it");
        }
      }
      stmt_begin = i + 1;
    }
  }
}

}  // namespace

void run_file_rules(const SourceFile& file, std::vector<Finding>& out) {
  const std::vector<std::size_t> code = code_indices(file);
  const Ctx c{file, code, out};
  const std::vector<IncludeEdge> includes = extract_includes(file);

  rule_rng_determinism(c);
  rule_no_raw_assert(c, includes);
  rule_pragma_once(file, out);
  rule_exec_only_threads(c);
  rule_hoist_or_grid(c);
  rule_scratch_scoring(c);
  rule_status_not_abort(c, includes);
  rule_check_no_side_effects(c);
  rule_no_mutable_global(c);
}

}  // namespace xfa::lint
