// Shared data model of the lint framework: a lexed source file, a finding,
// and the inline-suppression record.
//
// Paths: every SourceFile carries `rel`, its path relative to the scanned
// src/ root ("net/node.h"), which is also the repo's include spelling. Rules
// key their directory scoping off `rel`; reporters prefix it back to a
// repo-relative "src/..." path.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "lint/token.h"

namespace xfa::lint {

struct Finding {
  std::string file;  // rel path under src/, e.g. "net/node.h"
  std::uint32_t line = 1;
  std::uint32_t col = 1;
  std::string rule;     // stable rule id from the registry
  std::string message;  // human-readable explanation (the "why")
  bool suppressed = false;
  std::string suppress_reason;
};

/// One `// xfa-lint: allow(<rule>) <reason>` comment. A suppression covers
/// findings of its rule on the comment's own line and on the next line (so
/// it can sit on the offending line or immediately above it). `rule` may be
/// "*" to allow every rule. Suppressions are themselves counted and
/// reported; an unused one is surfaced so stale allowances cannot linger.
struct Suppression {
  std::string rule;
  std::string reason;
  std::uint32_t line = 0;
  bool used = false;
};

struct SourceFile {
  std::string rel;
  std::string text;
  std::vector<Token> tokens;
  std::vector<Suppression> suppressions;
  bool is_header = false;

  std::string_view tok(const Token& t) const { return token_text(text, t); }
  std::string_view tok(std::size_t index) const {
    return token_text(text, tokens[index]);
  }
};

/// Lexes `text` and parses its suppression comments into a SourceFile.
SourceFile make_source_file(std::string rel, std::string text);

/// First path component of a rel path: module_of("routing/aodv/aodv.h") ==
/// "routing".
std::string_view module_of(std::string_view rel);

}  // namespace xfa::lint
