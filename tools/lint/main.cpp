// xfa_lint — token-level static analysis for the XFA tree.
//
// Usage:
//   xfa_lint [--format=text|json|sarif] [--out=PATH] [--threads=N] <repo-root>
//   xfa_lint --list
//
// Exit status: min(active findings, 100); 64 on usage errors. Suppressed
// findings and stale suppressions never fail the run but are always shown.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "lint/lint.h"
#include "lint/report.h"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: xfa_lint [--format=text|json|sarif] [--out=PATH] "
               "[--threads=N] <repo-root>\n"
               "       xfa_lint --list\n");
  return 64;
}

}  // namespace

int main(int argc, char** argv) {
  std::string format = "text";
  std::string out_path;
  std::string root;
  std::size_t threads = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list") {
      std::fputs(xfa::lint::render_rule_list().c_str(), stdout);
      return 0;
    }
    if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(9);
      if (format != "text" && format != "json" && format != "sarif")
        return usage();
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg.rfind("--threads=", 0) == 0) {
      try {
        threads = std::stoul(arg.substr(10));
      } catch (...) {
        return usage();
      }
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else if (root.empty()) {
      root = arg;
    } else {
      return usage();
    }
  }
  if (root.empty()) return usage();

  const xfa::lint::LintResult result = xfa::lint::run_lint(root, threads);
  std::string rendered;
  if (format == "json") {
    rendered = xfa::lint::render_json(result);
  } else if (format == "sarif") {
    rendered = xfa::lint::render_sarif(result);
  } else {
    rendered = xfa::lint::render_text(result);
  }
  if (out_path.empty()) {
    std::fputs(rendered.c_str(), stdout);
  } else {
    std::ofstream out(out_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "xfa_lint: cannot write %s\n", out_path.c_str());
      return 64;
    }
    out << rendered;
    // Machine formats went to the file; keep the human summary on stdout.
    std::fputs(xfa::lint::render_text(result).c_str(), stdout);
  }

  const std::size_t n = result.findings.size();
  return static_cast<int>(n > 100 ? 100 : n);
}
