// Whole-tree rules: the include graph (layering DAG + cycle detection +
// IWYU-lite unused includes), CMake registration, and the cross-TU
// ordered-iteration determinism rule.

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "lint/include_graph.h"
#include "lint/rules.h"

namespace xfa::lint {
namespace {

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

std::string_view strip_ext(std::string_view rel) {
  const std::size_t dot = rel.rfind('.');
  return dot == std::string_view::npos ? rel : rel.substr(0, dot);
}

// --- include-layering ------------------------------------------------------

void rule_include_layering(const Project& p, std::vector<Finding>& out) {
  for (const SourceFile& f : p.files) {
    const int from_band = layer_band(module_of(f.rel));
    if (from_band < 0) continue;
    for (const IncludeEdge& edge : extract_includes(f)) {
      if (!edge.quoted) continue;
      const SourceFile* target = p.find(edge.target);
      if (target == nullptr) continue;  // not an intra-src header
      const int to_band = layer_band(module_of(edge.target));
      if (to_band < 0 || to_band <= from_band) continue;
      out.push_back(
          {f.rel, edge.line, 1, "include-layering",
           "'" + std::string{module_of(f.rel)} + "' (band " +
               std::to_string(from_band) + ") must not include '" +
               edge.target + "' from higher band " + std::to_string(to_band) +
               "; lower layers cannot depend on policy above them — invert "
               "the dependency (interface in the lower layer, implementation "
               "above)",
           false, ""});
    }
  }
}

// --- include-cycle ---------------------------------------------------------

void rule_include_cycle(const Project& p, std::vector<Finding>& out) {
  // DFS over the quoted intra-src graph; files are pre-sorted by rel so the
  // traversal (and therefore the reported witness cycle) is deterministic.
  std::map<std::string_view, std::vector<std::string_view>> graph;
  for (const SourceFile& f : p.files) {
    auto& edges = graph[f.rel];
    for (const IncludeEdge& edge : extract_includes(f)) {
      if (!edge.quoted) continue;
      const SourceFile* target = p.find(edge.target);
      if (target != nullptr) edges.push_back(target->rel);
    }
  }

  enum class Color { kWhite, kGray, kBlack };
  std::map<std::string_view, Color> color;
  for (const auto& [node, _] : graph) color[node] = Color::kWhite;

  std::vector<std::string_view> path;
  std::set<std::string> reported;

  // Iterative DFS with an explicit stack of (node, next-edge-index).
  for (const auto& [root, _] : graph) {
    if (color[root] != Color::kWhite) continue;
    std::vector<std::pair<std::string_view, std::size_t>> stack;
    stack.emplace_back(root, 0);
    color[root] = Color::kGray;
    path.push_back(root);
    while (!stack.empty()) {
      auto& [node, next] = stack.back();
      const auto& edges = graph[node];
      if (next >= edges.size()) {
        color[node] = Color::kBlack;
        path.pop_back();
        stack.pop_back();
        continue;
      }
      const std::string_view to = edges[next++];
      if (color[to] == Color::kGray) {
        // Witness: the slice of `path` from `to` onward, plus the back edge.
        std::string cycle;
        bool in_cycle = false;
        for (const std::string_view n : path) {
          if (n == to) in_cycle = true;
          if (in_cycle) cycle += std::string{n} + " -> ";
        }
        cycle += std::string{to};
        if (reported.insert(cycle).second) {
          const SourceFile* at = p.find(node);
          out.push_back({at != nullptr ? at->rel : std::string{node}, 1, 1,
                         "include-cycle",
                         "include cycle: " + cycle +
                             "; no header in the loop is self-contained",
                         false, ""});
        }
      } else if (color[to] == Color::kWhite) {
        color[to] = Color::kGray;
        path.push_back(to);
        stack.emplace_back(to, 0);
      }
    }
  }
}

// --- unused-include (IWYU-lite) --------------------------------------------

/// Names a curated system header is known to provide. Matching a name here
/// marks the include used; angle includes not in this map are skipped
/// entirely (conservative: never flag what we cannot model).
const std::map<std::string_view, std::vector<std::string_view>>&
system_header_names() {
  static const std::map<std::string_view, std::vector<std::string_view>> kMap =
      {
          {"algorithm",
           {"sort", "stable_sort", "partial_sort", "nth_element", "min",
            "max", "minmax", "clamp", "min_element", "max_element", "find",
            "find_if", "find_if_not", "count", "count_if", "all_of", "any_of",
            "none_of", "copy", "copy_if", "fill", "transform", "remove",
            "remove_if", "unique", "reverse", "rotate", "shuffle", "swap",
            "lower_bound", "upper_bound", "binary_search", "equal",
            "mismatch", "merge", "set_intersection", "set_union",
            "lexicographical_compare", "for_each"}},
          {"array", {"array", "to_array"}},
          {"atomic", {"atomic", "atomic_flag", "memory_order",
                      "memory_order_relaxed", "memory_order_acquire",
                      "memory_order_release", "memory_order_seq_cst"}},
          {"bit", {"bit_cast", "popcount", "countl_zero", "countr_zero",
                   "rotl", "rotr", "has_single_bit", "bit_ceil"}},
          {"chrono", {"chrono"}},
          {"cmath", {"sqrt", "sqrtf", "pow", "exp", "log", "log2", "log10",
                     "sin", "cos", "tan", "atan2", "hypot", "floor", "ceil",
                     "round", "lround", "fabs", "abs", "fmod", "isnan",
                     "isinf", "isfinite", "nan", "exp2", "lgamma", "erf"}},
          {"condition_variable", {"condition_variable", "cv_status",
                                  "notify_all_at_thread_exit"}},
          {"cstddef", {"size_t", "ptrdiff_t", "nullptr_t", "byte",
                       "max_align_t"}},
          {"cstdint",
           {"int8_t", "int16_t", "int32_t", "int64_t", "uint8_t", "uint16_t",
            "uint32_t", "uint64_t", "intptr_t", "uintptr_t", "intmax_t",
            "uintmax_t", "INT64_MAX", "UINT64_MAX", "UINT32_MAX"}},
          {"cstdio", {"FILE", "fopen", "fclose", "fread", "fwrite", "fflush",
                      "printf", "fprintf", "snprintf", "sscanf", "remove",
                      "rename", "perror", "stderr", "stdout", "puts",
                      "fputs", "fgets"}},
          {"cstdlib", {"malloc", "free", "calloc", "realloc", "exit",
                       "abort", "atexit", "getenv", "system", "strtol",
                       "strtoul", "strtod", "atoi", "atof", "qsort", "rand",
                       "srand", "EXIT_SUCCESS", "EXIT_FAILURE"}},
          {"cstring", {"memcpy", "memmove", "memset", "memcmp", "strlen",
                       "strcmp", "strncmp", "strcpy", "strncpy", "strcat",
                       "strchr", "strrchr", "strstr", "strerror"}},
          {"ctime", {"time", "time_t", "clock", "clock_t", "localtime",
                     "gmtime", "strftime", "difftime", "mktime", "timespec",
                     "clock_gettime", "nanosleep", "CLOCK_MONOTONIC",
                     "CLOCK_REALTIME", "CLOCK_THREAD_CPUTIME_ID"}},
          {"deque", {"deque"}},
          {"filesystem", {"filesystem"}},
          {"fstream", {"ifstream", "ofstream", "fstream", "filebuf"}},
          {"functional", {"function", "bind", "ref", "cref",
                          "reference_wrapper", "invoke", "hash", "less",
                          "greater", "equal_to", "plus", "minus",
                          "multiplies", "identity", "not_fn"}},
          {"future", {"future", "promise", "packaged_task", "async",
                      "launch", "shared_future", "future_status"}},
          {"iosfwd", {"ostream", "istream", "iostream", "stringstream",
                      "ostringstream", "istringstream", "streambuf"}},
          {"limits", {"numeric_limits"}},
          {"memory",
           {"unique_ptr", "shared_ptr", "weak_ptr", "make_unique",
            "make_shared", "allocator", "addressof", "align",
            "enable_shared_from_this", "default_delete", "to_address"}},
          {"mutex", {"mutex", "recursive_mutex", "timed_mutex", "lock_guard",
                     "unique_lock", "scoped_lock", "once_flag", "call_once",
                     "try_lock", "lock", "adopt_lock", "defer_lock"}},
          {"new", {"nothrow", "bad_alloc", "launder", "align_val_t",
                   "hardware_destructive_interference_size"}},
          {"numeric", {"accumulate", "iota", "inner_product", "reduce",
                       "partial_sum", "gcd", "lcm", "midpoint"}},
          {"optional", {"optional", "nullopt", "make_optional"}},
          {"ostream", {"ostream", "endl", "flush"}},
          {"random", {"mt19937", "mt19937_64", "minstd_rand",
                      "uniform_int_distribution", "uniform_real_distribution",
                      "normal_distribution", "random_device",
                      "bernoulli_distribution", "exponential_distribution"}},
          {"set", {"set", "multiset"}},
          {"span", {"span", "dynamic_extent", "as_bytes"}},
          {"sstream", {"stringstream", "ostringstream", "istringstream",
                       "stringbuf"}},
          {"string", {"string", "to_string", "stoi", "stol", "stoul",
                      "stoull", "stod", "stof", "getline", "char_traits",
                      "npos"}},
          {"string_view", {"string_view", "wstring_view"}},
          {"thread", {"thread", "jthread", "this_thread", "yield",
                      "sleep_for", "sleep_until", "get_id",
                      "hardware_concurrency"}},
          {"type_traits",
           {"enable_if", "enable_if_t", "is_same", "is_same_v", "decay",
            "decay_t", "remove_reference", "remove_reference_t",
            "remove_cvref_t", "is_integral", "is_integral_v",
            "is_floating_point", "is_floating_point_v", "is_arithmetic_v",
            "conditional_t", "is_trivially_copyable_v", "is_invocable_v",
            "invoke_result_t", "underlying_type_t", "is_base_of_v",
            "true_type", "false_type", "void_t", "is_convertible_v"}},
          {"unordered_map", {"unordered_map", "unordered_multimap"}},
          {"unordered_set", {"unordered_set", "unordered_multiset"}},
          {"utility",
           {"move", "forward", "swap", "pair", "make_pair", "exchange",
            "declval", "as_const", "in_place", "index_sequence",
            "make_index_sequence", "cmp_less", "cmp_greater", "unreachable",
            "piecewise_construct"}},
          {"variant", {"variant", "visit", "get_if", "holds_alternative",
                       "monostate", "variant_npos"}},
          {"vector", {"vector"}},
      };
  return kMap;
}

/// Declaration-anchored provided names of a repo header: macro names, type
/// names after class/struct/enum/union, enumerators, names followed by `(`
/// (functions and function-like usage), names bound by `using`, and names
/// declared at any scope with `=`/`;`/`{` after them when preceded by a
/// type-ish token. Generosity is safe here: the more names a header is
/// credited with, the less likely a false "unused" finding.
std::set<std::string_view> provided_names(const SourceFile& h) {
  std::set<std::string_view> names;
  // Macro definitions.
  for (const Token& t : h.tokens) {
    if (t.kind != TokenKind::kPreprocessor) continue;
    std::string_view text = h.tok(t);
    const std::size_t def = text.find("define");
    if (def == std::string_view::npos) continue;
    std::size_t i = def + 6;
    while (i < text.size() && (text[i] == ' ' || text[i] == '\t')) ++i;
    std::size_t j = i;
    while (j < text.size() &&
           (std::isalnum(static_cast<unsigned char>(text[j])) != 0 ||
            text[j] == '_'))
      ++j;
    if (j > i) names.insert(text.substr(i, j - i));
  }

  // Code-token anchors.
  std::vector<std::size_t> code;
  for (std::size_t i = 0; i < h.tokens.size(); ++i) {
    const TokenKind k = h.tokens[i].kind;
    if (k != TokenKind::kComment && k != TokenKind::kPreprocessor)
      code.push_back(i);
  }
  int enum_depth = -1;  // brace depth of an open enum body, -1 when none
  int depth = 0;
  bool enum_pending = false;
  for (std::size_t ci = 0; ci < code.size(); ++ci) {
    const Token& t = h.tokens[code[ci]];
    const std::string_view text = h.tok(code[ci]);
    if (t.kind == TokenKind::kPunct) {
      if (text == "{") {
        ++depth;
        if (enum_pending) {
          enum_depth = depth;
          enum_pending = false;
        }
      } else if (text == "}") {
        if (enum_depth == depth) enum_depth = -1;
        --depth;
      } else if (text == ";") {
        enum_pending = false;
      }
      continue;
    }
    if (t.kind == TokenKind::kKeyword) {
      if (text == "enum") enum_pending = true;
      continue;
    }
    if (t.kind != TokenKind::kIdentifier) continue;

    // Enumerators: identifiers directly inside an enum body.
    if (enum_depth == depth && enum_depth != -1) {
      names.insert(text);
      continue;
    }
    const auto prev_is_kw = [&](std::string_view kw) {
      return ci > 0 && h.tokens[code[ci - 1]].kind == TokenKind::kKeyword &&
             h.tok(code[ci - 1]) == kw;
    };
    // Type names and alias names.
    if (prev_is_kw("class") || prev_is_kw("struct") || prev_is_kw("union") ||
        prev_is_kw("enum") || prev_is_kw("using") || prev_is_kw("typedef") ||
        prev_is_kw("concept")) {
      names.insert(text);
      continue;
    }
    if (ci + 1 < code.size()) {
      const std::string_view next = h.tok(code[ci + 1]);
      const TokenKind nk = h.tokens[code[ci + 1]].kind;
      // Functions, function-like macros, constructor-style names.
      if (nk == TokenKind::kPunct && next == "(") {
        names.insert(text);
        continue;
      }
      // `Type name = ...;` / `Type name;` / `Type name{...};` where the
      // previous token looks like the end of a type.
      if (nk == TokenKind::kPunct &&
          (next == "=" || next == ";" || next == "{") && ci > 0) {
        const Token& pt = h.tokens[code[ci - 1]];
        const std::string_view ptext = h.tok(code[ci - 1]);
        const bool typeish =
            pt.kind == TokenKind::kIdentifier ||
            pt.kind == TokenKind::kKeyword ||
            (pt.kind == TokenKind::kPunct &&
             (ptext == ">" || ptext == "*" || ptext == "&"));
        if (typeish) names.insert(text);
      }
    }
  }
  return names;
}

void rule_unused_include(const Project& p, std::vector<Finding>& out) {
  // Usage universe per file: every identifier/keyword code token. Built
  // lazily per file below; provided-name sets are memoized per header.
  std::map<std::string_view, std::set<std::string_view>> provided_cache;
  const auto provided_for = [&](const SourceFile& h) ->
      const std::set<std::string_view>& {
        const auto it = provided_cache.find(h.rel);
        if (it != provided_cache.end()) return it->second;
        return provided_cache.emplace(h.rel, provided_names(h)).first->second;
      };

  for (const SourceFile& f : p.files) {
    std::set<std::string_view> used;
    bool placement_new = false;  // `new (addr) T` requires <new>
    for (std::size_t i = 0; i < f.tokens.size(); ++i) {
      const TokenKind k = f.tokens[i].kind;
      if (k == TokenKind::kIdentifier) used.insert(f.tok(i));
      if (k == TokenKind::kKeyword && f.tok(i) == "new" &&
          i + 1 < f.tokens.size() &&
          f.tokens[i + 1].kind == TokenKind::kPunct && f.tok(i + 1) == "(")
        placement_new = true;
    }
    for (const IncludeEdge& edge : extract_includes(f)) {
      const std::vector<std::string_view>* sys_names = nullptr;
      const std::set<std::string_view>* repo_names = nullptr;
      if (edge.quoted) {
        const SourceFile* target = p.find(edge.target);
        if (target == nullptr) continue;  // outside src/, cannot model
        // Paired header: x.cpp includes x.h to honor its own declarations.
        if (!f.is_header && strip_ext(f.rel) == strip_ext(edge.target))
          continue;
        repo_names = &provided_for(*target);
        if (repo_names->empty()) continue;  // nothing anchored — skip
      } else {
        const auto& sys = system_header_names();
        const auto it = sys.find(edge.target);
        if (it == sys.end()) continue;  // unmapped system header — skip
        sys_names = &it->second;
      }
      bool hit = !edge.quoted && edge.target == "new" && placement_new;
      if (hit) {
        // fallthrough to report check below
      } else if (sys_names != nullptr) {
        for (const std::string_view n : *sys_names)
          if (used.count(n) != 0) {
            hit = true;
            break;
          }
      } else {
        for (const std::string_view n : *repo_names)
          if (used.count(n) != 0) {
            hit = true;
            break;
          }
      }
      if (!hit) {
        out.push_back(
            {f.rel, edge.line, 1, "unused-include",
             "no name provided by '" + edge.target +
                 "' is used in this TU; drop the include (or include what "
                 "is actually load-bearing)",
             false, ""});
      }
    }
  }
}

// --- cmake-registered ------------------------------------------------------

void rule_cmake_registered(const Project& p, std::vector<Finding>& out) {
  for (const SourceFile& f : p.files) {
    if (f.is_header) continue;
    if (p.cmake_text.find(f.rel) == std::string::npos) {
      out.push_back({f.rel, 1, 1, "cmake-registered",
                     "translation unit is not listed in src/CMakeLists.txt; "
                     "unbuilt code silently escapes compilation and "
                     "sanitizer coverage",
                     false, ""});
    }
  }
}

// --- ordered-iteration -----------------------------------------------------

bool in_ordered_scope(std::string_view rel) {
  return starts_with(rel, "audit/") || starts_with(rel, "features/") ||
         starts_with(rel, "cfa/") || starts_with(rel, "eval/") ||
         starts_with(rel, "scenario/");
}

/// Names declared with an unordered container type in `f`:
/// `std::unordered_map<K, V> name` → "name". Template arguments are skipped
/// by angle-bracket counting (`>>` closes two).
void collect_unordered_decls(const SourceFile& f,
                             std::set<std::string_view>& names) {
  std::vector<std::size_t> code;
  for (std::size_t i = 0; i < f.tokens.size(); ++i) {
    const TokenKind k = f.tokens[i].kind;
    if (k != TokenKind::kComment && k != TokenKind::kPreprocessor)
      code.push_back(i);
  }
  for (std::size_t ci = 0; ci < code.size(); ++ci) {
    if (f.tokens[code[ci]].kind != TokenKind::kIdentifier) continue;
    if (!starts_with(f.tok(code[ci]), "unordered_")) continue;
    std::size_t j = ci + 1;
    if (j < code.size() && f.tokens[code[j]].kind == TokenKind::kPunct &&
        f.tok(code[j]) == "<") {
      int angle = 0;
      for (; j < code.size(); ++j) {
        if (f.tokens[code[j]].kind != TokenKind::kPunct) continue;
        const std::string_view t = f.tok(code[j]);
        if (t == "<") ++angle;
        else if (t == ">") --angle;
        else if (t == ">>") angle -= 2;
        else if (t == ";") break;  // malformed / not a declaration
        if (angle <= 0) {
          ++j;
          break;
        }
      }
    }
    // The declared name may sit behind ref/pointer/const decoration:
    // `const std::unordered_map<int, int>& counts`.
    while (j < code.size() &&
           ((f.tokens[code[j]].kind == TokenKind::kPunct &&
             (f.tok(code[j]) == "&" || f.tok(code[j]) == "*" ||
              f.tok(code[j]) == "&&")) ||
            (f.tokens[code[j]].kind == TokenKind::kKeyword &&
             f.tok(code[j]) == "const")))
      ++j;
    if (j < code.size() && f.tokens[code[j]].kind == TokenKind::kIdentifier)
      names.insert(f.tok(code[j]));
  }
}

void rule_ordered_iteration(const Project& p, std::vector<Finding>& out) {
  for (const SourceFile& f : p.files) {
    if (!in_ordered_scope(f.rel)) continue;

    // Unordered-typed names visible to this TU: its own declarations plus
    // those of its direct repo includes (members reached via accessors).
    std::set<std::string_view> unordered;
    collect_unordered_decls(f, unordered);
    for (const IncludeEdge& edge : extract_includes(f)) {
      if (!edge.quoted) continue;
      const SourceFile* target = p.find(edge.target);
      if (target != nullptr) collect_unordered_decls(*target, unordered);
    }

    std::vector<std::size_t> code;
    for (std::size_t i = 0; i < f.tokens.size(); ++i) {
      const TokenKind k = f.tokens[i].kind;
      if (k != TokenKind::kComment && k != TokenKind::kPreprocessor)
        code.push_back(i);
    }
    const auto text = [&](std::size_t ci) { return f.tok(code[ci]); };
    for (std::size_t ci = 0; ci + 1 < code.size(); ++ci) {
      if (f.tokens[code[ci]].kind != TokenKind::kKeyword ||
          text(ci) != "for")
        continue;
      if (f.tokens[code[ci + 1]].kind != TokenKind::kPunct ||
          text(ci + 1) != "(")
        continue;
      // Find a `:` at paren depth 1 (range-for separator), then scan the
      // range expression up to the matching `)`.
      int paren = 0;
      std::size_t colon = 0;
      std::size_t close = 0;
      for (std::size_t j = ci + 1; j < code.size(); ++j) {
        if (f.tokens[code[j]].kind != TokenKind::kPunct) continue;
        const std::string_view t = text(j);
        if (t == "(") {
          ++paren;
        } else if (t == ")") {
          if (--paren == 0) {
            close = j;
            break;
          }
        } else if (t == ":" && paren == 1 && colon == 0) {
          colon = j;
        } else if (t == ";" && paren == 1) {
          break;  // classic for-loop, not range-for
        }
      }
      if (colon == 0 || close == 0) continue;
      bool unordered_range = false;
      std::string_view last_ident;
      for (std::size_t j = colon + 1; j < close; ++j) {
        if (f.tokens[code[j]].kind != TokenKind::kIdentifier) continue;
        last_ident = text(j);
        if (starts_with(last_ident, "unordered_")) unordered_range = true;
      }
      if (!unordered_range && !last_ident.empty() &&
          unordered.count(last_ident) != 0) {
        unordered_range = true;
      }
      if (unordered_range) {
        const Token& at = f.tokens[code[ci]];
        out.push_back(
            {f.rel, at.line, at.col, "ordered-iteration",
             "range-for over an unordered container in an artifact-emitting "
             "module; hash-order leaks into emitted bytes — iterate a "
             "sorted view or an order-preserving structure",
             false, ""});
      }
    }
  }
}

}  // namespace

void run_project_rules(const Project& p, std::vector<Finding>& out) {
  rule_include_layering(p, out);
  rule_include_cycle(p, out);
  rule_unused_include(p, out);
  rule_cmake_registered(p, out);
  rule_ordered_iteration(p, out);
}

}  // namespace xfa::lint
