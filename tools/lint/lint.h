// Lint-run orchestration: scan a repo root, run every rule, fold in
// suppressions, and return a deterministically ordered LintResult.
#pragma once

#include <string>

#include "lint/report.h"
#include "lint/rules.h"

namespace xfa::lint {

/// Scans `<repo_root>/src` (every .h/.cpp, recursively), lexes the files in
/// parallel on the shared pool, runs file rules per TU and project rules on
/// the assembled tree. `threads` = 0 keeps the pool's default size.
LintResult run_lint(const std::string& repo_root, std::size_t threads = 0);

/// Runs only the single-file rules over one in-memory file — the unit-test
/// entry point. `rel` chooses directory-scoped rule behavior
/// ("net/fake.cpp" arms hoist-or-grid, etc.).
LintResult lint_source(std::string rel, std::string text);

/// Shared by both entry points: applies suppressions, partitions findings,
/// and sorts everything into the canonical report order.
LintResult finalize(Project project, std::vector<Finding> findings);

}  // namespace xfa::lint
