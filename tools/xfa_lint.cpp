// xfa_lint: repo-specific static checks, run as a ctest case.
//
// Usage: xfa_lint <repo-root>
//
// Rules enforced over every .h/.cpp under <repo-root>/src:
//
//   rng-determinism   No std::rand, std::random_device, srand, or time(...)
//                     outside src/sim/rng.* — every stochastic draw must go
//                     through the centrally seeded xfa::Rng so identical
//                     scenario seeds reproduce traces byte-for-byte.
//   no-raw-assert     No <cassert>-style checks; contracts must use the
//                     XFA_CHECK family (src/common/check.h), which stays
//                     armed in release builds. static_assert is fine.
//   pragma-once       Every header opens with `#pragma once` (after any
//                     leading comment block).
//   cmake-registered  Every .cpp under src/ appears in src/CMakeLists.txt,
//                     so no translation unit silently drops out of the build
//                     (and out of clang-tidy / sanitizer coverage).
//   exec-only-threads No raw std::thread / std::jthread / std::async outside
//                     src/exec — all concurrency goes through the shared
//                     execution layer (ThreadPool, TaskGroup, parallel_for),
//                     which owns the determinism and nested-wait guarantees.
//   hoist-or-grid     No `mobility_.position(...)` inside a loop body in
//                     src/net (except net/neighbor_index.*, which owns the
//                     sanctioned bulk query). Per-receiver position lookups
//                     in channel hot loops are O(N) trig each; hoist the
//                     query out of the loop or route it through the spatial
//                     NeighborIndex.
//   scratch-scoring   No allocating `predict_dist(` call inside a loop body
//                     in src/cfa — batched scoring is the detection hot path
//                     and must stay allocation-free: use predict_dist_into
//                     with a reused scratch buffer (ml/dataset.h).
//   status-not-abort  Recoverable I/O paths under src/scenario/ — any TU
//                     there that touches the filesystem (<fstream>,
//                     <filesystem>, <cstdio>) — must not use XFA_CHECK /
//                     XFA_DCHECK: environmental failures (corrupt artifacts,
//                     full disks) are expected at production scale and must
//                     propagate as Status/Result (common/status.h), not
//                     abort the process.
//
// Exit status is the number of violations (0 == clean), each printed as
// `file:line: rule: message` so editors can jump to them.

#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

int violations = 0;

void report(const fs::path& file, std::size_t line, const char* rule,
            const std::string& message) {
  std::fprintf(stderr, "%s:%zu: %s: %s\n", file.string().c_str(), line, rule,
               message.c_str());
  ++violations;
}

bool identifier_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// True when `token` occurs in `line` not preceded by an identifier
/// character (so `lifetime(` does not trip the `time(` rule, and
/// `static_assert(` does not trip the `assert(` rule).
bool contains_token(const std::string& line, const std::string& token) {
  for (std::size_t pos = line.find(token); pos != std::string::npos;
       pos = line.find(token, pos + 1)) {
    if (pos == 0 || !identifier_char(line[pos - 1])) return true;
  }
  return false;
}

std::vector<std::string> read_lines(const fs::path& file) {
  std::ifstream in(file);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

void check_determinism(const fs::path& file, const fs::path& rel,
                       const std::vector<std::string>& lines) {
  // The central RNG is the one place allowed to touch raw entropy sources.
  if (rel.string().rfind("sim/rng.", 0) == 0) return;
  static const char* const kBanned[] = {"std::rand", "random_device", "srand",
                                        "time("};
  for (std::size_t i = 0; i < lines.size(); ++i) {
    for (const char* token : kBanned) {
      if (contains_token(lines[i], token)) {
        report(file, i + 1, "rng-determinism",
               std::string("'") + token +
                   "' breaks trace reproducibility; draw from the scenario's "
                   "xfa::Rng (src/sim/rng.h) instead");
      }
    }
  }
}

void check_no_raw_assert(const fs::path& file,
                         const std::vector<std::string>& lines) {
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (contains_token(lines[i], "assert(")) {
      report(file, i + 1, "no-raw-assert",
             "compiled out under NDEBUG; use XFA_CHECK from common/check.h");
    }
    if (lines[i].find("<cassert>") != std::string::npos ||
        lines[i].find("<assert.h>") != std::string::npos) {
      report(file, i + 1, "no-raw-assert",
             "include common/check.h instead of the C assert header");
    }
  }
}

void check_pragma_once(const fs::path& file,
                       const std::vector<std::string>& lines) {
  bool in_block_comment = false;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    std::string trimmed = lines[i];
    const std::size_t first = trimmed.find_first_not_of(" \t");
    trimmed = first == std::string::npos ? "" : trimmed.substr(first);
    if (in_block_comment) {
      if (trimmed.find("*/") != std::string::npos) in_block_comment = false;
      continue;
    }
    if (trimmed.empty() || trimmed.rfind("//", 0) == 0) continue;
    if (trimmed.rfind("/*", 0) == 0) {
      if (trimmed.find("*/") == std::string::npos) in_block_comment = true;
      continue;
    }
    if (trimmed.rfind("#pragma once", 0) != 0) {
      report(file, i + 1, "pragma-once",
             "headers must start with #pragma once (after leading comments)");
    }
    return;
  }
  report(file, 1, "pragma-once", "empty header missing #pragma once");
}

void check_exec_only_threads(const fs::path& file, const fs::path& rel,
                             const std::vector<std::string>& lines) {
  // The execution layer is the one place allowed to spawn threads.
  if (rel.generic_string().rfind("exec/", 0) == 0) return;
  static const char* const kBanned[] = {"std::thread", "std::jthread",
                                        "std::async"};
  for (std::size_t i = 0; i < lines.size(); ++i) {
    for (const char* token : kBanned) {
      if (contains_token(lines[i], token)) {
        report(file, i + 1, "exec-only-threads",
               std::string("'") + token +
                   "' bypasses the shared execution layer; use ThreadPool / "
                   "TaskGroup / parallel_for (src/exec) so scheduling stays "
                   "deterministic and nested waits cannot deadlock");
      }
    }
  }
}

void check_hoist_mobility(const fs::path& file, const fs::path& rel,
                          const std::vector<std::string>& lines) {
  const std::string rel_str = rel.generic_string();
  if (rel_str.rfind("net/", 0) != 0) return;
  // The spatial index owns the one sanctioned bulk position query (its
  // rebuild loop); everything else in src/net must hoist or go through it.
  if (rel_str.rfind("net/neighbor_index.", 0) == 0) return;

  int depth = 0;
  std::vector<int> loop_depths;  // brace depth of each enclosing loop body
  bool pending_loop = false;     // saw a loop header, waiting for its '{'
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    const bool loop_header =
        contains_token(line, "for (") || contains_token(line, "while (");
    if (loop_header) pending_loop = true;
    if ((!loop_depths.empty() || loop_header) &&
        line.find("mobility_.position(") != std::string::npos) {
      report(file, i + 1, "hoist-or-grid",
             "per-iteration mobility position query in a src/net loop; "
             "hoist it out of the loop or use the spatial NeighborIndex "
             "(net/neighbor_index.h)");
    }
    for (const char c : line) {
      if (c == '{') {
        ++depth;
        if (pending_loop) {
          loop_depths.push_back(depth);
          pending_loop = false;
        }
      } else if (c == '}') {
        if (!loop_depths.empty() && loop_depths.back() == depth)
          loop_depths.pop_back();
        --depth;
      }
    }
  }
}

void check_scratch_scoring(const fs::path& file, const fs::path& rel,
                           const std::vector<std::string>& lines) {
  if (rel.generic_string().rfind("cfa/", 0) != 0) return;
  // Batched scoring (score_all over a whole trace) is the detection-phase
  // hot path; an allocating predict_dist call in a loop reintroduces one
  // vector allocation per (row, sub-model) pair. `predict_dist_into(` does
  // not match the banned token, so the scratch-buffer path stays clean.
  int depth = 0;
  std::vector<int> loop_depths;  // brace depth of each enclosing loop body
  bool pending_loop = false;     // saw a loop header, waiting for its '{'
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    const bool loop_header =
        contains_token(line, "for (") || contains_token(line, "while (");
    if (loop_header) pending_loop = true;
    if ((!loop_depths.empty() || loop_header) &&
        line.find("predict_dist(") != std::string::npos) {
      report(file, i + 1, "scratch-scoring",
             "allocating predict_dist call in a src/cfa loop; use "
             "predict_dist_into with a reused scratch buffer so batched "
             "scoring stays allocation-free");
    }
    for (const char c : line) {
      if (c == '{') {
        ++depth;
        if (pending_loop) {
          loop_depths.push_back(depth);
          pending_loop = false;
        }
      } else if (c == '}') {
        if (!loop_depths.empty() && loop_depths.back() == depth)
          loop_depths.pop_back();
        --depth;
      }
    }
  }
}

void check_status_not_abort(const fs::path& file, const fs::path& rel,
                            const std::vector<std::string>& lines) {
  if (rel.generic_string().rfind("scenario/", 0) != 0) return;
  // A scenario TU that does file I/O is a recoverable path: everything that
  // can go wrong there (corrupt bytes, ENOSPC, races with other processes)
  // is environmental, so abort-style contracts are banned in the whole TU.
  bool does_io = false;
  for (const std::string& line : lines) {
    if (line.find("<fstream>") != std::string::npos ||
        line.find("<filesystem>") != std::string::npos ||
        line.find("<cstdio>") != std::string::npos) {
      does_io = true;
      break;
    }
  }
  if (!does_io) return;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (contains_token(lines[i], "XFA_CHECK") ||
        contains_token(lines[i], "XFA_DCHECK")) {
      report(file, i + 1, "status-not-abort",
             "this scenario TU does file I/O; recoverable failures must "
             "return Status/Result (common/status.h), not abort via "
             "XFA_CHECK");
    }
  }
}

void check_cmake_registered(const fs::path& file, const fs::path& rel,
                            const std::string& cmake_text) {
  if (cmake_text.find(rel.generic_string()) == std::string::npos) {
    report(file, 1, "cmake-registered",
           rel.generic_string() + " is not listed in src/CMakeLists.txt");
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <repo-root>\n", argv[0]);
    return 64;
  }
  const fs::path src_root = fs::path(argv[1]) / "src";
  if (!fs::is_directory(src_root)) {
    std::fprintf(stderr, "xfa_lint: no src/ directory under %s\n", argv[1]);
    return 64;
  }

  std::ostringstream cmake_buffer;
  cmake_buffer << std::ifstream(src_root / "CMakeLists.txt").rdbuf();
  const std::string cmake_text = cmake_buffer.str();

  std::size_t files_checked = 0;
  for (const auto& entry : fs::recursive_directory_iterator(src_root)) {
    if (!entry.is_regular_file()) continue;
    const fs::path& file = entry.path();
    const std::string ext = file.extension().string();
    if (ext != ".h" && ext != ".cpp") continue;
    const fs::path rel = fs::relative(file, src_root);
    const std::vector<std::string> lines = read_lines(file);
    ++files_checked;

    check_determinism(file, rel, lines);
    check_no_raw_assert(file, lines);
    check_exec_only_threads(file, rel, lines);
    check_hoist_mobility(file, rel, lines);
    check_scratch_scoring(file, rel, lines);
    check_status_not_abort(file, rel, lines);
    if (ext == ".h") check_pragma_once(file, lines);
    if (ext == ".cpp") check_cmake_registered(file, rel, cmake_text);
  }

  std::printf("xfa_lint: %zu files checked, %d violation(s)\n", files_checked,
              violations);
  return violations;
}
