// Trace-cache warmer: simulates every trace the bench suite needs, so the
// bench binaries themselves run from cache. Sequential; prints progress.
#include <chrono>
#include <cstdio>
#include "scenario/pipeline.h"

using namespace xfa;
using Clock = std::chrono::steady_clock;

static void warm(RoutingKind r, TransportKind t, const ExperimentOptions& o,
                 const char* tag) {
  const auto start = Clock::now();
  const ExperimentData data = gather_experiment(r, t, o);
  const double secs =
      std::chrono::duration<double>(Clock::now() - start).count();
  std::printf("[warm] %s/%s %s: %zu traces, %.1fs (PDR train=%.3f)\n",
              to_string(r), to_string(t), tag,
              1 + data.normal_eval.size() + data.abnormal.size(), secs,
              data.summaries.front().packet_delivery_ratio);
  std::fflush(stdout);
}

int main() {
  for (const ScenarioCombo& combo : paper_scenarios())
    warm(combo.routing, combo.transport, paper_mixed_options(), "mixed");
  // Figure 5/6: per-attack traces on AODV/UDP (normal traces shared).
  warm(RoutingKind::Aodv, TransportKind::Udp,
       paper_single_attack_options(AttackKind::Blackhole), "blackhole-only");
  warm(RoutingKind::Aodv, TransportKind::Udp,
       paper_single_attack_options(AttackKind::SelectiveDrop), "drop-only");
  std::printf("[warm] done\n");
  return 0;
}
