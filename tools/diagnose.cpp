// Developer diagnostic: per-condition score statistics for one scenario.
#include <algorithm>
#include <cstdio>
#include "scenario/pipeline.h"
#include "eval/pr.h"

using namespace xfa;

int main(int argc, char** argv) {
  ExperimentOptions options;
  options.duration = 800;
  options.normal_eval_traces = 2;
  options.abnormal_traces = 1;
  options.attacks = mixed_attacks(100);
  options.attacks[0].schedule.start = 200;
  options.attacks[1].schedule.start = 400;
  options.base_seed = 9000;
  RoutingKind routing = (argc > 1 && std::string(argv[1]) == "dsr")
                            ? RoutingKind::Dsr : RoutingKind::Aodv;
  const ExperimentData data = gather_experiment(routing, TransportKind::Udp, options);
  const Detector det = train_detector(data.train_normal, make_c45_factory(), {},
                                      &data.normal_eval[0]);
  auto show = [&](const char* name, const RawTrace& trace) {
    const auto scores = det.score_trace(trace);
    std::printf("%s:\n  t:      ", name);
    for (size_t i = 0; i < scores.size(); i += 8)
      std::printf("%6.0f ", trace.times[i]);
    std::printf("\n  score:  ");
    for (size_t i = 0; i < scores.size(); i += 8)
      std::printf("%6.3f ", scores[i].avg_probability);
    std::printf("\n");
  };
  show("fresh normal", data.normal_eval[1]);
  show("attack", data.abnormal[0]);
  return 0;
}
