# Header self-containment gate: every public header under src/ must compile
# as a standalone translation unit (its own includes are sufficient — no
# reliance on what a particular .cpp happened to include first).
#
# For each src/**/*.h a one-line TU `#include "<rel>"` is generated under the
# build tree and compiled into an OBJECT library. A content-diff guard keeps
# regeneration from dirtying timestamps (and so from rebuild churn) when the
# header set is unchanged.

file(GLOB_RECURSE _xfa_public_headers CONFIGURE_DEPENDS
  ${PROJECT_SOURCE_DIR}/src/*.h)

set(_xfa_selfcheck_dir ${PROJECT_BINARY_DIR}/header_selfcheck)
set(_xfa_selfcheck_tus "")
foreach(_hdr IN LISTS _xfa_public_headers)
  file(RELATIVE_PATH _rel ${PROJECT_SOURCE_DIR}/src ${_hdr})
  string(REPLACE "/" "_" _flat ${_rel})
  string(REPLACE ".h" "_selfcheck.cpp" _flat ${_flat})
  set(_tu ${_xfa_selfcheck_dir}/${_flat})
  set(_content "#include \"${_rel}\"  // self-containment check\n")
  if(EXISTS ${_tu})
    file(READ ${_tu} _existing)
  else()
    set(_existing "")
  endif()
  if(NOT _existing STREQUAL _content)
    file(WRITE ${_tu} ${_content})
  endif()
  list(APPEND _xfa_selfcheck_tus ${_tu})
endforeach()

add_library(xfa_header_selfcheck OBJECT ${_xfa_selfcheck_tus})
# Linking the umbrella target propagates include dirs and compile features;
# OBJECT libraries consume only the usage requirements.
target_link_libraries(xfa_header_selfcheck PRIVATE xfa)
