// Example: a complete MANET intrusion detection deployment.
//
// Reproduces the paper's workflow end to end on one scenario:
//   1. simulate a normal trace and train the cross-feature detector,
//   2. pick the decision threshold at a target false-alarm rate,
//   3. monitor fresh traces (normal and attacked) and raise alarms,
//   4. report recall/precision and per-window alarm timelines.
//
// Usage: manet_ids [aodv|dsr] [udp|tcp] [c45|ripper|nbc]

#include <cstdio>
#include <cstring>
#include <string>

#include "eval/pr.h"
#include "scenario/pipeline.h"

int main(int argc, char** argv) {
  xfa::RoutingKind routing = xfa::RoutingKind::Aodv;
  xfa::TransportKind transport = xfa::TransportKind::Udp;
  xfa::ClassifierFactory factory = xfa::make_c45_factory();
  std::string classifier_name = "C4.5";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "dsr") == 0) routing = xfa::RoutingKind::Dsr;
    if (std::strcmp(argv[i], "tcp") == 0) transport = xfa::TransportKind::Tcp;
    if (std::strcmp(argv[i], "ripper") == 0) {
      factory = xfa::make_ripper_factory();
      classifier_name = "RIPPER";
    }
    if (std::strcmp(argv[i], "nbc") == 0) {
      factory = xfa::make_nbc_factory();
      classifier_name = "NBC";
    }
  }

  xfa::ExperimentOptions options;
  options.duration = 4000;
  options.normal_eval_traces = 3;  // first calibrates the threshold
  options.abnormal_traces = 2;
  options.attacks = xfa::mixed_attacks(/*session=*/200);
  for (auto& attack : options.attacks) attack.schedule.start *= 0.4;

  std::printf("MANET IDS: %s/%s with %s, %.0f s traces\n",
              to_string(routing), to_string(transport),
              classifier_name.c_str(), options.duration);

  std::printf("[1/4] simulating traces (cached after first run)...\n");
  const xfa::ExperimentData data =
      xfa::gather_experiment(routing, transport, options);

  std::printf("[2/4] training %s cross-feature sub-models...\n",
              classifier_name.c_str());
  xfa::DetectorOptions detector_options;
  detector_options.false_alarm_rate = 0.02;
  // Threshold calibrated on a held-out normal trace (paper: a lower bound
  // of score values on normal events at the chosen confidence level).
  const xfa::Detector detector = xfa::train_detector(
      data.train_normal, factory, detector_options, &data.normal_eval[0]);
  std::printf("      threshold(avg probability) = %.3f  (98%% confidence)\n",
              detector.threshold_probability);

  std::printf("[3/4] scoring evaluation traces...\n");
  std::vector<double> all_scores;
  std::vector<int> all_labels;
  std::size_t normal_alarms = 0, normal_events = 0;
  for (std::size_t t = 1; t < data.normal_eval.size(); ++t) {
    const xfa::RawTrace& trace = data.normal_eval[t];
    for (const xfa::EventScore& s : detector.score_trace(trace)) {
      all_scores.push_back(s.avg_probability);
      all_labels.push_back(0);
      ++normal_events;
      if (s.avg_probability < detector.threshold_probability) ++normal_alarms;
    }
  }
  std::size_t attack_alarms = 0, attack_positive = 0;
  bool explained_first_alarm = false;
  for (const xfa::RawTrace& trace : data.abnormal) {
    const auto scores = detector.score_trace(trace);
    for (std::size_t i = 0; i < scores.size(); ++i) {
      if (!explained_first_alarm && trace.labels[i] != 0 &&
          scores[i].avg_probability < detector.threshold_probability) {
        explained_first_alarm = true;
        std::printf("      first alarm at t=%.0fs — most deviating "
                    "features:\n",
                    trace.times[i]);
        const xfa::DiscreteTrace discrete =
            detector.discretizer.transform(trace);
        const auto verdicts = detector.model.explain(discrete.rows[i]);
        for (std::size_t v = 0; v < 5 && v < verdicts.size(); ++v) {
          const auto& verdict = verdicts[v];
          std::printf("        %-28s observed bucket %d, predicted %d "
                      "(p=%.2f)\n",
                      detector.schema.name(verdict.label_column).c_str(),
                      verdict.observed, verdict.predicted,
                      verdict.probability);
        }
      }
      all_scores.push_back(scores[i].avg_probability);
      all_labels.push_back(trace.labels[i]);
      if (trace.labels[i] != 0) {
        ++attack_positive;
        if (scores[i].avg_probability < detector.threshold_probability)
          ++attack_alarms;
      }
    }
  }

  std::printf("[4/4] results\n");
  std::printf("      false alarm rate on fresh normal traces: %.4f (%zu/%zu)\n",
              static_cast<double>(normal_alarms) /
                  static_cast<double>(normal_events),
              normal_alarms, normal_events);
  std::printf("      detection rate during/after intrusions:  %.4f (%zu/%zu)\n",
              static_cast<double>(attack_alarms) /
                  static_cast<double>(attack_positive),
              attack_alarms, attack_positive);

  const xfa::PrCurve curve = xfa::recall_precision_curve(all_scores, all_labels);
  const xfa::PrPoint best = curve.optimal_point();
  std::printf("      recall-precision optimal point: (%.2f, %.2f), "
              "AUC-above-diagonal=%.3f\n",
              best.recall, best.precision, curve.area_above_diagonal());
  return 0;
}
