// Example: attack anatomy — what black hole and selective dropping do to the
// network, and how fast the detector notices each.
//
// For each attack type (paper Table 6), runs a clean trace and an attacked
// trace with the same seed, reports the damage (delivery ratio during attack
// sessions) and the detection latency of a C4.5 cross-feature detector.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "scenario/pipeline.h"

namespace {

struct AttackReport {
  const char* name;
  double clean_pdr;
  double attacked_pdr;
  double detection_latency;  // s from first onset to first alarm
  double detected_fraction;  // alarmed fraction of post-onset windows
};

AttackReport study(xfa::AttackKind kind, const xfa::Detector& detector,
                   xfa::RoutingKind routing, double duration) {
  xfa::ScenarioConfig clean;
  clean.routing = routing;
  clean.duration = duration;
  clean.seed = 2024;
  const auto clean_result = xfa::run_scenario(clean);

  xfa::ScenarioConfig attacked = clean;
  attacked.attacks = xfa::single_attack_sessions(kind);
  // Rescale the paper's 2500/5000/7500 onsets to the chosen duration.
  for (auto& [start, len] : attacked.attacks[0].schedule.sessions) {
    start *= duration / 10000.0;
    len = 100;
  }
  const auto attack_result = xfa::run_scenario(attacked);

  const auto scores = detector.score_trace(attack_result.trace);
  const double onset = attacked.attacks[0].schedule.sessions.front().first;
  double first_alarm = -1;
  std::size_t post = 0, alarmed = 0;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    const double t = attack_result.trace.times[i];
    if (t <= onset) continue;
    ++post;
    if (scores[i].avg_probability < detector.threshold_probability) {
      ++alarmed;
      if (first_alarm < 0) first_alarm = t;
    }
  }

  AttackReport report;
  report.name = to_string(kind);
  report.clean_pdr = clean_result.summary.packet_delivery_ratio;
  report.attacked_pdr = attack_result.summary.packet_delivery_ratio;
  report.detection_latency = first_alarm < 0 ? -1 : first_alarm - onset;
  report.detected_fraction =
      post == 0 ? 0 : static_cast<double>(alarmed) / static_cast<double>(post);
  return report;
}

}  // namespace

int main(int argc, char** argv) {
  const double duration = argc > 1 ? std::atof(argv[1]) : 4000.0;
  const auto routing = xfa::RoutingKind::Aodv;

  std::printf("Attack anatomy study: AODV/UDP, %.0f s traces\n\n", duration);

  // Train on one normal trace, calibrate the threshold on a second.
  xfa::ScenarioConfig train;
  train.routing = routing;
  train.duration = duration;
  train.seed = 7;
  const auto train_result = xfa::run_scenario(train);
  xfa::ScenarioConfig calibration = train;
  calibration.seed = 8;
  const auto calibration_result = xfa::run_scenario(calibration);
  const xfa::Detector detector =
      xfa::train_detector(train_result.trace, xfa::make_c45_factory(), {},
                          &calibration_result.trace);

  std::printf("%-16s %-10s %-12s %-14s %-10s\n", "attack", "clean PDR",
              "attacked PDR", "latency (s)", "coverage");
  // The paper evaluates the first two; update storm and random dropping
  // complete its §2.3 taxonomy.
  for (const auto kind :
       {xfa::AttackKind::Blackhole, xfa::AttackKind::SelectiveDrop,
        xfa::AttackKind::UpdateStorm, xfa::AttackKind::RandomDrop}) {
    const AttackReport r = study(kind, detector, routing, duration);
    std::printf("%-16s %-10.3f %-12.3f %-14.1f %-10.3f\n", r.name,
                r.clean_pdr, r.attacked_pdr, r.detection_latency,
                r.detected_fraction);
  }
  std::printf(
      "\nNote: black-hole damage persists after sessions end (forged max\n"
      "sequence numbers are never superseded), so coverage counts windows\n"
      "from first onset onward — matching the paper's observation that the\n"
      "network does not self-heal from these intrusions.\n");
  return 0;
}
