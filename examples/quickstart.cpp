// Quickstart: cross-feature analysis on the paper's 2-node illustrative
// example (§3, Tables 1-3), then the same API on a real simulated trace.
//
// Demonstrates the core public API:
//   Dataset -> CrossFeatureModel::train -> score (avg match count /
//   avg probability) -> threshold decision.

#include <cstdio>
#include <vector>

#include "ml/naive_bayes.h"
#include "scenario/pipeline.h"

namespace {

using xfa::Dataset;

// The complete set of normal events from Table 1:
// {Reachable?, Delivered?, Cached?}
Dataset table1_normal_events() {
  Dataset data;
  data.cardinality = {2, 2, 2};
  data.names = {"Reachable?", "Delivered?", "Cached?"};
  data.rows = {
      {1, 1, 1},  // True  True  True
      {1, 0, 0},  // True  False False
      {0, 0, 1},  // False False True
      {0, 0, 0},  // False False False
  };
  return data;
}

const char* bit(int v) { return v != 0 ? "True " : "False"; }

}  // namespace

int main() {
  std::printf("== Part 1: the 2-node network example (paper §3) ==\n\n");

  const Dataset normal = table1_normal_events();
  xfa::CrossFeatureModel model;
  // Train one sub-model per feature on normal events only (Algorithm 1).
  model.train(normal, {0, 1, 2}, xfa::make_nbc_factory(), /*threads=*/1);

  std::printf("%-10s %-10s %-8s | %-8s %-10s %-8s\n", "Reachable", "Delivered",
              "Cached", "class", "matchcnt", "avgprob");
  const double theta = 0.5;  // the example's decision threshold
  for (int r = 0; r < 2; ++r) {
    for (int d = 0; d < 2; ++d) {
      for (int c = 0; c < 2; ++c) {
        const std::vector<int> event = {r, d, c};
        const bool is_normal_event =
            (r == 1 && d == 1 && c == 1) || (r == 1 && d == 0 && c == 0) ||
            (r == 0 && d == 0);
        const xfa::EventScore score = model.score(event);
        const char* verdict =
            score.avg_probability >= theta ? "normal" : "ANOMALY";
        std::printf("%-10s %-10s %-8s | %-8s %-10.2f %-8.2f -> %s\n", bit(r),
                    bit(d), bit(c), is_normal_event ? "Normal" : "Abnormal",
                    score.avg_match_count, score.avg_probability, verdict);
      }
    }
  }

  std::printf("\n== Part 2: a simulated MANET trace ==\n\n");
  // One small AODV/UDP run: train on normal, score an attack trace.
  xfa::ExperimentOptions options;
  options.normal_eval_traces = 1;
  options.abnormal_traces = 1;
  options.duration = 2000;
  options.attacks = xfa::mixed_attacks(/*session=*/100);
  for (auto& attack : options.attacks) {
    attack.schedule.start /= 5;  // onsets at 500 s / 1000 s for a 2000 s run
  }
  const xfa::ExperimentData data = xfa::gather_experiment(
      xfa::RoutingKind::Aodv, xfa::TransportKind::Udp, options);

  xfa::DetectorOptions detector_options;
  const xfa::Detector detector =
      xfa::train_detector(data.train_normal, xfa::make_c45_factory(),
                          detector_options);

  const auto normal_scores = detector.score_trace(data.normal_eval.front());
  const auto attack_scores = detector.score_trace(data.abnormal.front());
  double normal_mean = 0, attack_mean = 0;
  for (const auto& s : normal_scores) normal_mean += s.avg_probability;
  for (const auto& s : attack_scores) attack_mean += s.avg_probability;
  normal_mean /= static_cast<double>(normal_scores.size());
  attack_mean /= static_cast<double>(attack_scores.size());

  std::printf("sub-models trained:            %zu\n",
              detector.model.submodel_count());
  std::printf("decision threshold (avgprob):  %.3f\n",
              detector.threshold_probability);
  std::printf("mean avg-probability, normal:  %.3f\n", normal_mean);
  std::printf("mean avg-probability, attack:  %.3f\n", attack_mean);
  std::printf("=> attack trace scores %s the normal trace\n",
              attack_mean < normal_mean ? "below" : "NOT below");
  return 0;
}
