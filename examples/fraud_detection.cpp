// Example: cross-feature analysis outside MANETs.
//
// The paper's conclusion claims the framework "is a general anomaly
// detection approach ... as well as a few financial fraud detection
// problems where only normal data could be trusted. ... Initial experiments
// using credit card fraud detection have revealed promising results."
//
// This example reproduces that spirit on synthetic credit-card data: normal
// transactions have strong inter-feature correlations (spending hour <->
// merchant category <-> amount band <-> distance from home), fraud breaks
// them. The detector trains on normal transactions only.

#include <cstdio>
#include <memory>
#include <vector>

#include "cfa/model.h"
#include "cfa/threshold.h"
#include "eval/pr.h"
#include "ml/c45.h"
#include "sim/rng.h"

namespace {

using namespace xfa;

// Feature columns: hour band (0 night / 1 morning / 2 day / 3 evening),
// merchant category (0 grocery / 1 fuel / 2 online / 3 travel / 4 luxury),
// amount band (0 small .. 3 large), distance band (0 near .. 2 far),
// velocity band (transactions in last hour: 0/1/2+).
constexpr std::size_t kColumns = 5;

std::vector<int> normal_transaction(Rng& rng) {
  // A cardholder with habits: groceries by day near home (small amounts),
  // fuel in the morning (small), online in the evening (medium), rare
  // travel (far, large, daytime). Velocity is almost always low.
  const double archetype = rng.uniform();
  if (archetype < 0.45) {  // grocery run
    return {2, 0, static_cast<int>(rng.uniform_int(2)), 0,
            rng.chance(0.9) ? 0 : 1};
  }
  if (archetype < 0.70) {  // fuel
    return {1, 1, 0, static_cast<int>(rng.uniform_int(2)),
            rng.chance(0.9) ? 0 : 1};
  }
  if (archetype < 0.93) {  // online evening shopping
    return {3, 2, rng.chance(0.7) ? 1 : 2, 0, rng.chance(0.8) ? 0 : 1};
  }
  // travel
  return {2, 3, 3, 2, 0};
}

std::vector<int> fraud_transaction(Rng& rng) {
  // Stolen-card patterns: luxury at night, far away, in rapid bursts; or
  // large online purchases at odd hours.
  if (rng.chance(0.5)) return {0, 4, 3, 2, 2};
  return {0, 2, 3, static_cast<int>(rng.uniform_int(3)), 2};
}

}  // namespace

int main() {
  Rng rng(2026);

  Dataset train;
  train.cardinality = {4, 5, 4, 3, 3};
  train.names = {"hour", "merchant", "amount", "distance", "velocity"};
  for (int i = 0; i < 4000; ++i) train.rows.push_back(normal_transaction(rng));

  std::printf("Training cross-feature model on %zu normal transactions...\n",
              train.size());
  CrossFeatureModel model;
  model.train(train, {0, 1, 2, 3, 4},
              [] { return std::make_unique<C45>(); });

  // Threshold at 1% false alarms on held-out normal data.
  std::vector<double> calibration;
  for (int i = 0; i < 2000; ++i)
    calibration.push_back(model.score(normal_transaction(rng)).avg_probability);
  const double theta = select_threshold(calibration, 0.01);
  std::printf("decision threshold (99%% confidence): %.3f\n\n", theta);

  // Evaluate on a fresh mixed stream.
  std::vector<double> scores;
  std::vector<int> labels;
  std::size_t fraud_caught = 0, fraud_total = 0, false_alarms = 0,
              normal_total = 0;
  for (int i = 0; i < 5000; ++i) {
    const bool is_fraud = rng.chance(0.02);
    const auto tx = is_fraud ? fraud_transaction(rng)
                             : normal_transaction(rng);
    const double score = model.score(tx).avg_probability;
    scores.push_back(score);
    labels.push_back(is_fraud ? 1 : 0);
    if (is_fraud) {
      ++fraud_total;
      if (score < theta) ++fraud_caught;
    } else {
      ++normal_total;
      if (score < theta) ++false_alarms;
    }
  }

  std::printf("stream of %d transactions (%.0f%% fraud):\n", 5000, 2.0);
  std::printf("  fraud detected:    %zu / %zu (%.1f%%)\n", fraud_caught,
              fraud_total,
              100.0 * static_cast<double>(fraud_caught) /
                  static_cast<double>(fraud_total));
  std::printf("  false alarms:      %zu / %zu (%.2f%%)\n", false_alarms,
              normal_total,
              100.0 * static_cast<double>(false_alarms) /
                  static_cast<double>(normal_total));
  const xfa::PrCurve curve = recall_precision_curve(scores, labels);
  const xfa::PrPoint best = curve.optimal_point();
  std::printf("  recall-precision optimal point: (%.2f, %.2f), "
              "AUC-above-diagonal %.3f\n",
              best.recall, best.precision, curve.area_above_diagonal());
  std::printf(
      "\nSame library, no MANET anywhere: the detector only needs events\n"
      "with correlated features and a trustworthy stream of normal data.\n");
  return 0;
}
