// Example: compare AODV and DSR protocol health on identical workloads.
//
// Exercises the simulation substrate without the IDS: runs the same mobility
// and traffic under both routing protocols and reports delivery ratio,
// control overhead and route-fabric churn — the kind of numbers the paper's
// [PRDM01] reference reports for these protocols.
//
// Usage: protocol_compare [duration_seconds] (default 1000)

#include <cstdio>
#include <cstdlib>

#include "scenario/runner.h"

namespace {

void run(xfa::RoutingKind routing, double duration) {
  xfa::ScenarioConfig config;
  config.routing = routing;
  config.transport = xfa::TransportKind::Udp;
  config.duration = duration;
  config.seed = 42;

  const xfa::ScenarioResult result = xfa::run_scenario(config);
  const xfa::ScenarioSummary& s = result.summary;
  std::printf("%-5s data=%llu/%llu  PDR=%.3f  events=%llu\n",
              to_string(routing),
              static_cast<unsigned long long>(s.data_delivered),
              static_cast<unsigned long long>(s.data_originated),
              s.packet_delivery_ratio,
              static_cast<unsigned long long>(s.scheduler_events));
  std::printf(
      "      channel: tx=%llu delivered=%llu taps=%llu unicast_fail=%llu\n",
      static_cast<unsigned long long>(s.channel.transmissions),
      static_cast<unsigned long long>(s.channel.deliveries),
      static_cast<unsigned long long>(s.channel.taps),
      static_cast<unsigned long long>(s.channel.unicast_failures));
  std::printf(
      "      monitor audit: %llu packet records, %llu route events\n",
      static_cast<unsigned long long>(s.monitor_audit_packets),
      static_cast<unsigned long long>(s.monitor_audit_route_events));
  std::printf(
      "      monitor routing: discoveries %llu ok / %llu failed, "
      "fwd=%llu, rerr=%llu\n",
      static_cast<unsigned long long>(s.monitor_routing.discoveries_succeeded),
      static_cast<unsigned long long>(s.monitor_routing.discoveries_failed),
      static_cast<unsigned long long>(s.monitor_routing.data_forwarded),
      static_cast<unsigned long long>(s.monitor_routing.rerr_sent));
}

}  // namespace

int main(int argc, char** argv) {
  const double duration = argc > 1 ? std::atof(argv[1]) : 1000.0;
  std::printf("MANET protocol comparison, %zu nodes, %.0f s, UDP/CBR\n\n",
              std::size_t{50}, duration);
  run(xfa::RoutingKind::Aodv, duration);
  run(xfa::RoutingKind::Dsr, duration);
  return 0;
}
