// Contract-macro behaviour: XFA_CHECK must stay armed in release builds
// (this suite runs under NDEBUG in tier-1 CI) and report enough context to
// debug from the failure line alone.
#include <gtest/gtest.h>

#include <string>

#include "common/check.h"

namespace xfa {
namespace {

TEST(CheckTest, PassingChecksAreSilent) {
  XFA_CHECK(true);
  XFA_CHECK(1 + 1 == 2) << "never rendered";
  XFA_CHECK_EQ(4, 4);
  XFA_CHECK_NE(4, 5);
  XFA_CHECK_LT(4, 5);
  XFA_CHECK_LE(4, 4);
  XFA_CHECK_GT(5, 4);
  XFA_CHECK_GE(4, 4);
}

TEST(CheckDeathTest, FailureReportsExpressionAndLocation) {
  EXPECT_DEATH(XFA_CHECK(2 + 2 == 5), "check_test.cpp.*2 \\+ 2 == 5");
}

TEST(CheckDeathTest, StreamedMessageIsIncluded) {
  EXPECT_DEATH(XFA_CHECK(false) << "ttl=" << 7, "ttl=7");
}

TEST(CheckDeathTest, ComparisonVariantsPrintBothOperands) {
  const int lo = 3;
  const int hi = 9;
  EXPECT_DEATH(XFA_CHECK_GE(lo, hi), "lo >= hi.*\\(3 vs. 9\\)");
  EXPECT_DEATH(XFA_CHECK_LT(hi, lo), "hi < lo.*\\(9 vs. 3\\)");
  EXPECT_DEATH(XFA_CHECK_EQ(lo, hi) << "context", "\\(3 vs. 9\\) context");
}

TEST(CheckDeathTest, CheckComposesWithControlFlow) {
  // The macros must behave as single statements under unbraced if/else.
  const bool flag = true;
  if (flag)
    XFA_CHECK(true);
  else
    XFA_CHECK(false);
  EXPECT_DEATH({ if (flag) XFA_CHECK(false) << "branch"; }, "branch");
}

TEST(CheckTest, StreamedMessageIsLazyOnSuccess) {
  // Hot paths stream expensive renderings (e.g. `<< pkt.describe()`) onto
  // checks; the operands must only be evaluated on the failure arm.
  int rendered = 0;
  const auto describe = [&rendered] {
    ++rendered;
    return std::string("expensive");
  };
  XFA_CHECK(true) << describe();
  XFA_CHECK_EQ(2, 2) << describe() << describe();
  EXPECT_EQ(rendered, 0);
  EXPECT_DEATH(XFA_CHECK(false) << describe(), "expensive");
}

TEST(CheckTest, DcheckMatchesBuildConfiguration) {
#ifdef NDEBUG
  // Compiled to a dead loop: the condition must not be evaluated.
  bool evaluated = false;
  XFA_DCHECK(((evaluated = true), false));
  EXPECT_FALSE(evaluated);
#else
  EXPECT_DEATH(XFA_DCHECK(false), "false");
#endif
}

}  // namespace
}  // namespace xfa
