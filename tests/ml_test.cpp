// Unit tests: C4.5, RIPPER, naive Bayes, linear regression, metrics.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "ml/c45.h"
#include "ml/linreg.h"
#include "ml/metrics.h"
#include "ml/naive_bayes.h"
#include "ml/ripper.h"
#include "sim/rng.h"

namespace xfa {
namespace {

/// XOR-ish dataset: label = f0 XOR f1, plus an irrelevant noise column.
Dataset xor_dataset(std::size_t copies) {
  Dataset data;
  data.cardinality = {2, 2, 3, 2};  // f0, f1, noise, label
  data.names = {"f0", "f1", "noise", "label"};
  Rng rng(3);
  for (std::size_t i = 0; i < copies; ++i) {
    for (int a = 0; a < 2; ++a)
      for (int b = 0; b < 2; ++b)
        data.rows.push_back(
            {a, b, static_cast<int>(rng.uniform_int(3)), a ^ b});
  }
  return data;
}

/// Single-feature majority dataset: label follows f0 90% of the time.
Dataset noisy_copy_dataset(std::size_t n) {
  Dataset data;
  data.cardinality = {3, 2, 3};  // f0, noise, label
  Rng rng(5);
  for (std::size_t i = 0; i < n; ++i) {
    const int f0 = static_cast<int>(rng.uniform_int(3));
    const int label =
        rng.chance(0.9) ? f0 : static_cast<int>(rng.uniform_int(3));
    data.rows.push_back({f0, static_cast<int>(rng.uniform_int(2)), label});
  }
  return data;
}

template <typename MakeClassifier>
void expect_learns_xor(MakeClassifier make) {
  const Dataset data = xor_dataset(16);
  auto classifier = make();
  classifier->fit(data, {0, 1, 2}, 3);
  EXPECT_EQ(classifier->predict({0, 0, 1, -1}), 0);
  EXPECT_EQ(classifier->predict({0, 1, 0, -1}), 1);
  EXPECT_EQ(classifier->predict({1, 0, 2, -1}), 1);
  EXPECT_EQ(classifier->predict({1, 1, 1, -1}), 0);
}

TEST(C45Test, LearnsXor) {
  expect_learns_xor([] { return std::make_unique<C45>(); });
}

// (RIPPER cannot learn XOR: FOIL gain of every first literal is zero, so
// rule growth never starts — a property of the algorithm, not a bug. Naive
// Bayes cannot learn XOR either, by feature independence.)

TEST(RipperTest, LearnsConjunctiveConcept) {
  // label = (f0 == 1 AND f1 == 2), learnable by a single grown rule.
  Dataset data;
  data.cardinality = {2, 3, 2, 2};  // f0, f1, noise, label
  Rng rng(21);
  for (int i = 0; i < 300; ++i) {
    const int f0 = static_cast<int>(rng.uniform_int(2));
    const int f1 = static_cast<int>(rng.uniform_int(3));
    data.rows.push_back({f0, f1, static_cast<int>(rng.uniform_int(2)),
                         (f0 == 1 && f1 == 2) ? 1 : 0});
  }
  Ripper classifier;
  classifier.fit(data, {0, 1, 2}, 3);
  EXPECT_EQ(classifier.predict({1, 2, 0, -1}), 1);
  EXPECT_EQ(classifier.predict({1, 2, 1, -1}), 1);
  EXPECT_EQ(classifier.predict({0, 2, 0, -1}), 0);
  EXPECT_EQ(classifier.predict({1, 1, 0, -1}), 0);
  EXPECT_GE(classifier.rule_count(), 1u);
}

TEST(C45Test, ProbabilitiesAreLeafFrequencies) {
  const Dataset data = noisy_copy_dataset(600);
  C45 classifier;
  classifier.fit(data, {0, 1}, 2);
  // For f0 = v, the leaf should assign ~0.9 to class v.
  for (int v = 0; v < 3; ++v) {
    const auto dist = classifier.predict_dist({v, 0, -1});
    EXPECT_GT(dist[static_cast<std::size_t>(v)], 0.75);
    double sum = 0;
    for (const double p : dist) sum += p;
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(C45Test, PrunedTreeIsSmaller) {
  const Dataset data = noisy_copy_dataset(400);
  C45Config no_prune;
  no_prune.prune = false;
  no_prune.min_split_samples = 2;
  C45 unpruned(no_prune);
  unpruned.fit(data, {0, 1}, 2);
  C45Config with_prune;
  with_prune.min_split_samples = 2;
  C45 pruned(with_prune);
  pruned.fit(data, {0, 1}, 2);
  EXPECT_LE(pruned.node_count(), unpruned.node_count());
}

TEST(C45Test, ConstantLabelAlwaysPredictsIt) {
  Dataset data;
  data.cardinality = {3, 1};
  for (int i = 0; i < 20; ++i) data.rows.push_back({i % 3, 0});
  C45 classifier;
  classifier.fit(data, {0}, 1);
  const auto dist = classifier.predict_dist({1, -1});
  ASSERT_EQ(dist.size(), 1u);
  EXPECT_DOUBLE_EQ(dist[0], 1.0);
}

TEST(C45Test, IgnoresIrrelevantNoiseColumn) {
  const Dataset data = noisy_copy_dataset(600);
  C45 classifier;
  classifier.fit(data, {0, 1}, 2);
  // Same f0, different noise values: prediction should not flip.
  for (int v = 0; v < 3; ++v)
    EXPECT_EQ(classifier.predict({v, 0, -1}), classifier.predict({v, 1, -1}));
}

TEST(RipperTest, RulesHaveProbabilities) {
  const Dataset data = noisy_copy_dataset(600);
  Ripper classifier;
  classifier.fit(data, {0, 1}, 2);
  const auto dist = classifier.predict_dist({1, 0, -1});
  double sum = 0;
  for (const double p : dist) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_EQ(classifier.predict({1, 0, -1}), 1);
}

TEST(RipperTest, DefaultClassIsMajority) {
  Dataset data;
  data.cardinality = {2, 3};
  Rng rng(7);
  // Class 2 dominates; f0 is pure noise.
  for (int i = 0; i < 300; ++i) {
    const int label = rng.chance(0.8) ? 2 : static_cast<int>(
        rng.uniform_int(2));
    data.rows.push_back({static_cast<int>(rng.uniform_int(2)), label});
  }
  Ripper classifier;
  classifier.fit(data, {0}, 1);
  EXPECT_EQ(classifier.predict({0, -1}), 2);
  EXPECT_EQ(classifier.predict({1, -1}), 2);
}

TEST(NaiveBayesTest, MatchesPaperFormulaOnToyData) {
  // 2 features, 2 classes; verify the normalized product-of-priors form.
  Dataset data;
  data.cardinality = {2, 2, 2};
  // class 0: (0,0) x3, (0,1) x1; class 1: (1,1) x3, (1,0) x1.
  data.rows = {{0, 0, 0}, {0, 0, 0}, {0, 0, 0}, {0, 1, 0},
               {1, 1, 1}, {1, 1, 1}, {1, 1, 1}, {1, 0, 1}};
  NaiveBayes classifier;
  classifier.fit(data, {0, 1}, 2);
  const auto dist = classifier.predict_dist({0, 0, -1});
  EXPECT_GT(dist[0], 0.9);
  EXPECT_NEAR(dist[0] + dist[1], 1.0, 1e-9);
  EXPECT_EQ(classifier.predict({1, 1, -1}), 1);
}

TEST(NaiveBayesTest, LaplaceSmoothingAvoidsZeros) {
  Dataset data;
  data.cardinality = {3, 2};
  data.rows = {{0, 0}, {0, 0}, {1, 1}, {1, 1}};  // value 2 never seen
  NaiveBayes classifier;
  classifier.fit(data, {0}, 1);
  const auto dist = classifier.predict_dist({2, -1});
  EXPECT_GT(dist[0], 0.0);
  EXPECT_GT(dist[1], 0.0);
}

TEST(NaiveBayesTest, HandlesManyFeaturesWithoutUnderflow) {
  Dataset data;
  const std::size_t features = 150;
  data.cardinality.assign(features + 1, 2);
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    std::vector<int> row(features + 1);
    const int label = static_cast<int>(rng.uniform_int(2));
    for (std::size_t f = 0; f < features; ++f)
      row[f] = rng.chance(0.7) ? label : 1 - label;
    row[features] = label;
    data.rows.push_back(std::move(row));
  }
  NaiveBayes classifier;
  std::vector<std::size_t> feature_columns;
  for (std::size_t f = 0; f < features; ++f) feature_columns.push_back(f);
  classifier.fit(data, feature_columns, features);
  const auto dist = classifier.predict_dist(data.rows[0]);
  EXPECT_TRUE(std::isfinite(dist[0]));
  EXPECT_NEAR(dist[0] + dist[1], 1.0, 1e-9);
}

TEST(C45Test, GainRatioResistsHighArityNoise) {
  // A classic C4.5 property: plain information gain would prefer a
  // high-cardinality noise column (it shatters the data); gain ratio must
  // still pick the genuinely informative binary feature.
  Dataset data;
  data.cardinality = {2, 20, 2};  // informative, 20-valued noise, label
  Rng rng(31);
  for (int i = 0; i < 400; ++i) {
    const int f0 = static_cast<int>(rng.uniform_int(2));
    data.rows.push_back({f0, static_cast<int>(rng.uniform_int(20)),
                         rng.chance(0.95) ? f0 : 1 - f0});
  }
  C45 classifier;
  classifier.fit(data, {0, 1}, 2);
  // Whatever the noise value, the prediction must follow f0.
  for (int noise = 0; noise < 20; ++noise) {
    EXPECT_EQ(classifier.predict({0, noise, -1}), 0);
    EXPECT_EQ(classifier.predict({1, noise, -1}), 1);
  }
}

TEST(C45Test, DepthAndNodeCountReported) {
  const Dataset data = xor_dataset(8);
  C45 classifier;
  classifier.fit(data, {0, 1, 2}, 3);
  EXPECT_GE(classifier.depth(), 2u);  // XOR needs two levels
  EXPECT_GT(classifier.node_count(), 3u);
}

TEST(C45Test, UnseenBranchFallsBackToNodeDistribution) {
  Dataset data;
  data.cardinality = {3, 2};
  // Value 2 of f0 never appears in training.
  Rng rng(33);
  for (int i = 0; i < 100; ++i) {
    const int f0 = static_cast<int>(rng.uniform_int(2));
    data.rows.push_back({f0, f0});
  }
  C45 classifier;
  classifier.fit(data, {0}, 1);
  const auto dist = classifier.predict_dist({2, -1});
  EXPECT_NEAR(dist[0] + dist[1], 1.0, 1e-9);
  EXPECT_GT(dist[0], 0.2);  // roughly the prior, not a confident answer
  EXPECT_GT(dist[1], 0.2);
}

TEST(RipperTest, RuleCountStaysBounded) {
  const Dataset data = noisy_copy_dataset(800);
  RipperConfig config;
  config.max_rules_per_class = 4;
  Ripper classifier(config);
  classifier.fit(data, {0, 1}, 2);
  EXPECT_LE(classifier.rule_count(), 4u * 3u);
}

TEST(NaiveBayesTest, FallsBackToPriorWithoutEvidence) {
  Dataset data;
  data.cardinality = {2, 2};
  Rng rng(35);
  // 80/20 class prior, feature is independent noise.
  for (int i = 0; i < 500; ++i)
    data.rows.push_back({static_cast<int>(rng.uniform_int(2)),
                         rng.chance(0.8) ? 0 : 1});
  NaiveBayes classifier;
  classifier.fit(data, {0}, 1);
  const auto dist = classifier.predict_dist({0, -1});
  EXPECT_NEAR(dist[0], 0.8, 0.08);
}

TEST(DescribeTest, C45RenderingNamesSplitsAndLeaves) {
  const Dataset data = noisy_copy_dataset(400);
  C45 classifier;
  classifier.fit(data, {0, 1}, 2);
  const std::string text =
      classifier.describe({"color", "noise", "label"});
  EXPECT_NE(text.find("split on color"), std::string::npos);
  EXPECT_NE(text.find("-> class"), std::string::npos);
}

TEST(DescribeTest, RipperRenderingShowsRulesAndDefault) {
  Dataset data;
  data.cardinality = {2, 3, 2, 2};
  Rng rng(41);
  for (int i = 0; i < 300; ++i) {
    const int f0 = static_cast<int>(rng.uniform_int(2));
    const int f1 = static_cast<int>(rng.uniform_int(3));
    data.rows.push_back({f0, f1, static_cast<int>(rng.uniform_int(2)),
                         (f0 == 1 && f1 == 2) ? 1 : 0});
  }
  Ripper classifier;
  classifier.fit(data, {0, 1, 2}, 3);
  const std::string text = classifier.describe({"a", "b", "noise", "label"});
  EXPECT_NE(text.find("IF "), std::string::npos);
  EXPECT_NE(text.find("THEN class 1"), std::string::npos);
  EXPECT_NE(text.find("ELSE class 0"), std::string::npos);
}

TEST(DescribeTest, DefaultRenderingIsOpaque) {
  NaiveBayes classifier;
  Dataset data;
  data.cardinality = {2, 2};
  data.rows = {{0, 0}, {1, 1}};
  classifier.fit(data, {0}, 1);
  EXPECT_NE(classifier.describe({}).find("NBC"), std::string::npos);
}

TEST(C45DeathTest, RejectsOutOfRangePruneConfidence) {
  // The pessimistic-error z table covers (0, 0.5]; out-of-range confidence
  // used to fall back silently to cf=0.25 — now it is a construction error.
  C45Config config;
  config.prune_confidence = 0.75;
  EXPECT_DEATH(C45{config}, "prune_confidence");
  config.prune_confidence = 0.0;
  EXPECT_DEATH(C45{config}, "prune_confidence");
  config.prune_confidence = -0.1;
  EXPECT_DEATH(C45{config}, "prune_confidence");
}

TEST(LinRegTest, RecoversLinearFunction) {
  LinearRegression model;
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    const double a = rng.uniform(-5, 5), b = rng.uniform(-5, 5);
    x.push_back({a, b});
    y.push_back(3.0 * a - 2.0 * b + 7.0);
  }
  model.fit(x, y);
  EXPECT_NEAR(model.weights()[0], 3.0, 1e-6);
  EXPECT_NEAR(model.weights()[1], -2.0, 1e-6);
  EXPECT_NEAR(model.intercept(), 7.0, 1e-6);
  EXPECT_NEAR(model.predict({1.0, 1.0}), 8.0, 1e-6);
}

TEST(LinRegTest, DegenerateColumnHandled) {
  LinearRegression model;
  std::vector<std::vector<double>> x = {{1, 0}, {2, 0}, {3, 0}};
  std::vector<double> y = {2, 4, 6};
  model.fit(x, y);
  EXPECT_NEAR(model.predict({4, 0}), 8.0, 1e-3);
}

TEST(LinRegTest, LogDistance) {
  EXPECT_NEAR(LinearRegression::log_distance(10.0, 10.0), 0.0, 1e-12);
  EXPECT_NEAR(LinearRegression::log_distance(10.0, 1.0), std::log(10.0),
              1e-12);
  EXPECT_NEAR(LinearRegression::log_distance(1.0, 10.0), std::log(10.0),
              1e-12);
  // Total on zeros thanks to the epsilon floor.
  EXPECT_TRUE(std::isfinite(LinearRegression::log_distance(0.0, 5.0)));
}

TEST(MetricsTest, AccuracyAndConfusion) {
  const Dataset data = noisy_copy_dataset(500);
  C45 classifier;
  classifier.fit(data, {0, 1}, 2);
  const double acc = accuracy(classifier, data, 2);
  EXPECT_GT(acc, 0.8);
  const auto confusion = confusion_matrix(classifier, data, 2);
  std::size_t total = 0, diagonal = 0;
  for (std::size_t i = 0; i < confusion.size(); ++i)
    for (std::size_t j = 0; j < confusion.size(); ++j) {
      total += confusion[i][j];
      if (i == j) diagonal += confusion[i][j];
    }
  EXPECT_EQ(total, data.size());
  EXPECT_NEAR(static_cast<double>(diagonal) / static_cast<double>(total), acc,
              1e-9);
}

TEST(MetricsTest, KfoldCoversAllFolds) {
  const auto assignment = kfold_assignment(100, 5, 3);
  std::vector<int> counts(5, 0);
  for (const std::size_t fold : assignment) ++counts[fold];
  for (const int c : counts) EXPECT_EQ(c, 20);
}

TEST(DatasetTest, ValidCatchesRangeViolations) {
  Dataset good;
  good.cardinality = {2, 2};
  good.rows = {{0, 1}, {1, 0}};
  EXPECT_TRUE(good.valid());
}

// Cross-classifier property sweep: on a learnable dataset, training accuracy
// beats the majority baseline for every classifier.
class ClassifierParamTest : public ::testing::TestWithParam<int> {};

TEST_P(ClassifierParamTest, BeatsMajorityBaseline) {
  const Dataset data = noisy_copy_dataset(600);
  std::unique_ptr<Classifier> classifier;
  switch (GetParam()) {
    case 0: classifier = std::make_unique<C45>(); break;
    case 1: classifier = std::make_unique<Ripper>(); break;
    default: classifier = std::make_unique<NaiveBayes>(); break;
  }
  classifier->fit(data, {0, 1}, 2);
  // Majority baseline on 3 roughly equal classes is ~0.33.
  EXPECT_GT(accuracy(*classifier, data, 2), 0.6) << classifier->name();
}

INSTANTIATE_TEST_SUITE_P(AllClassifiers, ClassifierParamTest,
                         ::testing::Values(0, 1, 2));

}  // namespace
}  // namespace xfa
