// Equivalence tests for the detection-pipeline hot paths: the column-major
// DatasetView fit, the allocation-free predict_dist_into scoring path, and
// the block-parallel score_all must all be bit-identical to the simple
// row-major / allocating / serial formulations they replaced.
#include <gtest/gtest.h>

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "cfa/model.h"
#include "exec/thread_pool.h"
#include "ml/c45.h"
#include "ml/dataset_view.h"
#include "ml/naive_bayes.h"
#include "ml/ripper.h"
#include "sim/rng.h"

namespace xfa {
namespace {

/// Correlated discrete dataset (blocks of 4 columns sharing a base value),
/// the same shape the bench kernels use.
Dataset correlated_dataset(std::size_t rows, std::size_t columns,
                           std::uint64_t seed) {
  Dataset data;
  data.cardinality.assign(columns, 5);
  Rng rng(seed);
  for (std::size_t r = 0; r < rows; ++r) {
    std::vector<int> row(columns);
    for (std::size_t c = 0; c < columns; c += 4) {
      const int base = static_cast<int>(rng.uniform_int(5));
      for (std::size_t k = c; k < std::min(c + 4, columns); ++k)
        row[k] =
            rng.chance(0.8) ? base : static_cast<int>(rng.uniform_int(5));
    }
    data.rows.push_back(std::move(row));
  }
  return data;
}

std::vector<std::size_t> iota_columns(std::size_t n) {
  std::vector<std::size_t> columns(n);
  for (std::size_t i = 0; i < n; ++i) columns[i] = i;
  return columns;
}

ClassifierFactory factory_for(int kind) {
  switch (kind) {
    case 0:
      return [] { return std::make_unique<C45>(); };
    case 1:
      return [] { return std::make_unique<Ripper>(); };
    default:
      return [] { return std::make_unique<NaiveBayes>(); };
  }
}

std::unique_ptr<Classifier> classifier_for(int kind) {
  return factory_for(kind)();
}

/// Restores the default shared-pool size even when an assertion fails.
struct PoolGuard {
  ~PoolGuard() { resize_shared_pool(0); }
};

// -- DatasetView invariants ------------------------------------------------

TEST(DatasetViewTest, ColumnsMirrorRowMajorSource) {
  const Dataset data = correlated_dataset(64, 12, 17);
  const DatasetView view(data);
  ASSERT_EQ(view.rows(), data.rows.size());
  ASSERT_EQ(view.columns(), data.columns());
  EXPECT_EQ(&view.source(), &data);
  int max_card = 0;
  for (std::size_t c = 0; c < view.columns(); ++c) {
    EXPECT_EQ(view.cardinality(c), data.cardinality[c]);
    max_card = std::max(max_card, data.cardinality[c]);
    const auto column = view.column(c);
    ASSERT_EQ(column.size(), data.rows.size());
    for (std::size_t r = 0; r < data.rows.size(); ++r)
      EXPECT_EQ(column[r], data.rows[r][c]) << "(" << r << "," << c << ")";
  }
  EXPECT_EQ(view.max_cardinality(), max_card);
}

// -- Fit-path equivalence (row-major Dataset vs column-major view) ---------

class FamilyParamTest : public ::testing::TestWithParam<int> {};

TEST_P(FamilyParamTest, ViewFitMatchesDatasetFit) {
  const Dataset data = correlated_dataset(300, 16, 23);
  const DatasetView view(data);
  std::vector<std::size_t> features = iota_columns(16);
  features.pop_back();

  const auto via_dataset = classifier_for(GetParam());
  via_dataset->fit(data, features, 15);
  const auto via_view = classifier_for(GetParam());
  via_view->fit(view, features, 15);

  EXPECT_EQ(via_dataset->describe({}), via_view->describe({}));
  for (const auto& row : data.rows) {
    const auto a = via_dataset->predict_dist(row);
    const auto b = via_view->predict_dist(row);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t v = 0; v < a.size(); ++v)
      EXPECT_EQ(a[v], b[v]) << "class " << v;  // bitwise, not approximate
  }
}

TEST_P(FamilyParamTest, PredictDistIntoMatchesPredictDist) {
  const Dataset data = correlated_dataset(300, 16, 29);
  std::vector<std::size_t> features = iota_columns(16);
  features.pop_back();
  const auto classifier = classifier_for(GetParam());
  classifier->fit(data, features, 15);

  std::vector<double> scratch(32, -1.0);
  for (const auto& row : data.rows) {
    const std::vector<double> dist = classifier->predict_dist(row);
    const std::size_t n = classifier->predict_dist_into(row, scratch);
    ASSERT_EQ(n, dist.size());
    for (std::size_t v = 0; v < n; ++v) EXPECT_EQ(scratch[v], dist[v]);
  }
}

TEST_P(FamilyParamTest, PredictDistSpanMatchesPredictDist) {
  const Dataset data = correlated_dataset(300, 16, 29);
  std::vector<std::size_t> features = iota_columns(16);
  features.pop_back();
  const auto classifier = classifier_for(GetParam());
  classifier->fit(data, features, 15);

  // The zero-copy span (aliasing the scratch or fit-time cached state) must
  // carry exactly the doubles the allocating path returns.
  std::vector<double> scratch(32, -1.0);
  for (const auto& row : data.rows) {
    const std::vector<double> dist = classifier->predict_dist(row);
    const std::span<const double> view = classifier->predict_dist_span(row, scratch);
    ASSERT_EQ(view.size(), dist.size());
    for (std::size_t v = 0; v < view.size(); ++v) EXPECT_EQ(view[v], dist[v]);
  }
}

TEST_P(FamilyParamTest, ScoreAllBitIdenticalAcrossThreadCounts) {
  const Dataset data = correlated_dataset(200, 12, 31);
  CrossFeatureModel model;
  ASSERT_TRUE(
      model.train(data, iota_columns(12), factory_for(GetParam()), 1).ok());

  PoolGuard guard;
  resize_shared_pool(1);
  const std::vector<EventScore> serial = model.score_all(data.rows);
  resize_shared_pool(8);
  const std::vector<EventScore> parallel = model.score_all(data.rows);

  ASSERT_EQ(serial.size(), data.rows.size());
  ASSERT_EQ(parallel.size(), data.rows.size());
  for (std::size_t r = 0; r < data.rows.size(); ++r) {
    // Bitwise equality, not EXPECT_DOUBLE_EQ: the batched path promises the
    // identical summation order, so the doubles must match exactly.
    EXPECT_EQ(serial[r].avg_match_count, parallel[r].avg_match_count);
    EXPECT_EQ(serial[r].avg_probability, parallel[r].avg_probability);
    const EventScore one = model.score(data.rows[r]);
    EXPECT_EQ(serial[r].avg_match_count, one.avg_match_count);
    EXPECT_EQ(serial[r].avg_probability, one.avg_probability);
  }
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, FamilyParamTest,
                         ::testing::Values(0, 1, 2));

// -- Golden tree -----------------------------------------------------------

// Pins the exact C4.5 tree grown from a fixed seed through the DatasetView
// fit path: any accidental change to candidate evaluation order, the
// stable partition, or the pruning arithmetic shows up as a diff here
// before it can silently shift every figure downstream.
TEST(C45GoldenTest, FixedSeedTreeIsStable) {
  Dataset data;
  data.cardinality = {3, 2, 3};  // f0, noise, label
  Rng rng(5);
  for (int i = 0; i < 120; ++i) {
    const int f0 = static_cast<int>(rng.uniform_int(3));
    const int label =
        rng.chance(0.9) ? f0 : static_cast<int>(rng.uniform_int(3));
    data.rows.push_back({f0, static_cast<int>(rng.uniform_int(2)), label});
  }
  C45 tree;
  tree.fit(data, {0, 1}, 2);
  EXPECT_EQ(tree.describe({"f0", "noise"}),
            "split on f0\n"
            "  = 0: -> class 0  (40/42)\n"
            "  = 1: -> class 1  (34/37)\n"
            "  = 2: -> class 2  (38/41)\n");
}

}  // namespace
}  // namespace xfa
