#include <thread>
void spawn() {
  std::thread worker([] {});
  worker.join();
}
