#include "common/check.h"
void f(int x) { XFA_CHECK_GT(x, 0); }
