struct Mob { double position(int) const; };
struct Chan {
  Mob mobility_;
  void fan_out(int n) {
    double origin = mobility_.position(0);  // hoisted: outside any loop
    for (int i = 0; i < n; ++i) (void)origin;
  }
};
