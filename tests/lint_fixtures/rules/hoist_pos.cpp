struct Mob { double position(int) const; };
struct Chan {
  Mob mobility_;
  void fan_out(int n) {
    for (int i = 0; i < n; ++i) {
      double p = mobility_.position(i);
      (void)p;
    }
  }
};
