// Everything here is immutable, scoped, or a type — no findings.
constexpr int kLimit = 8;
const double kRatio = 0.25;
namespace demo {
enum class Mode { A, B };
struct Counters { int live = 0; };
int bump() {
  static int local_ok = 0;  // function-local static: allowed
  return ++local_ok;
}
}  // namespace demo
