// A leading comment block is fine; the first real token is the directive.
#pragma once
int guarded();
