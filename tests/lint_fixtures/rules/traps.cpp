// Trap file: every token rule's trigger text appears below, but only inside
// comments, string literals, char literals, and raw strings. A token-level
// scanner must stay silent on this file; the legacy regex scanner fired on
// most of these.
//
// srand(42); std::rand(); time(nullptr); random_device rd;
// assert(x == 1);
// std::thread t([]{});
/* block comment trap: XFA_CHECK(count++); mobility_.position(i) */

const char* kText =
    "srand(1); assert(0); std::thread worker; predict_dist(row);";
const char* kRaw = R"lint(
  for (auto& kv : unordered_map_) {}
  int global_mutable_counter;
  XFA_CHECK(total += 1);
)lint";
const char kAssert[] = "assert";
constexpr char kPlus = '+';

// The one real statement keeps the file non-trivial for the lexer.
constexpr int kAnswer = 40 + 2;
