struct Model { int predict_dist(int) const; };
int score_all(const Model& m, int n) {
  int acc = 0;
  for (int i = 0; i < n; ++i) acc += m.predict_dist(i);
  return acc;
}
