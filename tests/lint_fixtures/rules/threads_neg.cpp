// Linted as exec/pool_impl.cpp: the execution layer may own raw threads.
#include <thread>
void spawn() {
  std::thread worker([] {});
  worker.join();
}
