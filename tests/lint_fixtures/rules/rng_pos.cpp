#include <cstdlib>
void seed_badly() {
  srand(42);
  int x = std::rand();
  (void)x;
}
long stamp() { return time(nullptr); }
