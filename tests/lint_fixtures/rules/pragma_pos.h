// A header with a leading comment but no #pragma once.
int missing_guard();
