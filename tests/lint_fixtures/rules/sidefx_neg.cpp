#include "common/check.h"
void f(int count, int total) {
  XFA_CHECK_GT(count, 0);
  // A lambda capture default inside a check argument is not a mutation.
  XFA_CHECK([=] { return count + total; }() > 0);
}
