// Same trigger spellings, but this fixture is linted as sim/rng.cpp — the
// one module allowed to touch raw entropy sources.
#include <cstdlib>
void seed_centrally() { srand(42); }
