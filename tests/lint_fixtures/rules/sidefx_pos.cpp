#include "common/check.h"
void f(int count, int total) {
  XFA_CHECK(count++ > 0);
  XFA_CHECK_EQ(total += count, 1);
}
