struct Model { void predict_dist_into(int, int*) const; };
int score_all(const Model& m, int n) {
  int scratch = 0;
  for (int i = 0; i < n; ++i) m.predict_dist_into(i, &scratch);
  return scratch;
}
