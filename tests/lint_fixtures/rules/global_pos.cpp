int live_packet_count;
static double drop_ratio = 0.0;
