// No file I/O headers in this scenario TU, so contracts may abort.
#include "common/check.h"
void tick(int step) { XFA_CHECK_GE(step, 0); }
