#include <fstream>
#include "common/check.h"
void load(const char* path) {
  std::ifstream in(path);
  XFA_CHECK(in.good());
}
