#include <cstdlib>
void seeded() {
  // xfa-lint: allow(rng-determinism) fixture demonstrates suppression
  srand(7);
}
void stale() {
  // xfa-lint: allow(no-raw-assert) nothing below ever fires this rule
  int x = 0;
  (void)x;
}
