#pragma once
#include "sim/a.h"
struct B {
  int weight = 0;
};
