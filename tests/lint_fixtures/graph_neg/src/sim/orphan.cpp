#include "sim/a.h"
int orphan_weight(const A& a) { return a.weight; }
