#pragma once
#include "sim/b.h"
struct A {
  int weight = 0;
};
