#include "net/up.h"
void Up::push() { log.count += 1; }
