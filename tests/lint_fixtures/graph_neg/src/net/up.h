#pragma once
#include "audit/log.h"
#include "common/base.h"
struct Up {
  Log log;
  void push();
};
