#pragma once
struct Log {
  int count = 0;
};
