#include <unordered_map>
#include <cstdio>
void emit(const std::unordered_map<int, int>& counts) {
  for (const auto& kv : counts) std::printf("%d %d\n", kv.first, kv.second);
}
