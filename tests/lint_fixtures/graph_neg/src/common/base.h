#pragma once
struct Base {
  int id = 0;
};
