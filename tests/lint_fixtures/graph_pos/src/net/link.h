#pragma once
#include "sim/engine.h"
struct Link {
  Engine engine;
  void pump();
};
