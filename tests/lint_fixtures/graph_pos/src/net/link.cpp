#include "net/link.h"
void Link::pump() { engine.tick(); }
