#pragma once
#include "common/base.h"
struct Engine {
  Base base;
  void tick();
};
