#include "sim/engine.h"
void Engine::tick() { base.id += 1; }
