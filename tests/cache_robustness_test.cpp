// Corruption-sweep coverage for the self-healing trace cache (XFATRC3):
// no on-disk bytes — truncated, bit-flipped, or hostile — may crash or abort
// the process; every invalid artifact must end in quarantine + regeneration.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "common/crc64.h"
#include "common/env.h"
#include "scenario/cache.h"
#include "scenario/runner.h"

namespace xfa {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(is), std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

template <typename T>
void put_pod(std::string& buffer, const T& value) {
  buffer.append(reinterpret_cast<const char*>(&value), sizeof(T));
}

/// Wraps a payload in a *valid* XFATRC3 header (correct size and CRC), so a
/// test exercises the inner length-field validation rather than the checksum.
std::string with_valid_header(const std::string& payload) {
  std::string file = "XFATRC3";
  put_pod(file, static_cast<std::uint64_t>(payload.size()));
  put_pod(file, crc64(payload.data(), payload.size()));
  file += payload;
  return file;
}

ScenarioResult sample_result() {
  ScenarioResult result;
  result.trace.times = {5, 10, 15};
  result.trace.rows = {{1, 2, 3, 4}, {5, 6, 7, 8}, {9, 10, 11, 12}};
  result.summary.data_originated = 100;
  result.summary.data_delivered = 90;
  result.summary.packet_delivery_ratio = 0.9;
  result.summary.scheduler_events = 12345;
  result.summary.channel.fault_corrupted = 7;
  result.summary.monitor_audit_packets = 55;
  return result;
}

class CacheRobustnessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "xfa_cache_robustness_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    unsetenv("XFA_NO_CACHE");
    refresh_env_for_testing();
  }
  void TearDown() override {
    std::filesystem::remove_all(dir_);
    unsetenv("XFA_CACHE_DIR");
    unsetenv("XFA_NO_CACHE");
    refresh_env_for_testing();
  }

  std::string dir_;
};

TEST_F(CacheRobustnessTest, RoundTripPreservesEverything) {
  const TraceCache cache(dir_);
  const ScenarioResult stored = sample_result();
  ASSERT_TRUE(cache.store("key", stored).ok());

  const Result<ScenarioResult> loaded = cache.load("key");
  ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();
  EXPECT_EQ(loaded->trace.times, stored.trace.times);
  EXPECT_EQ(loaded->trace.rows, stored.trace.rows);
  EXPECT_EQ(loaded->summary.data_originated, 100u);
  EXPECT_EQ(loaded->summary.data_delivered, 90u);
  EXPECT_DOUBLE_EQ(loaded->summary.packet_delivery_ratio, 0.9);
  EXPECT_EQ(loaded->summary.scheduler_events, 12345u);
  EXPECT_EQ(loaded->summary.channel.fault_corrupted, 7u);
  EXPECT_EQ(loaded->summary.monitor_audit_packets, 55u);
}

TEST_F(CacheRobustnessTest, MissIsNotFoundAndQuarantinesNothing) {
  const TraceCache cache(dir_);
  const Result<ScenarioResult> missing = cache.load("never stored");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST_F(CacheRobustnessTest, DisabledCacheLoadsAndStoresNothing) {
  setenv("XFA_NO_CACHE", "1", 1);
  refresh_env_for_testing();
  const TraceCache cache(dir_);
  EXPECT_FALSE(cache.enabled());
  EXPECT_TRUE(cache.store("key", sample_result()).ok());  // silently skipped
  const Result<ScenarioResult> loaded = cache.load("key");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

// Truncation at *every* byte offset — which includes every section boundary
// (mid-magic, mid-size, mid-CRC, mid-key, mid-times, mid-rows, mid-summary) —
// must fail soft as kCorruptArtifact, quarantine the file, and leave the
// cache ready to accept a regenerated artifact.
TEST_F(CacheRobustnessTest, TruncationSweepQuarantinesEveryPrefix) {
  const TraceCache cache(dir_);
  const ScenarioResult stored = sample_result();
  ASSERT_TRUE(cache.store("key", stored).ok());
  const std::string path = cache.artifact_path("key");
  const std::string bytes = read_file(path);
  ASSERT_GT(bytes.size(), 0u);

  for (std::size_t len = 0; len < bytes.size(); ++len) {
    write_file(path, bytes.substr(0, len));
    const Result<ScenarioResult> loaded = cache.load("key");
    ASSERT_FALSE(loaded.ok()) << "prefix length " << len;
    EXPECT_EQ(loaded.status().code(), StatusCode::kCorruptArtifact)
        << "prefix length " << len << ": " << loaded.status().to_string();
    EXPECT_FALSE(std::filesystem::exists(path)) << "prefix length " << len;
    EXPECT_TRUE(std::filesystem::exists(path + ".corrupt"))
        << "prefix length " << len;
    std::filesystem::remove(path + ".corrupt");
  }

  // The store self-heals: regenerating publishes a fully valid artifact.
  ASSERT_TRUE(cache.store("key", stored).ok());
  const Result<ScenarioResult> healed = cache.load("key");
  ASSERT_TRUE(healed.ok());
  EXPECT_EQ(healed->trace.rows, stored.trace.rows);
}

// Single-byte corruption anywhere in the file — header or payload — must be
// caught (magic, size, or CRC64 check) and quarantined, never parsed.
TEST_F(CacheRobustnessTest, BitFlipSweepQuarantinesEveryByte) {
  const TraceCache cache(dir_);
  ASSERT_TRUE(cache.store("key", sample_result()).ok());
  const std::string path = cache.artifact_path("key");
  const std::string bytes = read_file(path);

  for (std::size_t pos = 0; pos < bytes.size(); ++pos) {
    std::string flipped = bytes;
    flipped[pos] = static_cast<char>(flipped[pos] ^ 0xFF);
    write_file(path, flipped);
    const Result<ScenarioResult> loaded = cache.load("key");
    ASSERT_FALSE(loaded.ok()) << "flipped byte " << pos;
    EXPECT_EQ(loaded.status().code(), StatusCode::kCorruptArtifact)
        << "flipped byte " << pos << ": " << loaded.status().to_string();
    EXPECT_TRUE(std::filesystem::exists(path + ".corrupt"))
        << "flipped byte " << pos;
    std::filesystem::remove(path + ".corrupt");
  }
}

// Hostile length fields behind a *valid* checksum: a corrupt key_size, times
// count, or rows×columns product must be rejected by bounds validation
// before it can drive an allocation or out-of-bounds read.
TEST_F(CacheRobustnessTest, HostileLengthFieldsFailSoft) {
  const TraceCache cache(dir_);
  const std::string path = cache.artifact_path("k");
  constexpr std::uint64_t kHuge = 0xFFFFFFFFFFFFFFF0ULL;

  const auto expect_corrupt = [&](const std::string& payload,
                                  const char* what) {
    write_file(path, with_valid_header(payload));
    const Result<ScenarioResult> loaded = cache.load("k");
    ASSERT_FALSE(loaded.ok()) << what;
    EXPECT_EQ(loaded.status().code(), StatusCode::kCorruptArtifact) << what;
    std::filesystem::remove(path + ".corrupt");
  };

  {  // key_size far beyond the payload
    std::string payload;
    put_pod(payload, kHuge);
    expect_corrupt(payload, "hostile key_size");
  }
  {  // times count far beyond the payload
    std::string payload;
    put_pod(payload, std::uint64_t{1});
    payload += 'k';
    put_pod(payload, kHuge);
    expect_corrupt(payload, "hostile times count");
  }
  {  // rows count far beyond the payload (columns = 1)
    std::string payload;
    put_pod(payload, std::uint64_t{1});
    payload += 'k';
    put_pod(payload, std::uint64_t{0});  // no times
    put_pod(payload, kHuge);             // rows
    put_pod(payload, std::uint64_t{1});  // columns
    expect_corrupt(payload, "hostile rows count");
  }
  {  // columns count whose rows*columns*8 product overflows any bound
    std::string payload;
    put_pod(payload, std::uint64_t{1});
    payload += 'k';
    put_pod(payload, std::uint64_t{0});  // no times
    put_pod(payload, std::uint64_t{1});  // rows
    put_pod(payload, kHuge);             // columns
    expect_corrupt(payload, "hostile columns count");
  }
  {  // zero-columns artifact claiming more empty rows than the payload size
    std::string payload;
    put_pod(payload, std::uint64_t{1});
    payload += 'k';
    put_pod(payload, std::uint64_t{0});  // no times
    put_pod(payload, kHuge);             // rows
    put_pod(payload, std::uint64_t{0});  // columns
    expect_corrupt(payload, "hostile empty-row count");
  }
}

TEST_F(CacheRobustnessTest, TrailingBytesAreCorruption) {
  const TraceCache cache(dir_);
  ASSERT_TRUE(cache.store("key", sample_result()).ok());
  const std::string path = cache.artifact_path("key");
  const std::string bytes = read_file(path);
  constexpr std::size_t kHeaderSize = 7 + 2 * sizeof(std::uint64_t);
  ASSERT_GT(bytes.size(), kHeaderSize);

  // Re-wrap the original payload plus two stray bytes with a *valid* header,
  // so only the trailing-bytes check can reject it.
  write_file(path, with_valid_header(bytes.substr(kHeaderSize) + "xx"));
  const Result<ScenarioResult> loaded = cache.load("key");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruptArtifact);
  EXPECT_TRUE(std::filesystem::exists(path + ".corrupt"));
}

TEST_F(CacheRobustnessTest, HashCollisionArtifactIsLeftIntact) {
  const TraceCache cache(dir_);
  ASSERT_TRUE(cache.store("key a", sample_result()).ok());
  // Simulate an fnv1a filename collision: a healthy artifact for "key a"
  // sitting where "key b" would live. It belongs to someone else — report a
  // miss and leave the file alone.
  const std::string path_b = cache.artifact_path("key b");
  std::filesystem::copy_file(cache.artifact_path("key a"), path_b);

  const Result<ScenarioResult> loaded = cache.load("key b");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(std::filesystem::exists(path_b));
  EXPECT_FALSE(std::filesystem::exists(path_b + ".corrupt"));
}

TEST_F(CacheRobustnessTest, StoreIntoUnwritableDirectoryFailsSoft) {
  // The cache "directory" is an existing regular file, so create_directories
  // cannot succeed; store must report kIoError and publish nothing.
  const std::string blocker = dir_ + "/not_a_directory";
  write_file(blocker, "occupied");
  const TraceCache cache(blocker);
  const Status status = cache.store("key", sample_result());
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIoError);
}

TEST_F(CacheRobustnessTest, StoreRefusesRaggedRows) {
  const TraceCache cache(dir_);
  ScenarioResult ragged = sample_result();
  ragged.trace.rows.back().pop_back();
  const Status status = cache.store("key", ragged);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(std::filesystem::exists(cache.artifact_path("key")));
}

// End-to-end self-healing: corrupting the published artifact of a real run
// must be transparent — the next run quarantines it and regenerates the
// byte-identical trace (determinism makes the comparison exact).
TEST_F(CacheRobustnessTest, PipelineRegeneratesCorruptedArtifact) {
  setenv("XFA_CACHE_DIR", dir_.c_str(), 1);
  refresh_env_for_testing();
  ScenarioConfig config;
  config.node_count = 15;
  config.duration = 150;
  config.seed = 42;
  config.traffic.max_connections = 8;

  const Result<ScenarioResult> first = run_scenario_checked(config);
  ASSERT_TRUE(first.ok()) << first.status().to_string();
  const TraceCache cache;
  const std::string path = cache.artifact_path(config.cache_key());
  ASSERT_TRUE(std::filesystem::exists(path));

  std::string bytes = read_file(path);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0xFF);
  write_file(path, bytes);

  const Result<ScenarioResult> second = run_scenario_checked(config);
  ASSERT_TRUE(second.ok()) << second.status().to_string();
  EXPECT_EQ(second->trace.rows, first->trace.rows);
  EXPECT_EQ(second->trace.times, first->trace.times);
  EXPECT_TRUE(std::filesystem::exists(path + ".corrupt"));
  // The regenerated artifact is valid again.
  const Result<ScenarioResult> reloaded = cache.load(config.cache_key());
  EXPECT_TRUE(reloaded.ok()) << reloaded.status().to_string();
}

}  // namespace
}  // namespace xfa
