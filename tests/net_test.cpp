// Unit tests: packet model, wireless channel, node plumbing.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "audit/audit.h"
#include "mobility/waypoint.h"
#include "net/channel.h"
#include "net/node.h"
#include "sim/simulator.h"

namespace xfa {
namespace {

/// A routing stub that records everything the node hands it.
class RecordingProtocol final : public RoutingProtocol {
 public:
  void send_data(Packet&& pkt) override { sent.push_back(pkt); }
  void receive(PacketPtr pkt, NodeId from) override {
    received.emplace_back(*pkt, from);
  }
  void tap(const Packet& pkt, NodeId from, NodeId to) override {
    taps.push_back({pkt, from, to});
  }
  void link_failure(const Packet& pkt, NodeId to) override {
    failures.emplace_back(pkt, to);
  }
  double average_route_length() const override { return 0; }
  std::size_t route_count() const override { return 0; }
  const char* name() const override { return "stub"; }

  std::vector<Packet> sent;
  std::vector<std::pair<Packet, NodeId>> received;
  struct Tap {
    Packet pkt;
    NodeId from, to;
  };
  std::vector<Tap> taps;
  std::vector<std::pair<Packet, NodeId>> failures;
};

ChannelConfig no_jitter() {
  ChannelConfig config;
  config.max_jitter_s = 0;
  return config;
}

/// Test rig: N nodes with recording protocols on a field small enough that
/// everyone is in radio range (or huge, so that nobody is).
struct Rig {
  Rig(std::size_t n, double field, ChannelConfig config = no_jitter(),
      std::uint64_t seed = 1)
      : sim(seed),
        mobility(n, make_mobility(field), Rng(seed)),
        channel(sim, mobility, config) {
    for (std::size_t i = 0; i < n; ++i) {
      nodes.push_back(
          std::make_unique<Node>(sim, channel, static_cast<NodeId>(i)));
      channel.register_node(*nodes.back());
      auto protocol = std::make_unique<RecordingProtocol>();
      protocols.push_back(protocol.get());
      nodes.back()->set_routing(std::move(protocol));
    }
  }
  static MobilityConfig make_mobility(double field) {
    MobilityConfig config;
    config.field_width = field;
    config.field_height = field;
    return config;
  }

  Simulator sim;
  RandomWaypointMobility mobility;
  Channel channel;
  std::vector<std::unique_ptr<Node>> nodes;
  std::vector<RecordingProtocol*> protocols;
};

TEST(PacketTest, DescribeIsHumanReadable) {
  Packet pkt;
  pkt.kind = PacketKind::RouteRequest;
  pkt.src = 3;
  pkt.dst = kBroadcast;
  pkt.uid = 9;
  pkt.ttl = 12;
  EXPECT_EQ(pkt.describe(), "RREQ 3->* uid=9 ttl=12");
}

TEST(PacketTest, KindNames) {
  EXPECT_STREQ(to_string(PacketKind::Data), "DATA");
  EXPECT_STREQ(to_string(PacketKind::Hello), "HELLO");
}

TEST(ChannelTest, BroadcastReachesAllNodesInSmallField) {
  Rig rig(4, 10.0);
  Packet pkt;
  pkt.kind = PacketKind::Hello;
  pkt.src = 0;
  pkt.dst = kBroadcast;
  rig.channel.transmit(0, pkt, kBroadcast);
  rig.sim.run();

  EXPECT_TRUE(rig.protocols[0]->received.empty());  // no self-delivery
  for (std::size_t i = 1; i < 4; ++i) {
    ASSERT_EQ(rig.protocols[i]->received.size(), 1u);
    EXPECT_EQ(rig.protocols[i]->received[0].second, 0);
  }
  EXPECT_EQ(rig.channel.stats().deliveries, 3u);
}

TEST(ChannelTest, OutOfRangeNodesGetNothing) {
  Rig rig(2, 100000.0, no_jitter(), /*seed=*/3);
  ASSERT_FALSE(rig.channel.in_range(0, 1));  // sanity for this seed
  Packet pkt;
  pkt.src = 0;
  pkt.dst = kBroadcast;
  rig.channel.transmit(0, pkt, kBroadcast);
  rig.sim.run();
  EXPECT_TRUE(rig.protocols[1]->received.empty());
}

TEST(ChannelTest, NeighborsMatchesInRange) {
  Rig rig(5, 10.0);
  const auto neighbors = rig.channel.neighbors(0);
  EXPECT_EQ(neighbors.size(), 4u);
}

TEST(ChannelTest, UnicastTapsOtherNodes) {
  Rig rig(3, 10.0);
  Packet pkt;
  pkt.kind = PacketKind::Data;
  pkt.src = 0;
  pkt.dst = 1;
  rig.channel.transmit(0, pkt, 1);
  rig.sim.run();
  EXPECT_EQ(rig.protocols[1]->received.size(), 1u);
  ASSERT_EQ(rig.protocols[2]->taps.size(), 1u);
  EXPECT_EQ(rig.protocols[2]->taps[0].to, 1);
}

TEST(ChannelTest, FailedUnicastTriggersLinkFailure) {
  Rig rig(2, 10.0);
  Packet pkt;
  pkt.kind = PacketKind::Data;
  pkt.src = 0;
  pkt.dst = 2;
  rig.channel.transmit(0, pkt, 99);  // no such node in range
  rig.sim.run();
  ASSERT_EQ(rig.protocols[0]->failures.size(), 1u);
  EXPECT_EQ(rig.protocols[0]->failures[0].second, 99);
  EXPECT_EQ(rig.channel.stats().unicast_failures, 1u);
}

TEST(ChannelTest, TapsCanBeDisabled) {
  ChannelConfig config = no_jitter();
  config.promiscuous_taps = false;
  Rig rig(3, 10.0, config);
  Packet pkt;
  pkt.src = 0;
  pkt.dst = 1;
  rig.channel.transmit(0, pkt, 1);
  rig.sim.run();
  EXPECT_TRUE(rig.protocols[2]->taps.empty());
  EXPECT_EQ(rig.channel.stats().taps, 0u);
}

TEST(ChannelTest, LossRateDropsSomeDeliveries) {
  ChannelConfig config = no_jitter();
  config.loss_rate = 0.5;
  Rig rig(2, 10.0, config);
  for (int i = 0; i < 200; ++i) {
    Packet pkt;
    pkt.src = 0;
    pkt.dst = kBroadcast;
    rig.channel.transmit(0, pkt, kBroadcast);
  }
  rig.sim.run();
  const auto received = rig.protocols[1]->received.size();
  EXPECT_GT(received, 50u);
  EXPECT_LT(received, 150u);
  EXPECT_EQ(rig.channel.stats().random_losses, 200 - received);
}

TEST(ChannelTest, TransmissionDelayScalesWithSize) {
  Rig rig(2, 10.0);
  Packet small, large;
  small.src = large.src = 0;
  small.dst = large.dst = kBroadcast;
  small.size_bytes = 64;
  large.size_bytes = 6400;
  SimTime small_at = -1, large_at = -1;
  rig.channel.transmit(0, large, kBroadcast);
  rig.sim.run();
  large_at = rig.sim.now();
  Rig rig2(2, 10.0);
  rig2.channel.transmit(0, small, kBroadcast);
  rig2.sim.run();
  small_at = rig2.sim.now();
  EXPECT_GT(large_at, small_at);
  // 2 Mb/s: 64 B = 256 us.
  EXPECT_NEAR(small_at, 64 * 8 / 2e6, 1e-9);
}

TEST(ChannelTest, UidAssignedOnTransmit) {
  Rig rig(2, 10.0);
  Packet a, b;
  a.src = b.src = 0;
  a.dst = b.dst = kBroadcast;
  rig.channel.transmit(0, a, kBroadcast);
  rig.channel.transmit(0, b, kBroadcast);
  rig.sim.run();
  ASSERT_EQ(rig.protocols[1]->received.size(), 2u);
  EXPECT_NE(rig.protocols[1]->received[0].first.uid,
            rig.protocols[1]->received[1].first.uid);
  EXPECT_NE(rig.protocols[1]->received[0].first.uid, 0u);
}

TEST(NodeTest, SendDataLogsAuditAndRoutesToProtocol) {
  Rig rig(1, 10.0);
  Node& node = *rig.nodes[0];
  AuditLog log;
  node.attach_audit(&log);
  node.send_data(5, 1, 0, 512, false);
  ASSERT_EQ(rig.protocols[0]->sent.size(), 1u);
  EXPECT_EQ(rig.protocols[0]->sent[0].dst, 5);
  EXPECT_EQ(log.packet_times(AuditPacketType::Data, FlowDirection::Sent)
                .size(),
            1u);
  EXPECT_EQ(node.data_originated(), 1u);
}

TEST(NodeTest, DeliverToTransportInvokesSink) {
  Rig rig(1, 10.0);
  Node& node = *rig.nodes[0];
  AuditLog log;
  node.attach_audit(&log);

  struct CountingSink final : TransportSink {
    void deliver(const Packet&) override { ++count; }
    int count = 0;
  } sink;
  node.register_sink(7, &sink);

  Packet pkt;
  pkt.kind = PacketKind::Data;
  pkt.flow_id = 7;
  pkt.dst = 0;
  node.deliver_to_transport(pkt);
  EXPECT_EQ(sink.count, 1);
  EXPECT_EQ(node.data_delivered(), 1u);
  EXPECT_EQ(log.packet_times(AuditPacketType::Data, FlowDirection::Received)
                .size(),
            1u);
}

TEST(NodeTest, ForwardFiltersCompose) {
  Rig rig(1, 10.0);
  Node& node = *rig.nodes[0];
  node.add_forward_filter([](const Packet& pkt) { return pkt.dst == 3; });
  node.add_forward_filter([](const Packet& pkt) { return pkt.flow_id == 9; });

  Packet to3;
  to3.dst = 3;
  Packet flow9;
  flow9.dst = 5;
  flow9.flow_id = 9;
  Packet clean;
  clean.dst = 5;
  EXPECT_TRUE(node.should_maliciously_drop(to3));
  EXPECT_TRUE(node.should_maliciously_drop(flow9));
  EXPECT_FALSE(node.should_maliciously_drop(clean));
}

TEST(NodeTest, AuditDisabledByDefault) {
  Rig rig(1, 10.0);
  Node& node = *rig.nodes[0];
  EXPECT_FALSE(node.audit_enabled());
  // With no sink attached, observations are dropped, not stored.
  node.log_packet(AuditPacketType::Data, FlowDirection::Sent);
  node.log_route_event(RouteEventKind::Add);
  AuditLog log;
  node.attach_audit(&log);
  EXPECT_TRUE(node.audit_enabled());
  EXPECT_EQ(log.total_packet_records(), 0u);
  EXPECT_EQ(log.total_route_events(), 0u);
}

}  // namespace
}  // namespace xfa
