// Integration tests: the whole pipeline — simulate, extract, discretize,
// train cross-feature sub-models, threshold, detect — on reduced-scale
// scenarios (small field/durations so the suite stays fast).
#include <gtest/gtest.h>

#include "eval/pr.h"
#include "scenario/pipeline.h"

namespace xfa {
namespace {

/// Reduced-scale experiment: 800 s traces, attacks from 200 s / 400 s.
ExperimentOptions small_options() {
  ExperimentOptions options;
  options.duration = 800;
  options.normal_eval_traces = 2;
  options.abnormal_traces = 1;
  options.attacks = mixed_attacks(/*session=*/100);
  options.attacks[0].schedule.start = 200;
  options.attacks[1].schedule.start = 400;
  options.base_seed = 9000;
  return options;
}

struct PipelineResult {
  double normal_mean = 0;
  double attack_mean = 0;
  double auc_above_diagonal = 0;
  double far_at_threshold = 0;
  double detection_at_threshold = 0;
};

PipelineResult run_pipeline(RoutingKind routing, TransportKind transport,
                            const ClassifierFactory& factory) {
  const ExperimentData data =
      gather_experiment(routing, transport, small_options());
  DetectorOptions options;
  options.threads = 1;
  const Detector detector = train_detector(data.train_normal, factory,
                                           options, &data.normal_eval[0]);

  PipelineResult result;
  std::vector<double> scores;
  std::vector<int> labels;
  std::size_t n = 0, fa = 0;
  for (const EventScore& s : detector.score_trace(data.normal_eval[1])) {
    result.normal_mean += s.avg_probability;
    scores.push_back(s.avg_probability);
    labels.push_back(0);
    ++n;
    if (s.avg_probability < detector.threshold_probability) ++fa;
  }
  result.normal_mean /= static_cast<double>(n);
  result.far_at_threshold = static_cast<double>(fa) / static_cast<double>(n);

  const auto attack_scores = detector.score_trace(data.abnormal[0]);
  std::size_t positives = 0, detected = 0;
  double attack_sum = 0;
  for (std::size_t i = 0; i < attack_scores.size(); ++i) {
    const double s = attack_scores[i].avg_probability;
    scores.push_back(s);
    labels.push_back(data.abnormal[0].labels[i]);
    if (data.abnormal[0].labels[i] != 0) {
      attack_sum += s;
      ++positives;
      if (s < detector.threshold_probability) ++detected;
    }
  }
  result.attack_mean = attack_sum / static_cast<double>(positives);
  result.detection_at_threshold =
      static_cast<double>(detected) / static_cast<double>(positives);
  result.auc_above_diagonal =
      recall_precision_curve(scores, labels).area_above_diagonal();
  return result;
}

TEST(Integration, AodvUdpC45DetectsMixedAttacks) {
  const PipelineResult r =
      run_pipeline(RoutingKind::Aodv, TransportKind::Udp, make_c45_factory());
  // Shape, not absolute numbers: attacked windows score clearly below fresh
  // normal windows and the detector is much better than random guessing.
  EXPECT_GT(r.normal_mean, r.attack_mean + 0.02);
  EXPECT_GT(r.auc_above_diagonal, 0.1);
  EXPECT_GT(r.detection_at_threshold, r.far_at_threshold);
}

TEST(Integration, DsrUdpC45SeparatesAttackWindows) {
  // DSR is the paper's harder case, and at this reduced scale (160 training
  // rows) only the mean separation is a stable expectation; the full-scale
  // AUC comparison lives in bench/fig1_recall_precision.
  const PipelineResult r =
      run_pipeline(RoutingKind::Dsr, TransportKind::Udp, make_c45_factory());
  EXPECT_GT(r.normal_mean, r.attack_mean);
}

TEST(Integration, ThresholdCalibrationBoundsFalseAlarms) {
  const ExperimentData data =
      gather_experiment(RoutingKind::Aodv, TransportKind::Udp,
                        small_options());
  DetectorOptions options;
  options.threads = 1;
  options.false_alarm_rate = 0.05;
  const Detector detector =
      train_detector(data.train_normal, make_c45_factory(), options,
                     &data.normal_eval[0]);
  // On the calibration trace itself, the realized FAR matches the target.
  std::size_t fa = 0, n = 0;
  for (const EventScore& s : detector.score_trace(data.normal_eval[0])) {
    ++n;
    if (s.avg_probability < detector.threshold_probability) ++fa;
  }
  EXPECT_NEAR(static_cast<double>(fa) / static_cast<double>(n), 0.05, 0.02);
}

TEST(Integration, DetectorScoresAreReproducible) {
  const ExperimentData data = gather_experiment(
      RoutingKind::Aodv, TransportKind::Udp, small_options());
  DetectorOptions options;
  options.threads = 1;
  const Detector a =
      train_detector(data.train_normal, make_c45_factory(), options);
  const Detector b =
      train_detector(data.train_normal, make_c45_factory(), options);
  const auto sa = a.score_trace(data.abnormal[0]);
  const auto sb = b.score_trace(data.abnormal[0]);
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_DOUBLE_EQ(sa[i].avg_probability, sb[i].avg_probability);
    EXPECT_DOUBLE_EQ(sa[i].avg_match_count, sb[i].avg_match_count);
  }
}

TEST(Integration, PeriodRestrictedDetectorStillWorks) {
  const ExperimentData data = gather_experiment(
      RoutingKind::Aodv, TransportKind::Udp, small_options());
  DetectorOptions options;
  options.threads = 1;
  options.periods = {5.0};  // ablation B slice
  const Detector detector =
      train_detector(data.train_normal, make_c45_factory(), options);
  // Set I (8 classifiable topology features) + 44 five-second features,
  // minus whatever columns were constant over this short trace (skipped by
  // graceful degradation and recorded on the model).
  EXPECT_EQ(detector.model.submodel_count() +
                detector.model.skipped_columns().size(),
            52u);
  EXPECT_GT(detector.model.submodel_count(), 26u);  // majority survives
  const auto scores = detector.score_trace(data.abnormal[0]);
  EXPECT_EQ(scores.size(), data.abnormal[0].size());
}

TEST(Integration, RegressionVariantSeparatesAttackTrace) {
  const ExperimentData data = gather_experiment(
      RoutingKind::Aodv, TransportKind::Udp, small_options());
  // Continuous extension: linear-regression sub-models over raw features.
  const FeatureSchema schema = FeatureSchema::standard();
  CrossFeatureRegressionModel model;
  model.train(data.train_normal.rows, schema.classifiable_columns());
  double normal_mean = 0, attack_mean = 0;
  std::size_t attack_n = 0;
  for (const auto& row : data.normal_eval[1].rows)
    normal_mean += model.mean_log_distance(row);
  normal_mean /= static_cast<double>(data.normal_eval[1].size());
  for (std::size_t i = 0; i < data.abnormal[0].size(); ++i) {
    if (data.abnormal[0].labels[i] != 0) {
      attack_mean += model.mean_log_distance(data.abnormal[0].rows[i]);
      ++attack_n;
    }
  }
  attack_mean /= static_cast<double>(attack_n);
  // Higher log distance = more anomalous.
  EXPECT_GT(attack_mean, normal_mean);
}

}  // namespace
}  // namespace xfa
