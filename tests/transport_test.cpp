// Unit tests: traffic generator, CBR, simplified TCP.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "mobility/static.h"
#include "net/channel.h"
#include "net/node.h"
#include "routing/aodv/aodv.h"
#include "sim/simulator.h"
#include "transport/cbr.h"
#include "transport/tcp.h"
#include "transport/traffic.h"

namespace xfa {
namespace {

TEST(TrafficGen, RespectsMaxConnections) {
  Rng rng(1);
  TrafficConfig config;
  config.max_connections = 10;
  const auto flows = generate_connection_pattern(50, config, rng);
  EXPECT_EQ(flows.size(), 10u);
}

TEST(TrafficGen, CapsAtPairSpace) {
  Rng rng(1);
  TrafficConfig config;
  config.max_connections = 100;
  const auto flows = generate_connection_pattern(3, config, rng);
  EXPECT_EQ(flows.size(), 6u);  // 3*2 ordered pairs
}

TEST(TrafficGen, NoSelfFlowsAndUniquePairs) {
  Rng rng(5);
  TrafficConfig config;
  config.max_connections = 100;
  const auto flows = generate_connection_pattern(20, config, rng);
  std::set<std::pair<NodeId, NodeId>> seen;
  for (const Flow& flow : flows) {
    EXPECT_NE(flow.src, flow.dst);
    EXPECT_GE(flow.src, 0);
    EXPECT_LT(flow.src, 20);
    EXPECT_TRUE(seen.emplace(flow.src, flow.dst).second);
    EXPECT_GE(flow.start, 0.0);
    EXPECT_LE(flow.start, config.start_window);
  }
}

TEST(TrafficGen, DeterministicGivenSeed) {
  TrafficConfig config;
  config.max_connections = 20;
  Rng a(9), b(9);
  const auto fa = generate_connection_pattern(30, config, a);
  const auto fb = generate_connection_pattern(30, config, b);
  ASSERT_EQ(fa.size(), fb.size());
  for (std::size_t i = 0; i < fa.size(); ++i) {
    EXPECT_EQ(fa[i].src, fb[i].src);
    EXPECT_EQ(fa[i].dst, fb[i].dst);
    EXPECT_DOUBLE_EQ(fa[i].start, fb[i].start);
  }
}

TEST(TrafficGen, FlowIdsAreUnique) {
  Rng rng(2);
  TrafficConfig config;
  config.max_connections = 40;
  const auto flows = generate_connection_pattern(30, config, rng);
  std::set<std::uint32_t> ids;
  for (const Flow& flow : flows) EXPECT_TRUE(ids.insert(flow.flow_id).second);
}

// --- Rig with AODV routing over a short chain. ---------------------------

struct TransportRig {
  explicit TransportRig(std::size_t n, double spacing = 200)
      : sim(21), mobility(StaticPositions::line(n, spacing)) {
    ChannelConfig config;
    config.max_jitter_s = 0.0005;
    config.promiscuous_taps = false;
    channel = std::make_unique<Channel>(sim, mobility, config);
    for (NodeId i = 0; i < static_cast<NodeId>(n); ++i) {
      nodes.push_back(std::make_unique<Node>(sim, *channel, i));
      channel->register_node(*nodes.back());
      nodes.back()->set_routing(std::make_unique<Aodv>(*nodes.back()));
      nodes.back()->routing().start();
    }
  }
  Node& node(NodeId id) { return *nodes[static_cast<std::size_t>(id)]; }

  Simulator sim;
  StaticPositions mobility;
  std::unique_ptr<Channel> channel;
  std::vector<std::unique_ptr<Node>> nodes;
};

TEST(CbrTest, SendsAtConfiguredRate) {
  TransportRig rig(2, 100);
  CbrSink sink(rig.node(1), 1);
  CbrSource source(rig.node(0), 1, 1, /*rate_pps=*/2.0, 512, /*start=*/0.0,
                   /*stop=*/50.0);
  rig.sim.run_until(60.0);
  // ~2 pps for 50 s = ~100 packets (±jitter).
  EXPECT_GE(source.packets_sent(), 95u);
  EXPECT_LE(source.packets_sent(), 105u);
  EXPECT_EQ(sink.packets_received(), source.packets_sent());
}

TEST(CbrTest, StopsAtStopTime) {
  TransportRig rig(2, 100);
  CbrSink sink(rig.node(1), 1);
  CbrSource source(rig.node(0), 1, 1, 1.0, 512, 0.0, 10.0);
  rig.sim.run_until(100.0);
  EXPECT_LE(source.packets_sent(), 11u);
}

TEST(TcpTest, TransfersInOrderOverChain) {
  TransportRig rig(3, 200);
  TcpConfig config;
  config.app_rate_pps = 5.0;
  TcpSink sink(rig.node(2), 1, /*peer=*/0, config);
  TcpSource source(rig.node(0), 2, 1, /*start=*/1.0, config);
  rig.sim.run_until(61.0);
  // ~5 segments/s for 60 s: expect substantial progress, all in order.
  EXPECT_GT(sink.next_expected(), 200u);
  EXPECT_EQ(source.snd_una(), sink.next_expected());
}

TEST(TcpTest, RecoversFromLinkOutage) {
  TransportRig rig(3, 200);
  TcpConfig config;
  config.app_rate_pps = 5.0;
  TcpSink sink(rig.node(2), 1, 0, config);
  TcpSource source(rig.node(0), 2, 1, 1.0, config);
  rig.sim.run_until(20.0);
  const auto before = sink.next_expected();
  EXPECT_GT(before, 0u);

  // Outage: receiver vanishes for a while, then returns.
  rig.mobility.move(2, {10000, 10000});
  rig.sim.run_until(60.0);
  rig.mobility.move(2, {400, 0});
  rig.sim.run_until(180.0);
  EXPECT_GT(sink.next_expected(), before)
      << "TCP must resume after the route heals";
  EXPECT_EQ(source.snd_una(), sink.next_expected());
}

TEST(TcpTest, LossyChannelStillMakesProgress) {
  Simulator sim(3);
  StaticPositions mobility = StaticPositions::line(2, 100);
  ChannelConfig channel_config;
  channel_config.loss_rate = 0.2;
  channel_config.max_jitter_s = 0.0005;
  Channel channel(sim, mobility, channel_config);
  std::vector<std::unique_ptr<Node>> nodes;
  for (NodeId i = 0; i < 2; ++i) {
    nodes.push_back(std::make_unique<Node>(sim, channel, i));
    channel.register_node(*nodes.back());
    nodes.back()->set_routing(std::make_unique<Aodv>(*nodes.back()));
    nodes.back()->routing().start();
  }
  TcpConfig config;
  config.app_rate_pps = 2.0;
  TcpSink sink(*nodes[1], 1, 0, config);
  TcpSource source(*nodes[0], 1, 1, 1.0, config);
  sim.run_until(120.0);
  EXPECT_GT(sink.next_expected(), 50u);
}

TEST(TcpTest, CwndGrowsFromSlowStart) {
  TransportRig rig(2, 100);
  TcpConfig config;
  config.app_rate_pps = 50.0;  // enough app data to fill the window
  TcpSink sink(rig.node(1), 1, 0, config);
  TcpSource source(rig.node(0), 1, 1, 0.5, config);
  rig.sim.run_until(30.0);
  EXPECT_GT(source.cwnd(), config.initial_cwnd);
}

}  // namespace
}  // namespace xfa
