// Unit tests: shared routing-agent utilities (send buffer, flood-id cache,
// routing stats printer).
#include <gtest/gtest.h>

#include <sstream>

#include "routing/route_events.h"

namespace xfa {
namespace {

Packet data_packet(NodeId dst, std::uint32_t seq) {
  Packet pkt;
  pkt.kind = PacketKind::Data;
  pkt.dst = dst;
  pkt.seq = seq;
  return pkt;
}

TEST(SendBuffer, TakeReturnsFifoOrder) {
  SendBuffer buffer;
  for (std::uint32_t s = 0; s < 5; ++s)
    EXPECT_TRUE(buffer.push(data_packet(7, s)));
  EXPECT_TRUE(buffer.has_packets_for(7));
  EXPECT_EQ(buffer.size_for(7), 5u);
  const auto taken = buffer.take(7);
  ASSERT_EQ(taken.size(), 5u);
  for (std::uint32_t s = 0; s < 5; ++s) EXPECT_EQ(taken[s].seq, s);
  EXPECT_FALSE(buffer.has_packets_for(7));
}

TEST(SendBuffer, PerDestinationIsolation) {
  SendBuffer buffer;
  buffer.push(data_packet(1, 0));
  buffer.push(data_packet(2, 1));
  EXPECT_EQ(buffer.size_for(1), 1u);
  EXPECT_EQ(buffer.size_for(2), 1u);
  EXPECT_EQ(buffer.take(1).size(), 1u);
  EXPECT_TRUE(buffer.has_packets_for(2));
}

TEST(SendBuffer, OverflowDropsOldest) {
  SendBuffer buffer(/*max_per_dst=*/3);
  for (std::uint32_t s = 0; s < 3; ++s)
    EXPECT_TRUE(buffer.push(data_packet(9, s)));
  EXPECT_FALSE(buffer.push(data_packet(9, 3)));  // overflow signalled
  const auto taken = buffer.take(9);
  ASSERT_EQ(taken.size(), 3u);
  EXPECT_EQ(taken.front().seq, 1u);  // seq 0 was evicted
  EXPECT_EQ(taken.back().seq, 3u);
}

TEST(SendBuffer, TakeOnEmptyDestination) {
  SendBuffer buffer;
  EXPECT_TRUE(buffer.take(42).empty());
  EXPECT_EQ(buffer.size_for(42), 0u);
}

TEST(FloodIdCache, FirstSightingIsFresh) {
  FloodIdCache cache;
  EXPECT_FALSE(cache.seen_before(3, 7, 0.0));
  EXPECT_TRUE(cache.seen_before(3, 7, 1.0));
}

TEST(FloodIdCache, DistinctOriginsAndIdsAreIndependent) {
  FloodIdCache cache;
  EXPECT_FALSE(cache.seen_before(3, 7, 0.0));
  EXPECT_FALSE(cache.seen_before(4, 7, 0.0));  // same id, other origin
  EXPECT_FALSE(cache.seen_before(3, 8, 0.0));  // same origin, other id
}

TEST(FloodIdCache, EntriesExpire) {
  FloodIdCache cache(/*ttl=*/10.0);
  EXPECT_FALSE(cache.seen_before(3, 7, 0.0));
  EXPECT_TRUE(cache.seen_before(3, 7, 5.0));    // refreshed to 15
  EXPECT_FALSE(cache.seen_before(3, 7, 20.0));  // expired: fresh again
}

TEST(FloodIdCache, NegativeNodeIdsHashDistinctly) {
  FloodIdCache cache;
  // Forged floods use origin ids in the normal range but phantom targets
  // elsewhere; make sure the packed 64-bit key keeps ids apart.
  EXPECT_FALSE(cache.seen_before(100000, 1, 0.0));
  EXPECT_FALSE(cache.seen_before(0, 1, 0.0));
  EXPECT_TRUE(cache.seen_before(100000, 1, 0.0));
}

TEST(RoutingStats, PrinterIncludesCounters) {
  RoutingStats stats;
  stats.discoveries_started = 4;
  stats.data_forwarded = 99;
  stats.rerr_sent = 2;
  std::ostringstream os;
  os << stats;
  EXPECT_NE(os.str().find("discoveries=4"), std::string::npos);
  EXPECT_NE(os.str().find("fwd=99"), std::string::npos);
  EXPECT_NE(os.str().find("rerr=2"), std::string::npos);
}

}  // namespace
}  // namespace xfa
