// Unit tests: cross-feature analysis core (Algorithms 1-3), thresholds,
// and the paper's 2-node illustrative example (§3, Tables 1-3).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>

#include "cfa/model.h"
#include "cfa/threshold.h"
#include "ml/c45.h"
#include "ml/naive_bayes.h"
#include "ml/ripper.h"
#include "sim/rng.h"

namespace xfa {
namespace {

ClassifierFactory nbc() {
  return [] { return std::make_unique<NaiveBayes>(); };
}
ClassifierFactory c45() {
  return [] {
    C45Config config;
    config.min_split_samples = 2;
    return std::make_unique<C45>(config);
  };
}

/// Table 1: the complete set of normal events {Reachable?, Delivered?,
/// Cached?} in the 2-node example.
Dataset table1() {
  Dataset data;
  data.cardinality = {2, 2, 2};
  data.rows = {{1, 1, 1}, {1, 0, 0}, {0, 0, 1}, {0, 0, 0}};
  return data;
}

bool is_normal_event(int r, int d, int c) {
  return (r == 1 && d == 1 && c == 1) || (r == 1 && d == 0 && c == 0) ||
         (r == 0 && d == 0);
}

TEST(CrossFeature, TrainsOneSubmodelPerLabelColumn) {
  CrossFeatureModel model;
  model.train(table1(), {0, 1, 2}, nbc(), 1);
  EXPECT_EQ(model.submodel_count(), 3u);
  EXPECT_EQ(model.label_column_of(1), 1u);
  EXPECT_TRUE(model.trained());
}

TEST(CrossFeature, TwoNodeExampleSeparatesNormalFromAbnormal) {
  // The paper's Table 3 conclusion: with threshold 0.5, average probability
  // separates all 8 events correctly (match count has one false alarm).
  CrossFeatureModel model;
  model.train(table1(), {0, 1, 2}, nbc(), 1);
  for (int r = 0; r < 2; ++r) {
    for (int d = 0; d < 2; ++d) {
      for (int c = 0; c < 2; ++c) {
        const EventScore score = model.score({r, d, c});
        if (is_normal_event(r, d, c)) {
          EXPECT_GE(score.avg_probability, 0.5)
              << "normal event (" << r << "," << d << "," << c << ")";
        } else {
          EXPECT_LT(score.avg_probability, 0.5)
              << "abnormal event (" << r << "," << d << "," << c << ")";
        }
      }
    }
  }
}

TEST(CrossFeature, NormalEventsScoreHigherThanAbnormal) {
  CrossFeatureModel model;
  model.train(table1(), {0, 1, 2}, nbc(), 1);
  double min_normal = 1.0, max_abnormal = 0.0;
  for (int r = 0; r < 2; ++r)
    for (int d = 0; d < 2; ++d)
      for (int c = 0; c < 2; ++c) {
        const double p = model.score({r, d, c}).avg_probability;
        if (is_normal_event(r, d, c))
          min_normal = std::min(min_normal, p);
        else
          max_abnormal = std::max(max_abnormal, p);
      }
  EXPECT_GT(min_normal, max_abnormal);
}

TEST(CrossFeature, MatchCountIsFractionOfAgreeingSubmodels) {
  CrossFeatureModel model;
  model.train(table1(), {0, 1, 2}, nbc(), 1);
  const EventScore score = model.score({1, 1, 1});
  // Match count is k/3 for integer k.
  const double k = score.avg_match_count * 3.0;
  EXPECT_NEAR(k, std::round(k), 1e-9);
  EXPECT_GE(score.avg_match_count, 0.0);
  EXPECT_LE(score.avg_match_count, 1.0);
}

TEST(CrossFeature, ScoresBoundedInUnitInterval) {
  Rng rng(5);
  Dataset data;
  data.cardinality = {3, 3, 3, 3};
  for (int i = 0; i < 100; ++i) {
    const int base = static_cast<int>(rng.uniform_int(3));
    data.rows.push_back({base, base, (base + 1) % 3,
                         static_cast<int>(rng.uniform_int(3))});
  }
  CrossFeatureModel model;
  model.train(data, {0, 1, 2, 3}, c45(), 1);
  for (int a = 0; a < 3; ++a)
    for (int b = 0; b < 3; ++b) {
      const EventScore score = model.score({a, b, a, b});
      EXPECT_GE(score.avg_probability, 0.0);
      EXPECT_LE(score.avg_probability, 1.0);
      EXPECT_GE(score.avg_match_count, 0.0);
      EXPECT_LE(score.avg_match_count, 1.0);
    }
}

TEST(CrossFeature, CorrelatedFeaturesDetectBrokenCorrelation) {
  // Three perfectly correlated features + one independent: breaking the
  // correlation must lower both scores.
  Rng rng(7);
  Dataset data;
  data.cardinality = {4, 4, 4, 2};
  for (int i = 0; i < 400; ++i) {
    const int v = static_cast<int>(rng.uniform_int(4));
    data.rows.push_back(
        {v, v, 3 - v, static_cast<int>(rng.uniform_int(2))});
  }
  CrossFeatureModel model;
  model.train(data, {0, 1, 2, 3}, c45(), 1);
  const EventScore normal = model.score({2, 2, 1, 0});
  const EventScore broken = model.score({2, 0, 3, 0});
  EXPECT_GT(normal.avg_probability, broken.avg_probability);
  EXPECT_GT(normal.avg_match_count, broken.avg_match_count);
}

TEST(CrossFeature, ParallelTrainingMatchesSerial) {
  Rng rng(9);
  Dataset data;
  data.cardinality = {3, 3, 3, 3, 3};
  for (int i = 0; i < 200; ++i) {
    const int v = static_cast<int>(rng.uniform_int(3));
    data.rows.push_back({v, (v + 1) % 3, v, static_cast<int>(
        rng.uniform_int(3)), (v + 2) % 3});
  }
  CrossFeatureModel serial, parallel;
  const std::vector<std::size_t> columns = {0, 1, 2, 3, 4};
  serial.train(data, columns, c45(), 1);
  parallel.train(data, columns, c45(), 4);
  for (const auto& row : data.rows) {
    const EventScore a = serial.score(row);
    const EventScore b = parallel.score(row);
    EXPECT_DOUBLE_EQ(a.avg_probability, b.avg_probability);
    EXPECT_DOUBLE_EQ(a.avg_match_count, b.avg_match_count);
  }
}

TEST(CrossFeature, ScoreAllMatchesScore) {
  const Dataset data = table1();
  CrossFeatureModel model;
  model.train(data, {0, 1, 2}, nbc(), 1);
  const auto scores = model.score_all(data.rows);
  ASSERT_EQ(scores.size(), data.rows.size());
  for (std::size_t i = 0; i < data.rows.size(); ++i)
    EXPECT_DOUBLE_EQ(scores[i].avg_probability,
                     model.score(data.rows[i]).avg_probability);
}

TEST(CrossFeatureRegression, LearnsLinearCorrelations) {
  // f1 = 2*f0, f2 = f0 + 10; an event violating this scores worse.
  std::vector<std::vector<double>> rows;
  Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    const double v = rng.uniform(1, 50);
    rows.push_back({v, 2 * v, v + 10});
  }
  CrossFeatureRegressionModel model;
  model.train(rows, {0, 1, 2});
  const double normal = model.score({20, 40, 30});
  const double broken = model.score({20, 5, 45});
  EXPECT_GT(normal, broken);
  EXPECT_LE(normal, 1.0);
  EXPECT_GT(model.mean_log_distance({20, 5, 45}),
            model.mean_log_distance({20, 40, 30}));
}

TEST(CrossFeature, ConstantLabelColumnIsSkippedAndRenormalized) {
  // A constant feature (e.g. permanently-zero HELLO counts in DSR
  // scenarios, or counters frozen by benign loss bursts) admits no
  // discriminative sub-model: training skips it, records it, and the
  // Algorithm 2/3 averages renormalize over the survivors.
  Dataset data;
  data.cardinality = {3, 1, 3};
  Rng rng(13);
  for (int i = 0; i < 60; ++i) {
    const int v = static_cast<int>(rng.uniform_int(3));
    data.rows.push_back({v, 0, (v + 1) % 3});
  }
  CrossFeatureModel model;
  ASSERT_TRUE(model.train(data, {0, 1, 2}, c45(), 1).ok());
  EXPECT_EQ(model.submodel_count(), 2u);
  ASSERT_EQ(model.skipped_columns().size(), 1u);
  EXPECT_EQ(model.skipped_columns()[0], 1u);
  const EventScore score = model.score({1, 0, 2});
  // Both surviving sub-models match; the average divides by 2, not 3.
  EXPECT_DOUBLE_EQ(score.avg_match_count, 1.0);
  EXPECT_GT(score.avg_probability, 0.9);

  // A label set with no discriminative column cannot train at all.
  CrossFeatureModel constant_only;
  const Status status = constant_only.train(data, {1}, c45(), 1);
  EXPECT_EQ(status.code(), StatusCode::kTrainFailed);
  EXPECT_FALSE(constant_only.trained());
}

TEST(CrossFeature, LabelColumnSubsetRestrictsSubmodels) {
  const Dataset data = table1();
  CrossFeatureModel model;
  model.train(data, {0, 2}, nbc(), 1);  // skip column 1
  EXPECT_EQ(model.submodel_count(), 2u);
  EXPECT_EQ(model.label_column_of(0), 0u);
  EXPECT_EQ(model.label_column_of(1), 2u);
}

TEST(CrossFeature, ExplainRanksDeviatingFeaturesFirst) {
  // Three correlated features; break one and it must top the explanation.
  Rng rng(15);
  Dataset data;
  data.cardinality = {4, 4, 4};
  for (int i = 0; i < 400; ++i) {
    const int v = static_cast<int>(rng.uniform_int(4));
    data.rows.push_back({v, v, v});
  }
  CrossFeatureModel model;
  model.train(data, {0, 1, 2}, c45(), 1);
  const auto verdicts = model.explain({2, 2, 0});  // column 2 broken
  ASSERT_EQ(verdicts.size(), 3u);
  EXPECT_EQ(verdicts.front().label_column, 2u);
  EXPECT_FALSE(verdicts.front().matched);
  EXPECT_EQ(verdicts.front().observed, 0);
  EXPECT_EQ(verdicts.front().predicted, 2);
  // Probabilities ascend.
  EXPECT_LE(verdicts[0].probability, verdicts[1].probability);
  EXPECT_LE(verdicts[1].probability, verdicts[2].probability);
}

TEST(CrossFeatureDeathTest, RejectsRowNarrowerThanTrainedSchema) {
  // A truncated event row would index past its end inside every sub-model;
  // the schema-width contract fires before any out-of-bounds read.
  CrossFeatureModel model;
  model.train(table1(), {0, 1, 2}, nbc(), 1);
  EXPECT_DEATH(model.explain({1, 1}), "narrower than the trained schema");
  EXPECT_DEATH(model.score({1}), "narrower than the trained schema");
}

TEST(ThresholdTest, QuantileSelection) {
  std::vector<double> scores;
  for (int i = 1; i <= 100; ++i) scores.push_back(i / 100.0);
  const double theta = select_threshold(scores, 0.05);
  // ~5% of scores fall strictly below the selected threshold.
  const double far = realized_false_alarm_rate(scores, theta);
  EXPECT_LE(far, 0.06);
  EXPECT_GE(far, 0.03);
}

TEST(ThresholdTest, ZeroFarPicksMinimum) {
  const std::vector<double> scores = {0.4, 0.9, 0.2, 0.7};
  EXPECT_DOUBLE_EQ(select_threshold(scores, 0.0), 0.2);
  EXPECT_DOUBLE_EQ(realized_false_alarm_rate(scores, 0.2), 0.0);
}

TEST(ThresholdTest, RealizedFarCountsStrictlyBelow) {
  const std::vector<double> scores = {0.1, 0.5, 0.5, 0.9};
  EXPECT_DOUBLE_EQ(realized_false_alarm_rate(scores, 0.5), 0.25);
  EXPECT_DOUBLE_EQ(realized_false_alarm_rate(scores, 0.91), 1.0);
}

// The full 2-node sweep as a parameterized suite: C4.5 and NBC must rank
// the hardest abnormal event below every normal event on average
// probability. (RIPPER is excluded: with only four training rows its
// grow/prune split degenerates — the paper likewise found RIPPER the most
// sensitive of the three; it gets a bounded-sanity check instead.)
class TwoNodeParamTest : public ::testing::TestWithParam<int> {};

TEST_P(TwoNodeParamTest, HardAbnormalEventsScoreLowest) {
  ClassifierFactory factory = GetParam() == 0 ? c45() : nbc();
  CrossFeatureModel model;
  model.train(table1(), {0, 1, 2}, factory, 1);
  // {True, False, True} never appears and breaks every correlation.
  const double hard = model.score({1, 0, 1}).avg_probability;
  for (const auto& row : table1().rows)
    EXPECT_GT(model.score(row).avg_probability, hard);
}

INSTANTIATE_TEST_SUITE_P(TreeAndBayes, TwoNodeParamTest,
                         ::testing::Values(0, 1));

TEST(CrossFeature, RipperOnTinyDataStaysBounded) {
  CrossFeatureModel model;
  model.train(table1(), {0, 1, 2},
              [] { return std::make_unique<Ripper>(); }, 1);
  for (int r = 0; r < 2; ++r)
    for (int d = 0; d < 2; ++d)
      for (int c = 0; c < 2; ++c) {
        const EventScore score = model.score({r, d, c});
        EXPECT_GE(score.avg_probability, 0.0);
        EXPECT_LE(score.avg_probability, 1.0);
      }
}

}  // namespace
}  // namespace xfa
