// Stress tests for the slab-allocated scheduler: schedule/cancel churn,
// re-entrant scheduling from inside callbacks, tombstone compaction, and
// generation-checked (ABA-safe) cancellation after slot reuse.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

#include "sim/rng.h"
#include "sim/scheduler.h"

namespace xfa {
namespace {

TEST(SchedulerSlabTest, ChurnKeepsCountersAndOrderConsistent) {
  Scheduler scheduler;
  Rng rng(123);
  std::vector<SimTime> fired_at;
  std::vector<EventId> live;

  std::uint64_t scheduled = 0;
  std::uint64_t cancelled = 0;
  for (int round = 0; round < 2000; ++round) {
    const SimTime base = scheduler.now();
    for (int i = 0; i < 4; ++i) {
      live.push_back(scheduler.schedule_at(
          base + rng.uniform(0.0, 10.0),
          [&fired_at, &scheduler] { fired_at.push_back(scheduler.now()); }));
      ++scheduled;
    }
    // Cancel a pseudo-random half of what we know about.
    for (std::size_t i = live.size(); i-- > 0;) {
      if (rng.chance(0.5)) {
        if (scheduler.cancel(live[i])) ++cancelled;
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
      }
    }
    scheduler.run_until(base + rng.uniform(0.0, 0.5));
  }
  scheduler.run();

  EXPECT_EQ(scheduler.cancelled(), cancelled);
  EXPECT_EQ(scheduler.dispatched(), scheduled - cancelled);
  EXPECT_EQ(scheduler.dispatched(), fired_at.size());
  EXPECT_EQ(scheduler.pending(), 0u);
  EXPECT_GE(scheduler.peak_pending(), 1u);
  // Dispatch order must be time-sorted (FIFO ties don't reorder times).
  for (std::size_t i = 1; i < fired_at.size(); ++i)
    EXPECT_LE(fired_at[i - 1], fired_at[i]);
}

TEST(SchedulerSlabTest, ReentrantSchedulingFromCallbacksIsSafe) {
  Scheduler scheduler;
  std::uint64_t fired = 0;
  // Each callback schedules two more until a depth budget runs out; slab
  // growth happens while a callback (moved out of its slot) is running.
  struct Spawner {
    Scheduler& scheduler;
    std::uint64_t& fired;
    void operator()(int depth) const {
      ++fired;
      if (depth == 0) return;
      for (int i = 0; i < 2; ++i) {
        scheduler.schedule_in(0.1, [this, depth] { (*this)(depth - 1); });
      }
    }
  };
  Spawner spawner{scheduler, fired};
  scheduler.schedule_at(0.0, [&spawner] { spawner(10); });
  scheduler.run();
  EXPECT_EQ(fired, (1u << 11) - 1);  // full binary tree of depth 10
  EXPECT_EQ(scheduler.pending(), 0u);
}

TEST(SchedulerSlabTest, SelfCancelDuringDispatchIsANoOp) {
  Scheduler scheduler;
  EventId self = 0;
  bool ran = false;
  self = scheduler.schedule_at(1.0, [&] {
    ran = true;
    // The event is already being dispatched; its slot was released before
    // the callback ran, so cancelling "itself" must miss.
    EXPECT_FALSE(scheduler.cancel(self));
  });
  scheduler.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(scheduler.cancelled(), 0u);
}

TEST(SchedulerSlabTest, StaleIdCancelMissesAfterSlotReuse) {
  Scheduler scheduler;
  bool second_ran = false;
  const EventId first = scheduler.schedule_at(1.0, [] {});
  ASSERT_TRUE(scheduler.cancel(first));
  // The freed slot is reused with a bumped generation; the stale id must not
  // be able to cancel the new occupant.
  const EventId second =
      scheduler.schedule_at(2.0, [&second_ran] { second_ran = true; });
  EXPECT_NE(first, second);
  EXPECT_FALSE(scheduler.cancel(first));
  scheduler.run();
  EXPECT_TRUE(second_ran);
  EXPECT_EQ(scheduler.dispatched(), 1u);
  EXPECT_EQ(scheduler.cancelled(), 1u);
}

TEST(SchedulerSlabTest, CompactionPurgesTombstonesWithoutLosingEvents) {
  Scheduler scheduler;
  std::uint64_t fired = 0;
  std::vector<EventId> doomed;
  // A few survivors among a large tombstone population.
  for (int i = 0; i < 32; ++i)
    scheduler.schedule_at(100.0 + i, [&fired] { ++fired; });
  for (int i = 0; i < 4096; ++i)
    doomed.push_back(scheduler.schedule_at(10.0 + i * 0.01, [&fired] {
      ++fired;
    }));
  for (const EventId id : doomed) ASSERT_TRUE(scheduler.cancel(id));

  // Cancelling 4096 of 4128 entries crosses the >1/2 tombstone threshold:
  // compaction must have already run, shrinking the heap to the survivors.
  EXPECT_GT(scheduler.compactions(), 0u);
  EXPECT_EQ(scheduler.pending(), 32u);

  scheduler.run();
  EXPECT_EQ(fired, 32u);
  EXPECT_EQ(scheduler.dispatched(), 32u);
  EXPECT_EQ(scheduler.cancelled(), 4096u);
  EXPECT_EQ(scheduler.pending(), 0u);
}

TEST(SchedulerSlabTest, LargeCaptureCallbacksFallBackToHeapCorrectly) {
  Scheduler scheduler;
  // A capture larger than InlineFunction's inline buffer must still move
  // through slot reuse and dispatch intact.
  std::vector<std::uint64_t> payload(64);
  for (std::size_t i = 0; i < payload.size(); ++i) payload[i] = i * i;
  std::uint64_t sum = 0;
  std::array<std::uint64_t, 16> big{};
  big[0] = 7;
  big[15] = 9;
  scheduler.schedule_at(1.0, [payload, big, &sum] {
    for (const std::uint64_t v : payload) sum += v;
    sum += big[0] + big[15];
  });
  scheduler.run();
  std::uint64_t expected = 16;
  for (std::size_t i = 0; i < payload.size(); ++i) expected += i * i;
  EXPECT_EQ(sum, expected);
}

}  // namespace
}  // namespace xfa
