// Unit tests: feature schema (Tables 4/5), extraction windows, equal-
// frequency discretization.
#include <gtest/gtest.h>

#include <set>

#include "features/discretize.h"
#include "features/extract.h"
#include "features/schema.h"
#include "sim/rng.h"

namespace xfa {
namespace {

TEST(Schema, PaperFeatureCounts) {
  const FeatureSchema schema = FeatureSchema::standard();
  // (6 types x 4 directions - 2 excluded) x 3 periods x 2 stats = 132.
  EXPECT_EQ(schema.traffic_specs().size(), 132u);
  // + time + velocity + 5 route-event counts + total change + avg length.
  EXPECT_EQ(schema.size(), 141u);
  // Time is excluded from classification.
  EXPECT_EQ(schema.classifiable_columns().size(), 140u);
}

TEST(Schema, ExcludesDataForwardedAndDropped) {
  const FeatureSchema schema = FeatureSchema::standard();
  for (const TrafficFeatureSpec& spec : schema.traffic_specs()) {
    if (spec.type == AuditPacketType::Data) {
      EXPECT_NE(spec.dir, FlowDirection::Forwarded);
      EXPECT_NE(spec.dir, FlowDirection::Dropped);
    }
  }
}

TEST(Schema, NamesAreUnique) {
  const FeatureSchema schema = FeatureSchema::standard();
  std::set<std::string> names(schema.names().begin(), schema.names().end());
  EXPECT_EQ(names.size(), schema.size());
}

TEST(Schema, PaperEncodingExample) {
  // "<2,0,0,1>": stddev of inter-packet intervals of received RREQs / 5 s.
  TrafficFeatureSpec spec;
  spec.type = AuditPacketType::RouteRequest;
  spec.dir = FlowDirection::Received;
  spec.period = 5.0;
  spec.stat = TrafficStat::IatStdDev;
  EXPECT_EQ(spec.encode(), "<2,0,0,1>");
}

TEST(Schema, RestrictedPeriods) {
  const FeatureSchema schema = FeatureSchema::with_periods({5.0});
  EXPECT_EQ(schema.traffic_specs().size(), 44u);  // 22 streams x 1 period x 2
}

TEST(WindowStats, CountInWindow) {
  const std::vector<SimTime> times = {1, 2, 3, 7, 8, 20};
  EXPECT_EQ(count_in_window(times, 5.0, 5.0), 3u);   // (0,5]: 1,2,3
  EXPECT_EQ(count_in_window(times, 8.0, 5.0), 2u);   // (3,8]: 7,8
  EXPECT_EQ(count_in_window(times, 20.0, 5.0), 1u);  // (15,20]: 20
  EXPECT_EQ(count_in_window(times, 100.0, 5.0), 0u);
  EXPECT_EQ(count_in_window(times, 20.0, 100.0), 6u);
}

TEST(WindowStats, IatStdDevBasics) {
  // Evenly spaced events: stddev of intervals = 0.
  const std::vector<SimTime> even = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(iat_stddev_in_window(even, 5.0, 5.0), 0.0);
  // Fewer than two intervals: 0 by convention.
  const std::vector<SimTime> sparse = {1, 4};
  EXPECT_DOUBLE_EQ(iat_stddev_in_window(sparse, 5.0, 5.0), 0.0);
  // Intervals {1, 3}: mean 2, population stddev 1.
  const std::vector<SimTime> uneven = {1, 2, 5};
  EXPECT_DOUBLE_EQ(iat_stddev_in_window(uneven, 5.0, 5.0), 1.0);
}

TEST(WindowStats, WindowBoundariesAreHalfOpen) {
  const std::vector<SimTime> times = {5.0, 10.0};
  // (5, 10]: only the event at 10.
  EXPECT_EQ(count_in_window(times, 10.0, 5.0), 1u);
}

TEST(Extractor, ProducesOneRowPerSample) {
  const FeatureSchema schema = FeatureSchema::standard();
  FeatureExtractor extractor(schema, 5.0);
  AuditLog audit;
  SampledNodeState state;
  const std::size_t samples = extractor.sample_count(100.0);
  EXPECT_EQ(samples, 20u);
  state.velocity.assign(samples, 1.5);
  state.average_route_len.assign(samples, 2.5);
  const RawTrace trace = extractor.extract(audit, state, 100.0);
  ASSERT_EQ(trace.size(), 20u);
  EXPECT_DOUBLE_EQ(trace.times.front(), 5.0);
  EXPECT_DOUBLE_EQ(trace.times.back(), 100.0);
  EXPECT_EQ(trace.rows.front().size(), schema.size());
  EXPECT_DOUBLE_EQ(trace.rows[0][schema.velocity_column()], 1.5);
  EXPECT_DOUBLE_EQ(trace.rows[0][schema.average_route_length_column()], 2.5);
}

TEST(Extractor, CountsPacketsInCorrectWindows) {
  const FeatureSchema schema = FeatureSchema::standard();
  FeatureExtractor extractor(schema, 5.0);
  AuditLog audit;
  // 3 data packets sent in the first window, 1 in the second.
  audit.record_packet(1.0, AuditPacketType::Data, FlowDirection::Sent);
  audit.record_packet(2.0, AuditPacketType::Data, FlowDirection::Sent);
  audit.record_packet(4.5, AuditPacketType::Data, FlowDirection::Sent);
  audit.record_packet(7.0, AuditPacketType::Data, FlowDirection::Sent);
  SampledNodeState state;
  state.velocity.assign(2, 0);
  state.average_route_len.assign(2, 0);
  const RawTrace trace = extractor.extract(audit, state, 10.0);

  // Find the data/sent/5s/count column.
  std::size_t column = schema.traffic_base_column();
  for (const TrafficFeatureSpec& spec : schema.traffic_specs()) {
    if (spec.type == AuditPacketType::Data &&
        spec.dir == FlowDirection::Sent && spec.period == 5.0 &&
        spec.stat == TrafficStat::Count)
      break;
    ++column;
  }
  EXPECT_DOUBLE_EQ(trace.rows[0][column], 3.0);
  EXPECT_DOUBLE_EQ(trace.rows[1][column], 1.0);
}

TEST(Extractor, RouteEventCountsAndTotalChange) {
  const FeatureSchema schema = FeatureSchema::standard();
  FeatureExtractor extractor(schema, 5.0);
  AuditLog audit;
  audit.record_route_event(1.0, RouteEventKind::Add);
  audit.record_route_event(2.0, RouteEventKind::Add);
  audit.record_route_event(3.0, RouteEventKind::Remove);
  audit.record_route_event(8.0, RouteEventKind::Find);
  SampledNodeState state;
  state.velocity.assign(2, 0);
  state.average_route_len.assign(2, 0);
  const RawTrace trace = extractor.extract(audit, state, 10.0);
  EXPECT_DOUBLE_EQ(
      trace.rows[0][schema.route_event_column(RouteEventKind::Add)], 2.0);
  EXPECT_DOUBLE_EQ(
      trace.rows[0][schema.route_event_column(RouteEventKind::Remove)], 1.0);
  EXPECT_DOUBLE_EQ(trace.rows[0][schema.total_route_change_column()], 3.0);
  EXPECT_DOUBLE_EQ(
      trace.rows[1][schema.route_event_column(RouteEventKind::Find)], 1.0);
  EXPECT_DOUBLE_EQ(trace.rows[1][schema.total_route_change_column()], 0.0);
}

TEST(Extractor, ControlPacketsAppearInRouteAllColumns) {
  const FeatureSchema schema = FeatureSchema::standard();
  FeatureExtractor extractor(schema, 5.0);
  AuditLog audit;
  audit.record_packet(1.0, AuditPacketType::RouteRequest,
                      FlowDirection::Received);
  audit.record_packet(2.0, AuditPacketType::RouteReply,
                      FlowDirection::Received);
  SampledNodeState state;
  state.velocity.assign(1, 0);
  state.average_route_len.assign(1, 0);
  const RawTrace trace = extractor.extract(audit, state, 5.0);

  const auto column_of = [&](AuditPacketType type, FlowDirection dir) {
    std::size_t column = schema.traffic_base_column();
    for (const TrafficFeatureSpec& spec : schema.traffic_specs()) {
      if (spec.type == type && spec.dir == dir && spec.period == 5.0 &&
          spec.stat == TrafficStat::Count)
        return column;
      ++column;
    }
    return std::size_t{0};
  };
  EXPECT_DOUBLE_EQ(
      trace.rows[0][column_of(AuditPacketType::RouteAll,
                              FlowDirection::Received)],
      2.0);
  EXPECT_DOUBLE_EQ(
      trace.rows[0][column_of(AuditPacketType::RouteRequest,
                              FlowDirection::Received)],
      1.0);
}

TEST(Extractor, LongPeriodWindowsSpanMultipleSamples) {
  const FeatureSchema schema = FeatureSchema::standard();
  FeatureExtractor extractor(schema, 5.0);
  AuditLog audit;
  // One packet at t=2: it stays inside the trailing 60s window for all
  // twelve 5-second samples.
  audit.record_packet(2.0, AuditPacketType::Data, FlowDirection::Sent);
  SampledNodeState state;
  const std::size_t samples = extractor.sample_count(60.0);
  state.velocity.assign(samples, 0);
  state.average_route_len.assign(samples, 0);
  const RawTrace trace = extractor.extract(audit, state, 60.0);

  std::size_t column = schema.traffic_base_column();
  for (const TrafficFeatureSpec& spec : schema.traffic_specs()) {
    if (spec.type == AuditPacketType::Data &&
        spec.dir == FlowDirection::Sent && spec.period == 60.0 &&
        spec.stat == TrafficStat::Count)
      break;
    ++column;
  }
  for (std::size_t i = 0; i < samples; ++i)
    EXPECT_DOUBLE_EQ(trace.rows[i][column], 1.0) << "sample " << i;
}

TEST(Discretizer, EqualFrequencyOnUniformData) {
  std::vector<std::vector<double>> rows;
  for (int i = 0; i < 100; ++i)
    rows.push_back({static_cast<double>(i)});
  EqualFrequencyDiscretizer discretizer(5, /*min_relative_gap=*/0);
  discretizer.fit(rows);
  EXPECT_EQ(discretizer.cardinality(0), 5);
  // Buckets should be roughly equally populated.
  std::vector<int> counts(5, 0);
  for (const auto& row : rows)
    ++counts[static_cast<std::size_t>(
        discretizer.transform_value(0, row[0]))];
  for (const int c : counts) {
    EXPECT_GE(c, 15);
    EXPECT_LE(c, 25);
  }
}

TEST(Discretizer, ConstantColumnCollapsesToOneBucket) {
  std::vector<std::vector<double>> rows(50, {3.14});
  EqualFrequencyDiscretizer discretizer(5);
  discretizer.fit(rows);
  EXPECT_EQ(discretizer.cardinality(0), 1);
  EXPECT_EQ(discretizer.transform_value(0, 3.14), 0);
  EXPECT_EQ(discretizer.transform_value(0, 100.0), 0);
}

TEST(Discretizer, MostlyZeroColumn) {
  std::vector<std::vector<double>> rows;
  for (int i = 0; i < 90; ++i) rows.push_back({0.0});
  for (int i = 0; i < 10; ++i) rows.push_back({5.0 + i});
  EqualFrequencyDiscretizer discretizer(5, 0);
  discretizer.fit(rows);
  // Zeros all land in bucket 0; large values in a higher bucket.
  EXPECT_EQ(discretizer.transform_value(0, 0.0), 0);
  EXPECT_GT(discretizer.transform_value(0, 12.0), 0);
}

TEST(Discretizer, MinRelativeGapCollapsesTightClusters) {
  // Values clustered at 2.0 +- 2%: quantile cuts would be noise.
  std::vector<std::vector<double>> rows;
  for (int i = 0; i < 100; ++i)
    rows.push_back({2.0 + 0.04 * (i % 11 - 5) / 5.0});
  EqualFrequencyDiscretizer tight(5, /*min_relative_gap=*/0.25);
  tight.fit(rows);
  EXPECT_LE(tight.cardinality(0), 2);
  EqualFrequencyDiscretizer loose(5, 0.0);
  loose.fit(rows);
  EXPECT_GE(loose.cardinality(0), 3);
}

TEST(Discretizer, TransformTraceKeepsShape) {
  RawTrace trace;
  trace.times = {5, 10, 15};
  trace.rows = {{1.0, 10.0}, {2.0, 20.0}, {3.0, 30.0}};
  trace.labels = {0, 0, 1};
  EqualFrequencyDiscretizer discretizer(3, 0);
  discretizer.fit(trace.rows);
  const DiscreteTrace discrete = discretizer.transform(trace);
  EXPECT_EQ(discrete.size(), 3u);
  EXPECT_EQ(discrete.columns(), 2u);
  EXPECT_EQ(discrete.labels, trace.labels);
  for (const auto& row : discrete.rows)
    for (std::size_t c = 0; c < row.size(); ++c) {
      EXPECT_GE(row[c], 0);
      EXPECT_LT(row[c], discrete.cardinality[c]);
    }
}

TEST(Discretizer, MonotoneMapping) {
  std::vector<std::vector<double>> rows;
  for (int i = 0; i < 200; ++i)
    rows.push_back({static_cast<double>(i % 37)});
  EqualFrequencyDiscretizer discretizer(5, 0);
  discretizer.fit(rows);
  int last = -1;
  for (double v = -5; v < 45; v += 0.5) {
    const int bucket = discretizer.transform_value(0, v);
    EXPECT_GE(bucket, last);
    last = bucket;
  }
}

// Property sweep over bucket counts.
class DiscretizerParamTest : public ::testing::TestWithParam<int> {};

TEST_P(DiscretizerParamTest, CardinalityNeverExceedsRequested) {
  const int buckets = GetParam();
  std::vector<std::vector<double>> rows;
  Rng rng(13);
  for (int i = 0; i < 300; ++i)
    rows.push_back({rng.uniform(0, 100), rng.exponential(3.0),
                    static_cast<double>(rng.uniform_int(4))});
  EqualFrequencyDiscretizer discretizer(buckets, 0);
  discretizer.fit(rows);
  for (std::size_t c = 0; c < 3; ++c) {
    EXPECT_GE(discretizer.cardinality(c), 1);
    EXPECT_LE(discretizer.cardinality(c), buckets);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, DiscretizerParamTest,
                         ::testing::Values(2, 3, 5, 8, 16));

}  // namespace
}  // namespace xfa
