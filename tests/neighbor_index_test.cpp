// Property tests: the grid-pruned neighbor queries must be exactly the
// brute-force O(N^2) oracle — same nodes, same ascending-id order — across
// waypoint motion, cell-boundary geometry, and fault-injected link states.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "mobility/waypoint.h"
#include "net/channel.h"
#include "net/neighbor_index.h"
#include "net/node.h"
#include "sim/simulator.h"

namespace xfa {
namespace {

/// Mobility stub with directly scriptable positions (and optional linear
/// drift), for exact boundary-geometry control.
class ScriptedMobility final : public MobilityModel {
 public:
  explicit ScriptedMobility(std::vector<Vec2> positions,
                            std::vector<Vec2> velocities = {})
      : positions_(std::move(positions)), velocities_(std::move(velocities)) {}

  Vec2 position(NodeId node, SimTime t) const override {
    Vec2 p = positions_[static_cast<std::size_t>(node)];
    if (!velocities_.empty()) {
      const Vec2 v = velocities_[static_cast<std::size_t>(node)];
      p.x += v.x * t;
      p.y += v.y * t;
    }
    return p;
  }
  double speed(NodeId, SimTime) const override { return 0; }

 private:
  std::vector<Vec2> positions_;
  std::vector<Vec2> velocities_;
};

/// The oracle the grid must reproduce exactly: every other node, ascending
/// id, whose exact position at `t` is within `range` (inclusive).
std::vector<NodeId> brute_force(const MobilityModel& mobility,
                                std::size_t node_count, NodeId self, SimTime t,
                                double range) {
  std::vector<NodeId> out;
  const Vec2 center = mobility.position(self, t);
  for (NodeId other = 0; other < static_cast<NodeId>(node_count); ++other) {
    if (other == self) continue;
    if (distance2(center, mobility.position(other, t)) <= range * range)
      out.push_back(other);
  }
  return out;
}

TEST(NeighborIndexTest, MatchesBruteForceAcrossWaypointSnapshots) {
  const std::size_t kNodes = 40;
  const double kRange = 250.0;
  MobilityConfig config;  // 1000x1000, 20 m/s: the paper's topology
  RandomWaypointMobility mobility(kNodes, config, Rng(42));

  NeighborIndex index(mobility, kRange, config.max_speed);
  index.set_node_count(kNodes);
  ASSERT_TRUE(index.enabled());

  // Non-decreasing query times (the mobility model's contract), spanning
  // many slack-budget windows so rebuilds and stale-grid queries both occur.
  std::vector<NodeId> pruned;
  for (SimTime t = 0; t <= 120.0; t += 1.7) {
    for (NodeId self = 0; self < static_cast<NodeId>(kNodes); ++self) {
      pruned.clear();
      index.in_range_of(self, t, pruned);
      EXPECT_EQ(pruned, brute_force(mobility, kNodes, self, t, kRange))
          << "self=" << self << " t=" << t;
    }
  }
  EXPECT_GT(index.stats().rebuilds, 1u);  // the slack budget did its job
  EXPECT_GE(index.stats().candidates, index.stats().confirmed);
}

TEST(NeighborIndexTest, DisabledIndexIsTheExactLinearScan) {
  const std::size_t kNodes = 25;
  const double kRange = 250.0;
  MobilityConfig config;
  RandomWaypointMobility mobility(kNodes, config, Rng(7));

  NeighborIndex index(mobility, kRange, /*max_speed=*/-1.0);
  index.set_node_count(kNodes);
  ASSERT_FALSE(index.enabled());

  std::vector<NodeId> out;
  for (SimTime t = 0; t <= 30.0; t += 3.1) {
    for (NodeId self = 0; self < static_cast<NodeId>(kNodes); ++self) {
      out.clear();
      index.in_range_of(self, t, out);
      EXPECT_EQ(out, brute_force(mobility, kNodes, self, t, kRange));
    }
  }
  EXPECT_EQ(index.stats().rebuilds, 0u);
}

TEST(NeighborIndexTest, CellBoundaryGeometryIsExact) {
  // Cell size equals the range (100 m): nodes sitting exactly on cell edges,
  // exactly at range (inclusive), just outside, and at negative coordinates.
  const double kRange = 100.0;
  const std::vector<Vec2> positions = {
      {0, 0},                    // 0: query center, on a cell corner
      {100, 0},                  // 1: exactly at range -> in (<=)
      {100.0000001, 0},          // 2: just outside -> out
      {60, 80},                  // 3: 3-4-5 triangle, exactly at range -> in
      {-100, 0},                 // 4: exactly at range, negative cell -> in
      {-70.7, -70.7},            // 5: ~99.98 m -> in
      {-71, -71},                // 6: ~100.41 m -> out
      {0, 100},                  // 7: exactly at range, on a cell edge -> in
      {199.9, 0},                // 8: neighbor-of-neighbor cell -> out
      {0.5, 0.5},                // 9: same cell -> in
  };
  ScriptedMobility mobility(positions);
  NeighborIndex index(mobility, kRange, /*max_speed=*/0.0);
  index.set_node_count(positions.size());
  ASSERT_TRUE(index.enabled());

  std::vector<NodeId> out;
  index.in_range_of(0, 0.0, out);
  EXPECT_EQ(out, (std::vector<NodeId>{1, 3, 4, 5, 7, 9}));
  // And the full pairwise property, not just the hand-checked center.
  for (NodeId self = 0; self < static_cast<NodeId>(positions.size()); ++self) {
    out.clear();
    index.in_range_of(self, 0.0, out);
    EXPECT_EQ(out,
              brute_force(mobility, positions.size(), self, 0.0, kRange))
        << "self=" << self;
  }
}

TEST(NeighborIndexTest, StaleGridWithDriftingNodesStaysExact) {
  // Nodes drift at exactly the promised max speed; between rebuilds the
  // widened query radius must keep the pruning conservative.
  const double kRange = 100.0;
  const double kMaxSpeed = 10.0;
  std::vector<Vec2> positions;
  std::vector<Vec2> velocities;
  for (int i = 0; i < 30; ++i) {
    positions.push_back({static_cast<double>(i % 6) * 55.0,
                         static_cast<double>(i / 6) * 55.0});
    // Alternate headings, all at |v| == kMaxSpeed.
    velocities.push_back(i % 2 == 0 ? Vec2{kMaxSpeed, 0}
                                    : Vec2{0, -kMaxSpeed});
  }
  ScriptedMobility mobility(positions, velocities);
  NeighborIndex index(mobility, kRange, kMaxSpeed);
  index.set_node_count(positions.size());

  std::vector<NodeId> out;
  for (SimTime t = 0; t <= 20.0; t += 0.25) {
    for (NodeId self = 0; self < static_cast<NodeId>(positions.size());
         ++self) {
      out.clear();
      index.in_range_of(self, t, out);
      EXPECT_EQ(out, brute_force(mobility, positions.size(), self, t, kRange))
          << "self=" << self << " t=" << t;
    }
  }
  EXPECT_GT(index.stats().rebuilds, 1u);
}

// ---------------------------------------------------------------------------
// Whole-channel equivalence: a grid-enabled channel must behave identically
// to a grid-disabled one — same deliveries, same RNG draw order, same stats —
// including under fault-injected link/node state.
// ---------------------------------------------------------------------------

class CountingProtocol final : public RoutingProtocol {
 public:
  void send_data(Packet&&) override {}
  void receive(PacketPtr pkt, NodeId from) override {
    received.emplace_back(pkt->uid, from);
  }
  void link_failure(const Packet& pkt, NodeId to) override {
    failures.emplace_back(pkt.uid, to);
  }
  double average_route_length() const override { return 0; }
  std::size_t route_count() const override { return 0; }
  const char* name() const override { return "counting-stub"; }

  std::vector<std::pair<std::uint64_t, NodeId>> received;
  std::vector<std::pair<std::uint64_t, NodeId>> failures;
};

/// Deterministic fault state: pure functions of (ids, call count), so two
/// channels consuming it in the same order see the same fault timeline.
class ScriptedFaults final : public FaultModel {
 public:
  bool node_down(NodeId node) const override { return node == 7; }
  bool link_down(NodeId a, NodeId b) const override {
    return (a + b) % 11 == 0;
  }
  bool loses_delivery() override { return ++draws_ % 13 == 0; }
  bool corrupts_delivery() override { return ++draws_ % 17 == 0; }
  bool duplicates_delivery() override { return ++draws_ % 19 == 0; }
  SimTime extra_delay() override { return (++draws_ % 5) * 1e-4; }

  std::uint64_t draws() const { return draws_; }

 private:
  std::uint64_t draws_ = 0;
};

struct SimRig {
  explicit SimRig(double max_node_speed, std::size_t n = 30)
      : sim(99), mobility(n, MobilityConfig{}, Rng(5)) {
    ChannelConfig config;
    config.loss_rate = 0.1;
    config.max_node_speed = max_node_speed;
    channel = std::make_unique<Channel>(sim, mobility, config);
    channel->set_fault_model(&faults);
    for (std::size_t i = 0; i < n; ++i) {
      nodes.push_back(
          std::make_unique<Node>(sim, *channel, static_cast<NodeId>(i)));
      channel->register_node(*nodes.back());
      auto protocol = std::make_unique<CountingProtocol>();
      protocols.push_back(protocol.get());
      nodes.back()->set_routing(std::move(protocol));
    }
  }

  void drive() {
    // Broadcasts and unicasts from rotating senders across enough sim time
    // to force several grid rebuilds (slack budget = range/4 = 62.5 m at
    // 20 m/s -> ~3.1 s between rebuilds).
    const std::size_t n = nodes.size();
    for (int i = 0; i < 400; ++i) {
      const SimTime when = i * 0.05;
      const NodeId from = static_cast<NodeId>(i % n);
      const NodeId to =
          i % 3 == 0 ? kBroadcast : static_cast<NodeId>((i * 7) % n);
      sim.at(when, [this, from, to] {
        Packet pkt;
        pkt.src = from;
        pkt.dst = to;
        channel->transmit(from, std::move(pkt), to);
      });
    }
    sim.run();
  }

  Simulator sim;
  RandomWaypointMobility mobility;
  ScriptedFaults faults;
  std::unique_ptr<Channel> channel;
  std::vector<std::unique_ptr<Node>> nodes;
  std::vector<CountingProtocol*> protocols;
};

TEST(NeighborIndexTest, GridOnAndGridOffChannelsAreTraceIdentical) {
  SimRig with_grid(/*max_node_speed=*/20.0);
  SimRig without_grid(/*max_node_speed=*/-1.0);
  ASSERT_TRUE(with_grid.channel->neighbor_index().enabled());
  ASSERT_FALSE(without_grid.channel->neighbor_index().enabled());

  with_grid.drive();
  without_grid.drive();

  const ChannelStats& a = with_grid.channel->stats();
  const ChannelStats& b = without_grid.channel->stats();
  EXPECT_EQ(a.transmissions, b.transmissions);
  EXPECT_EQ(a.deliveries, b.deliveries);
  EXPECT_EQ(a.taps, b.taps);
  EXPECT_EQ(a.random_losses, b.random_losses);
  EXPECT_EQ(a.unicast_failures, b.unicast_failures);
  EXPECT_EQ(a.fault_link_drops, b.fault_link_drops);
  EXPECT_EQ(a.fault_burst_losses, b.fault_burst_losses);
  EXPECT_EQ(a.fault_corrupted, b.fault_corrupted);
  EXPECT_EQ(a.fault_duplicates, b.fault_duplicates);
  // Fault draws are consumed once per delivery decision: identical counts
  // prove the two channels made the decisions in the same order.
  EXPECT_EQ(with_grid.faults.draws(), without_grid.faults.draws());
  for (std::size_t i = 0; i < with_grid.protocols.size(); ++i) {
    EXPECT_EQ(with_grid.protocols[i]->received,
              without_grid.protocols[i]->received)
        << "node " << i;
    EXPECT_EQ(with_grid.protocols[i]->failures,
              without_grid.protocols[i]->failures)
        << "node " << i;
  }
  EXPECT_GT(with_grid.channel->neighbor_index().stats().rebuilds, 1u);
}

}  // namespace
}  // namespace xfa
