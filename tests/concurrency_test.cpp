// Concurrency-safety of the scenario layer: many writers hammering the
// trace cache leave no litter and lose no bytes, and the parallel
// gather_experiment_checked produces the exact inventory the serial path
// does. These suites are the core of the ThreadSanitizer CI pass.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/status.h"
#include "exec/task_group.h"
#include "exec/thread_pool.h"
#include "scenario/cache.h"
#include "scenario/pipeline.h"
#include "scenario/runner.h"

namespace xfa {
namespace {

ScenarioResult sample_result(std::uint64_t salt) {
  ScenarioResult result;
  result.trace.times = {5, 10, 15};
  result.trace.rows = {{1. * salt, 2, 3}, {4, 5. * salt, 6}, {7, 8, 9}};
  result.trace.labels = {0, 0, 1};
  result.summary.data_originated = 100 + salt;
  result.summary.data_delivered = 90;
  result.summary.scheduler_events = salt;
  return result;
}

class CacheStressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "xfa_cache_stress_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    unsetenv("XFA_NO_CACHE");
    refresh_env_for_testing();
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// Files left in the cache directory with the given extension.
  std::size_t count_with_extension(const std::string& extension) const {
    std::size_t count = 0;
    for (const auto& entry : std::filesystem::directory_iterator(dir_))
      if (entry.path().extension() == extension) ++count;
    return count;
  }

  std::string dir_;
};

TEST_F(CacheStressTest, ConcurrentWritersOfOneKeyLeaveOneCleanArtifact) {
  const TraceCache cache(dir_);
  const ScenarioResult canonical = sample_result(1);
  ThreadPool pool(8);
  TaskGroup group(pool);
  for (int t = 0; t < 8; ++t)
    group.submit([&cache, &canonical] {
      for (int i = 0; i < 25; ++i) {
        const Status stored = cache.store("shared-key", canonical);
        if (!stored.ok()) return stored;
        const Result<ScenarioResult> loaded = cache.load("shared-key");
        if (!loaded.ok()) return loaded.status();
        if (loaded->trace.rows != canonical.trace.rows)
          return Status{StatusCode::kCorruptArtifact, "lost bytes"};
      }
      return Status::Ok();
    });
  ASSERT_TRUE(group.wait().ok());

  // Exactly the one artifact; no temp litter, nothing quarantined.
  EXPECT_EQ(count_with_extension(".trc"), 1u);
  EXPECT_EQ(count_with_extension(".tmp"), 0u);
  EXPECT_EQ(count_with_extension(".corrupt"), 0u);
  const Result<ScenarioResult> last = cache.load("shared-key");
  ASSERT_TRUE(last.ok()) << last.status().to_string();
  EXPECT_EQ(last->trace.rows, canonical.trace.rows);
  EXPECT_EQ(last->summary.data_originated, canonical.summary.data_originated);
}

TEST_F(CacheStressTest, ConcurrentWritersOfDistinctKeysAllSurvive) {
  const TraceCache cache(dir_);
  constexpr int kWriters = 8;
  constexpr int kKeysPerWriter = 10;
  ThreadPool pool(kWriters);
  TaskGroup group(pool);
  for (int t = 0; t < kWriters; ++t)
    group.submit([&cache, t] {
      for (int i = 0; i < kKeysPerWriter; ++i) {
        const std::string key =
            "writer-" + std::to_string(t) + "-key-" + std::to_string(i);
        const Status stored =
            cache.store(key, sample_result(t * kKeysPerWriter + i));
        if (!stored.ok()) return stored;
      }
      return Status::Ok();
    });
  ASSERT_TRUE(group.wait().ok());

  EXPECT_EQ(count_with_extension(".trc"), std::size_t{kWriters * kKeysPerWriter});
  EXPECT_EQ(count_with_extension(".tmp"), 0u);
  for (int t = 0; t < kWriters; ++t)
    for (int i = 0; i < kKeysPerWriter; ++i) {
      const std::string key =
          "writer-" + std::to_string(t) + "-key-" + std::to_string(i);
      const Result<ScenarioResult> loaded = cache.load(key);
      ASSERT_TRUE(loaded.ok()) << key << ": " << loaded.status().to_string();
      EXPECT_EQ(loaded->summary.scheduler_events,
                static_cast<std::uint64_t>(t * kKeysPerWriter + i))
          << key;
    }
}

class ParallelGatherTest : public ::testing::Test {
 protected:
  void SetUp() override {
    setenv("XFA_NO_CACHE", "1", 1);  // live simulation, no disk coupling
    refresh_env_for_testing();
  }
  void TearDown() override {
    unsetenv("XFA_NO_CACHE");
    refresh_env_for_testing();
    resize_shared_pool(1);
  }

  static ExperimentOptions tiny_options() {
    ExperimentOptions options;
    options.duration = 300;
    options.normal_eval_traces = 2;
    options.abnormal_traces = 2;
    options.base_seed = 7100;
    options.attacks = mixed_attacks(/*session=*/50);
    options.attacks[0].schedule.start = 80;
    options.attacks[1].schedule.start = 150;
    return options;
  }
};

TEST_F(ParallelGatherTest, PoolSizeDoesNotChangeTheInventory) {
  resize_shared_pool(1);
  const Result<ExperimentData> serial = gather_experiment_checked(
      RoutingKind::Aodv, TransportKind::Udp, tiny_options());
  ASSERT_TRUE(serial.ok()) << serial.status().to_string();

  resize_shared_pool(8);
  const Result<ExperimentData> parallel = gather_experiment_checked(
      RoutingKind::Aodv, TransportKind::Udp, tiny_options());
  ASSERT_TRUE(parallel.ok()) << parallel.status().to_string();

  EXPECT_EQ(serial->train_normal.rows, parallel->train_normal.rows);
  EXPECT_EQ(serial->train_normal.labels, parallel->train_normal.labels);
  ASSERT_EQ(serial->normal_eval.size(), parallel->normal_eval.size());
  for (std::size_t i = 0; i < serial->normal_eval.size(); ++i)
    EXPECT_EQ(serial->normal_eval[i].rows, parallel->normal_eval[i].rows) << i;
  ASSERT_EQ(serial->abnormal.size(), parallel->abnormal.size());
  for (std::size_t i = 0; i < serial->abnormal.size(); ++i) {
    EXPECT_EQ(serial->abnormal[i].rows, parallel->abnormal[i].rows) << i;
    EXPECT_EQ(serial->abnormal[i].labels, parallel->abnormal[i].labels) << i;
  }
  ASSERT_EQ(serial->summaries.size(), parallel->summaries.size());
  for (std::size_t i = 0; i < serial->summaries.size(); ++i)
    EXPECT_EQ(serial->summaries[i].scheduler_events,
              parallel->summaries[i].scheduler_events)
        << i;
}

TEST_F(ParallelGatherTest, ConcurrentSameKeyRequestsSingleFlight) {
  // Several pool tasks requesting the same config must all get the same
  // trace (and, thanks to single-flight, mostly share one simulation).
  resize_shared_pool(4);
  ScenarioConfig config;
  config.node_count = 15;
  config.duration = 150;
  config.seed = 4242;
  config.traffic.max_connections = 8;

  const Result<ScenarioResult> reference = run_scenario_checked(config);
  ASSERT_TRUE(reference.ok()) << reference.status().to_string();

  std::vector<Result<ScenarioResult>> results(
      6, Status{StatusCode::kRetryable, "unset"});
  TaskGroup group(shared_pool());
  for (std::size_t i = 0; i < results.size(); ++i)
    group.submit([&results, &config, i] {
      results[i] = run_scenario_checked(config);
      return results[i].ok() ? Status::Ok() : results[i].status();
    });
  ASSERT_TRUE(group.wait().ok());
  for (std::size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].ok()) << i;
    EXPECT_EQ(results[i]->trace.rows, reference->trace.rows) << i;
  }
}

}  // namespace
}  // namespace xfa
