// Fault-injection layer: FaultPlan semantics, deterministic chaos
// scheduling, the monitored node's crash immunity, the chaos actually
// reaching the channel, and the bounded-retry path for degenerate runs.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include "common/env.h"

#include "faults/injector.h"
#include "faults/plan.h"
#include "scenario/runner.h"

namespace xfa {
namespace {

ScenarioConfig small_config() {
  ScenarioConfig config;
  config.node_count = 15;
  config.duration = 150;
  config.seed = 42;
  config.traffic.max_connections = 8;
  return config;
}

TEST(FaultPlan, DisabledByDefaultEnabledByPreset) {
  EXPECT_FALSE(FaultPlan{}.enabled());
  EXPECT_TRUE(benign_chaos().enabled());

  FaultPlan corruption_only;
  corruption_only.corruption_rate = 0.01;
  EXPECT_TRUE(corruption_only.enabled());

  // A rate without a duration (or vice versa) cannot fire.
  FaultPlan rate_without_duration;
  rate_without_duration.loss_burst_rate_per_s = 0.1;
  EXPECT_FALSE(rate_without_duration.enabled());
}

TEST(FaultPlan, CacheKeyCoversPlanOnlyWhenEnabled) {
  ScenarioConfig base = small_config();
  const std::string base_key = base.cache_key();

  // A default (disabled) plan must not perturb pre-fault cache keys, so
  // existing cached traces stay valid.
  ScenarioConfig with_default = small_config();
  with_default.faults = FaultPlan{};
  EXPECT_EQ(with_default.cache_key(), base_key);

  ScenarioConfig with_chaos = small_config();
  with_chaos.faults = benign_chaos();
  const std::string chaos_key = with_chaos.cache_key();
  EXPECT_NE(chaos_key, base_key);

  // Every knob is behaviour-relevant — including the fault seed.
  ScenarioConfig reseeded = with_chaos;
  reseeded.faults.fault_seed = 7;
  EXPECT_NE(reseeded.cache_key(), chaos_key);
  ScenarioConfig hotter = small_config();
  hotter.faults = benign_chaos(2.0);
  EXPECT_NE(hotter.cache_key(), chaos_key);
}

TEST(FaultInjector, SchedulesIdenticalChaosForIdenticalPlans) {
  // Long horizon + amplified preset so every Poisson mechanism has a
  // vanishing probability of drawing zero arrivals (crash expectation ~20).
  const FaultPlan plan = benign_chaos(5.0);
  constexpr SimTime kDuration = 2000;
  Simulator sim_a(7);
  const FaultInjector a(sim_a, plan, /*node_count=*/20, /*monitor_node=*/0,
                        kDuration);
  Simulator sim_b(7);
  const FaultInjector b(sim_b, plan, 20, 0, kDuration);
  EXPECT_EQ(a.scheduled().bursts, b.scheduled().bursts);
  EXPECT_EQ(a.scheduled().flaps, b.scheduled().flaps);
  EXPECT_EQ(a.scheduled().crashes, b.scheduled().crashes);
  EXPECT_GT(a.scheduled().bursts, 0u);
  EXPECT_GT(a.scheduled().flaps, 0u);
  EXPECT_GT(a.scheduled().crashes, 0u);

  FaultPlan reseeded = plan;
  reseeded.fault_seed = plan.fault_seed + 1;
  Simulator sim_c(7);
  const FaultInjector c(sim_c, reseeded, 20, 0, kDuration);
  EXPECT_NE(a.scheduled().bursts + a.scheduled().flaps + a.scheduled().crashes,
            0u);
  // A different fault seed draws a different timeline (arrival counts may
  // coincide for one mechanism, but not plausibly for all three).
  EXPECT_TRUE(a.scheduled().bursts != c.scheduled().bursts ||
              a.scheduled().flaps != c.scheduled().flaps ||
              a.scheduled().crashes != c.scheduled().crashes);
}

TEST(FaultInjector, MonitorNodeIsNeverCrashed) {
  FaultPlan plan;
  plan.node_crash_rate_per_s = 1.0;  // ~100 crashes over the run
  plan.node_crash_down_s = 50;       // long outages => overlap is common
  constexpr NodeId kMonitor = 2;
  Simulator sim(9);
  FaultInjector injector(sim, plan, /*node_count=*/5, kMonitor,
                         /*duration=*/100);
  ASSERT_GT(injector.scheduled().crashes, 0u);

  bool monitor_ever_down = false;
  bool other_ever_down = false;
  for (int t = 1; t <= 100; ++t) {
    sim.at(t, [&] {
      monitor_ever_down |= injector.node_down(kMonitor);
      for (NodeId n = 0; n < 5; ++n)
        if (n != kMonitor) other_ever_down |= injector.node_down(n);
    });
  }
  sim.run_until(100);
  EXPECT_FALSE(monitor_ever_down);
  EXPECT_TRUE(other_ever_down);
}

class FaultScenarioTest : public ::testing::Test {
 protected:
  // Force live simulation; cache hits would mask the injected chaos.
  void SetUp() override {
    setenv("XFA_NO_CACHE", "1", 1);
    refresh_env_for_testing();
  }
  void TearDown() override {
    unsetenv("XFA_NO_CACHE");
    unsetenv("XFA_SCENARIO_RETRIES");
    refresh_env_for_testing();
  }
};

TEST_F(FaultScenarioTest, ChaosReachesTheChannelAndAltersTheTrace) {
  const ScenarioConfig clean = small_config();
  const ScenarioResult baseline = run_scenario(clean);

  ScenarioConfig faulty = small_config();
  faulty.faults = benign_chaos();
  const ScenarioResult chaotic = run_scenario(faulty);

  const ChannelStats& stats = chaotic.summary.channel;
  EXPECT_GT(stats.fault_corrupted, 0u);
  EXPECT_GT(stats.fault_duplicates, 0u);
  // Flaps/bursts/crashes are Poisson; at least one mechanism must have
  // produced observable drops over 150 s of the canonical preset.
  EXPECT_GT(stats.fault_link_drops + stats.fault_burst_losses +
                stats.fault_suppressed_tx,
            0u);
  EXPECT_NE(chaotic.trace.rows, baseline.trace.rows);

  // The baseline run saw no fault machinery at all.
  const ChannelStats& clean_stats = baseline.summary.channel;
  EXPECT_EQ(clean_stats.fault_corrupted + clean_stats.fault_duplicates +
                clean_stats.fault_link_drops + clean_stats.fault_burst_losses +
                clean_stats.fault_suppressed_tx,
            0u);
}

TEST_F(FaultScenarioTest, DegenerateScenarioSurfacesAfterBoundedRetries) {
  // duration < sample_interval yields a trace with no samples regardless of
  // seed, so every derived-seed retry stays degenerate — deterministically.
  ScenarioConfig config = small_config();
  config.duration = 1;

  const Result<ScenarioResult> result = run_scenario_checked(config);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDegenerateData);
  // Default retry budget: 1 initial + 2 retries.
  EXPECT_NE(result.status().message().find("3 attempt"), std::string::npos)
      << result.status().message();

  setenv("XFA_SCENARIO_RETRIES", "0", 1);
  refresh_env_for_testing();
  const Result<ScenarioResult> no_retry = run_scenario_checked(config);
  ASSERT_FALSE(no_retry.ok());
  EXPECT_NE(no_retry.status().message().find("1 attempt"), std::string::npos)
      << no_retry.status().message();
}

}  // namespace
}  // namespace xfa
