// Unit tests: DSR route cache and agent behaviour on fixed topologies.
#include <gtest/gtest.h>

#include <memory>

#include "audit/audit.h"
#include "mobility/static.h"
#include "net/channel.h"
#include "net/node.h"
#include "routing/dsr/dsr.h"
#include "sim/simulator.h"
#include "transport/cbr.h"

namespace xfa {
namespace {

// ---------------------------------------------------------------------------
// Route cache.
// ---------------------------------------------------------------------------

TEST(DsrRouteCache, AddAndBestPath) {
  DsrRouteCache cache;
  EXPECT_TRUE(cache.add_path({1, 2, 5}, 0, 0.0));
  EXPECT_TRUE(cache.add_path({3, 5}, 0, 0.0));
  const DsrCachePath* best = cache.best_path(5, 1.0);
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->hops, (std::vector<NodeId>{3, 5}));  // shortest wins
}

TEST(DsrRouteCache, FreshnessDominatesLength) {
  DsrRouteCache cache;
  cache.add_path({3, 5}, 0, 0.0);
  cache.add_path({1, 2, 4, 5}, kMaxSeqNo, 0.0);  // forged fresh, longer
  EXPECT_EQ(cache.best_path(5, 1.0)->freshness, kMaxSeqNo);
}

TEST(DsrRouteCache, DuplicateRefreshesNotDuplicates) {
  DsrRouteCache cache;
  EXPECT_TRUE(cache.add_path({1, 5}, 0, 0.0));
  EXPECT_FALSE(cache.add_path({1, 5}, 0, 1.0));  // same path: refresh only
  EXPECT_EQ(cache.path_count(2.0), 1u);
}

TEST(DsrRouteCache, CapacityEvictsWorst) {
  DsrRouteCache cache(/*max_paths_per_dst=*/2);
  cache.add_path({1, 5}, 5, 0.0);
  cache.add_path({2, 5}, 9, 0.0);
  cache.add_path({3, 4, 5}, 7, 0.0);  // evicts freshness-5 path
  EXPECT_EQ(cache.path_count(1.0), 2u);
  EXPECT_EQ(cache.best_path(5, 1.0)->freshness, 9u);
}

TEST(DsrRouteCache, RemoveLinkDropsAffectedPaths) {
  DsrRouteCache cache;
  cache.add_path({1, 2, 5}, 0, 0.0);  // owner->1->2->5 uses link 1-2
  cache.add_path({3, 5}, 0, 0.0);
  EXPECT_EQ(cache.remove_link(1, 2, /*owner=*/0), 1u);
  EXPECT_EQ(cache.best_path(5, 1.0)->hops, (std::vector<NodeId>{3, 5}));
}

TEST(DsrRouteCache, RemoveFirstHopLink) {
  DsrRouteCache cache;
  cache.add_path({1, 2, 5}, 0, 0.0);
  // The owner-to-first-hop link is implicit: owner=0, link 0-1.
  EXPECT_EQ(cache.remove_link(0, 1, /*owner=*/0), 1u);
  EXPECT_EQ(cache.best_path(5, 1.0), nullptr);
}

TEST(DsrRouteCache, ExpiryPurge) {
  DsrRouteCache cache(3, /*path_lifetime=*/10.0);
  cache.add_path({1, 5}, 0, 0.0);
  EXPECT_EQ(cache.best_path(5, 20.0), nullptr);
  EXPECT_EQ(cache.purge_expired(20.0), 1u);
}

TEST(DsrRouteCache, AveragePathLength) {
  DsrRouteCache cache;
  cache.add_path({1, 5}, 0, 0.0);        // 2 hops
  cache.add_path({1, 2, 3, 6}, 0, 0.0);  // 4 hops
  EXPECT_DOUBLE_EQ(cache.average_path_length(1.0), 3.0);
}

// ---------------------------------------------------------------------------
// Agent on fixed line topologies.
// ---------------------------------------------------------------------------

struct DsrRig {
  DsrRig(std::size_t n, double spacing, double range = 250)
      : sim(11), mobility(StaticPositions::line(n, spacing)) {
    ChannelConfig config;
    config.range_m = range;
    config.max_jitter_s = 0.0005;
    config.promiscuous_taps = true;  // DSR eavesdrops
    channel = std::make_unique<Channel>(sim, mobility, config);
    for (NodeId i = 0; i < static_cast<NodeId>(n); ++i) {
      nodes.push_back(std::make_unique<Node>(sim, *channel, i));
      channel->register_node(*nodes.back());
      audits.push_back(std::make_unique<AuditLog>());
      nodes.back()->attach_audit(audits.back().get());
      nodes.back()->set_routing(std::make_unique<Dsr>(*nodes.back()));
      nodes.back()->routing().start();
    }
  }

  Dsr& dsr(NodeId id) {
    return static_cast<Dsr&>(nodes[static_cast<std::size_t>(id)]->routing());
  }
  Node& node(NodeId id) { return *nodes[static_cast<std::size_t>(id)]; }
  AuditLog& audit(NodeId id) {
    return *audits[static_cast<std::size_t>(id)];
  }

  Simulator sim;
  StaticPositions mobility;
  std::unique_ptr<Channel> channel;
  std::vector<std::unique_ptr<Node>> nodes;
  std::vector<std::unique_ptr<AuditLog>> audits;
};

TEST(DsrAgent, DeliversOverMultipleHops) {
  DsrRig rig(5, 200);
  CbrSink sink(rig.node(4), 1);
  rig.node(0).send_data(4, 1, 0, 512, false);
  rig.sim.run_until(5.0);
  EXPECT_EQ(sink.packets_received(), 1u);
  const DsrCachePath* path = rig.dsr(0).cache().best_path(4, rig.sim.now());
  ASSERT_NE(path, nullptr);
  EXPECT_EQ(path->hops, (std::vector<NodeId>{1, 2, 3, 4}));
}

TEST(DsrAgent, BuffersDuringDiscoveryAndFlushes) {
  DsrRig rig(3, 200);
  CbrSink sink(rig.node(2), 1);
  for (std::uint32_t s = 0; s < 5; ++s)
    rig.node(0).send_data(2, 1, s, 512, false);
  rig.sim.run_until(5.0);
  EXPECT_EQ(sink.packets_received(), 5u);
}

TEST(DsrAgent, SecondSendIsCacheFind) {
  DsrRig rig(3, 200);
  CbrSink sink(rig.node(2), 1);
  rig.node(0).send_data(2, 1, 0, 512, false);
  rig.sim.run_until(5.0);
  const auto finds_before =
      rig.audit(0).route_event_times(RouteEventKind::Find).size();
  rig.node(0).send_data(2, 1, 1, 512, false);
  rig.sim.run_until(6.0);
  EXPECT_EQ(sink.packets_received(), 2u);
  EXPECT_EQ(rig.audit(0).route_event_times(RouteEventKind::Find).size(),
            finds_before + 1);
}

TEST(DsrAgent, PromiscuousNoticeLearnsRoutesFromOverhearing) {
  DsrRig rig(3, 200);
  CbrSink sink(rig.node(2), 1);
  rig.node(0).send_data(2, 1, 0, 512, false);
  rig.sim.run_until(5.0);
  ASSERT_EQ(sink.packets_received(), 1u);
  // Node 0 and node 2 are out of each other's range, but node 0's unicasts
  // to node 1 were overheard... the interesting overhearer is node 2's side:
  // every node that heard traffic should have learned something.
  EXPECT_GT(rig.audit(1).route_event_times(RouteEventKind::Notice)
                .size(),
            0u);
}

TEST(DsrAgent, IntermediateCacheReply) {
  DsrRig rig(4, 200);
  CbrSink sink2(rig.node(2), 1);
  CbrSink sink3(rig.node(3), 2);
  // First, 1->3 traffic teaches node 1 a route to 3.
  rig.node(1).send_data(3, 2, 0, 512, false);
  rig.sim.run_until(5.0);
  ASSERT_EQ(sink3.packets_received(), 1u);
  ASSERT_NE(rig.dsr(1).cache().best_path(3, rig.sim.now()), nullptr);

  // Now node 0 discovers 3: node 1 can answer from cache.
  const auto finds_before =
      rig.audit(1).route_event_times(RouteEventKind::Find).size();
  CbrSink sink3b(rig.node(3), 3);
  rig.node(0).send_data(3, 3, 0, 512, false);
  rig.sim.run_until(10.0);
  EXPECT_EQ(sink3b.packets_received(), 1u);
  EXPECT_GE(rig.audit(1).route_event_times(RouteEventKind::Find).size(),
            finds_before);
}

TEST(DsrAgent, LinkBreakSalvageOrRerr) {
  DsrRig rig(4, 200);
  CbrSink sink(rig.node(3), 1);
  rig.node(0).send_data(3, 1, 0, 512, false);
  rig.sim.run_until(5.0);
  ASSERT_EQ(sink.packets_received(), 1u);

  rig.mobility.move(3, {10000, 10000});
  rig.node(0).send_data(3, 1, 1, 512, false);
  rig.sim.run_until(10.0);
  // Node 2 (the failure point) reported the broken link.
  EXPECT_GE(rig.audit(2)
                .packet_times(AuditPacketType::RouteError, FlowDirection::Sent)
                .size(),
            1u);
  EXPECT_GE(
      rig.audit(2).route_event_times(RouteEventKind::Remove).size(),
      1u);
}

TEST(DsrAgent, UnreachableDestinationDropsAfterRetries) {
  DsrRig rig(2, 10000);
  rig.node(0).send_data(1, 1, 0, 512, false);
  rig.sim.run_until(30.0);
  EXPECT_EQ(rig.node(1).data_delivered(), 0u);
  EXPECT_GE(rig.dsr(0).stats().discoveries_failed, 1u);
}

TEST(DsrAgent, RerrReachesSourceAndCleansItsCache) {
  DsrRig rig(4, 200);
  CbrSink sink(rig.node(3), 1);
  rig.node(0).send_data(3, 1, 0, 512, false);
  rig.sim.run_until(5.0);
  ASSERT_EQ(sink.packets_received(), 1u);
  ASSERT_NE(rig.dsr(0).cache().best_path(3, rig.sim.now()), nullptr);

  rig.mobility.move(3, {100000, 0});
  rig.node(0).send_data(3, 1, 1, 512, false);
  rig.sim.run_until(10.0);
  // The source heard the ROUTE ERROR (relayed through node 1).
  EXPECT_GE(rig.audit(0)
                .packet_times(AuditPacketType::RouteError,
                              FlowDirection::Received)
                .size(),
            1u);
  // Any surviving cached path to 3 cannot use the broken 2-3 link.
  const DsrCachePath* path = rig.dsr(0).cache().best_path(3, rig.sim.now());
  if (path != nullptr) {
    NodeId prev = 0;
    for (const NodeId hop : path->hops) {
      EXPECT_FALSE(prev == 2 && hop == 3);
      prev = hop;
    }
  }
}

TEST(DsrAgent, SalvageUsesAlternatePath) {
  // Diamond: 0 reaches 3 via 1 (0-1-3) or via 2 (0-2-3). After 1 dies,
  // node 0 must repair onto the 0-2-3 path.
  DsrRig rig(4, 10000);  // spread out, then place by hand
  rig.mobility.move(0, {0, 0});
  rig.mobility.move(1, {200, 100});
  rig.mobility.move(2, {200, -100});
  rig.mobility.move(3, {400, 0});
  CbrSink sink(rig.node(3), 1);
  CbrSource source(rig.node(0), 3, 1, 1.0, 512, 0.5, 300.0);
  rig.sim.run_until(20.0);
  const auto before = sink.packets_received();
  ASSERT_GT(before, 10u);

  rig.mobility.move(1, {100000, 0});
  rig.sim.run_until(60.0);
  EXPECT_GT(sink.packets_received(), before + 20)
      << "traffic must keep flowing over the alternate branch";
}

TEST(DsrAgent, BogusAdvertPoisonsOverhearers) {
  DsrRig rig(3, 200);
  rig.sim.run_until(1.0);
  // Node 1 forges "victim 0 is one hop behind me".
  rig.dsr(1).inject_bogus_route_advert(0);
  rig.sim.run_until(2.0);
  const DsrCachePath* poisoned = rig.dsr(2).cache().best_path(0, rig.sim.now());
  ASSERT_NE(poisoned, nullptr);
  EXPECT_EQ(poisoned->freshness, kMaxSeqNo);
  EXPECT_EQ(poisoned->hops.front(), 1);  // via the attacker
}

TEST(DsrAgent, MaliciousFilterDropsAndAudits) {
  DsrRig rig(3, 200);
  CbrSink sink(rig.node(2), 1);
  rig.node(1).add_forward_filter(
      [](const Packet& pkt) { return pkt.dst == 2; });
  rig.node(0).send_data(2, 1, 0, 512, false);
  rig.sim.run_until(10.0);
  EXPECT_EQ(sink.packets_received(), 0u);
  EXPECT_GE(rig.dsr(1).stats().data_dropped_malicious, 1u);
}

// Property sweep: delivery works across chain lengths and spacings.
class DsrChainTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, double>> {};

TEST_P(DsrChainTest, ChainDelivery) {
  const auto [n, spacing] = GetParam();
  DsrRig rig(n, spacing);
  CbrSink sink(rig.node(static_cast<NodeId>(n - 1)), 1);
  rig.node(0).send_data(static_cast<NodeId>(n - 1), 1, 0, 512, false);
  rig.sim.run_until(10.0);
  EXPECT_EQ(sink.packets_received(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, DsrChainTest,
                         ::testing::Combine(::testing::Values(2u, 3u, 6u, 9u),
                                            ::testing::Values(100.0, 240.0)));

}  // namespace
}  // namespace xfa
