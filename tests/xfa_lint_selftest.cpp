// Self-test for the xfa_lint framework: lexer edge cases, one positive and
// one negative fixture per rule, the graph-rule mini trees, suppression
// accounting, and the README rule-table drift check.
//
// XFA_LINT_FIXTURES and XFA_LINT_REPO_ROOT are provided by CMake.

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/include_graph.h"
#include "lint/lint.h"
#include "lint/report.h"
#include "lint/rules.h"
#include "lint/token.h"

namespace xfa::lint {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture: " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::string fixture(const std::string& name) {
  return read_file(std::string{XFA_LINT_FIXTURES} + "/rules/" + name);
}

/// Lints one fixture file under a crafted rel path (directory-scoped rules
/// key off the path) and returns the active finding rule ids.
std::vector<std::string> rules_fired(const std::string& rel,
                                     const std::string& name) {
  const LintResult r = lint_source(rel, fixture(name));
  std::vector<std::string> ids;
  for (const Finding& f : r.findings) ids.push_back(f.rule);
  return ids;
}

bool fired(const std::vector<std::string>& ids, const std::string& rule) {
  return std::find(ids.begin(), ids.end(), rule) != ids.end();
}

// --- lexer -----------------------------------------------------------------

std::vector<Token> lex_kind(const std::string& text, TokenKind kind) {
  std::vector<Token> out;
  for (const Token& t : lex(text))
    if (t.kind == kind) out.push_back(t);
  return out;
}

TEST(Lexer, RawStringWithCustomDelimiterSwallowsTriggers) {
  const std::string text =
      "const char* t = R\"xy(srand(1); \"quoted\" )\" )xy\";\nint after;\n";
  const auto strings = lex_kind(text, TokenKind::kString);
  ASSERT_EQ(strings.size(), 1u);
  // Everything between the custom delimiters is one string token, including
  // the plain `)\"` that would close a default raw string.
  EXPECT_NE(token_text(text, strings[0]).find("srand"), std::string::npos);
  std::vector<std::string> idents;
  for (const Token& t : lex_kind(text, TokenKind::kIdentifier))
    idents.emplace_back(token_text(text, t));
  EXPECT_EQ(std::count(idents.begin(), idents.end(), "srand"), 0);
  EXPECT_EQ(std::count(idents.begin(), idents.end(), "after"), 1);
}

TEST(Lexer, EncodingPrefixedRawString) {
  const std::string text = "auto s = u8R\"(no \"escape\" here)\";";
  ASSERT_EQ(lex_kind(text, TokenKind::kString).size(), 1u);
}

TEST(Lexer, DigitSeparatorsStayOneNumber) {
  const std::string text = "auto n = 1'000'000 + 0x1F'FFp3 + 0b1010'0101;";
  const auto numbers = lex_kind(text, TokenKind::kNumber);
  ASSERT_EQ(numbers.size(), 3u);
  EXPECT_EQ(token_text(text, numbers[0]), "1'000'000");
}

TEST(Lexer, LineContinuationInsideLineComment) {
  // The splice glues the second physical line onto the comment, so
  // `assert` never becomes a code token.
  const std::string text = "// trailing splice \\\nassert(x);\nint real;\n";
  std::vector<std::string> idents;
  for (const Token& t : lex_kind(text, TokenKind::kIdentifier))
    idents.emplace_back(token_text(text, t));
  EXPECT_EQ(std::count(idents.begin(), idents.end(), "assert"), 0);
  EXPECT_EQ(std::count(idents.begin(), idents.end(), "real"), 1);
}

TEST(Lexer, LineContinuationExtendsDirective) {
  const std::string text = "#define LONG_MACRO(a) \\\n  ((a) + 1)\nint x;\n";
  const auto pp = lex_kind(text, TokenKind::kPreprocessor);
  ASSERT_EQ(pp.size(), 1u);
  EXPECT_NE(token_text(text, pp[0]).find("+ 1"), std::string::npos);
}

TEST(Lexer, BlockCommentsDoNotNest) {
  // C++ block comments end at the FIRST `*/`; the tail is real code.
  const std::string text = "/* outer /* inner */ int visible; /* x */";
  std::vector<std::string> idents;
  for (const Token& t : lex_kind(text, TokenKind::kIdentifier))
    idents.emplace_back(token_text(text, t));
  EXPECT_EQ(std::count(idents.begin(), idents.end(), "visible"), 1);
  EXPECT_EQ(std::count(idents.begin(), idents.end(), "inner"), 0);
}

TEST(Lexer, MaximalMunchPunctuation) {
  const std::string text = "a <<= b; c <=> d; e ->* f; g :: h;";
  std::vector<std::string> puncts;
  for (const Token& t : lex_kind(text, TokenKind::kPunct))
    puncts.emplace_back(token_text(text, t));
  EXPECT_TRUE(std::find(puncts.begin(), puncts.end(), "<<=") != puncts.end());
  EXPECT_TRUE(std::find(puncts.begin(), puncts.end(), "<=>") != puncts.end());
  EXPECT_TRUE(std::find(puncts.begin(), puncts.end(), "->*") != puncts.end());
  EXPECT_TRUE(std::find(puncts.begin(), puncts.end(), "::") != puncts.end());
}

TEST(Lexer, HashMidLineIsNotADirective) {
  const std::string text = "int a = 1;\n#define REAL 2\nauto s = \"#fake\";";
  const auto pp = lex_kind(text, TokenKind::kPreprocessor);
  ASSERT_EQ(pp.size(), 1u);
  EXPECT_NE(token_text(text, pp[0]).find("REAL"), std::string::npos);
}

// --- trap file: triggers only inside comments/strings ----------------------

TEST(Rules, TrapFileStaysSilent) {
  const LintResult r = lint_source("ml/traps.cpp", fixture("traps.cpp"));
  EXPECT_TRUE(r.findings.empty())
      << render_text(r) << "token rules must ignore comments and strings";
}

// --- one positive / one negative fixture per file rule ----------------------

TEST(Rules, RngDeterminism) {
  const auto pos = rules_fired("sim/seed.cpp", "rng_pos.cpp");
  EXPECT_TRUE(fired(pos, "rng-determinism"));
  EXPECT_TRUE(rules_fired("sim/rng.cpp", "rng_neg.cpp").empty());
}

TEST(Rules, NoRawAssert) {
  EXPECT_TRUE(fired(rules_fired("ml/math.cpp", "assert_pos.cpp"),
                    "no-raw-assert"));
  EXPECT_FALSE(fired(rules_fired("ml/math.cpp", "assert_neg.cpp"),
                     "no-raw-assert"));
}

TEST(Rules, PragmaOnce) {
  EXPECT_TRUE(fired(rules_fired("ml/missing.h", "pragma_pos.h"),
                    "pragma-once"));
  EXPECT_FALSE(fired(rules_fired("ml/guarded.h", "pragma_neg.h"),
                     "pragma-once"));
}

TEST(Rules, ExecOnlyThreads) {
  EXPECT_TRUE(fired(rules_fired("net/worker.cpp", "threads_pos.cpp"),
                    "exec-only-threads"));
  EXPECT_FALSE(fired(rules_fired("exec/pool_impl.cpp", "threads_neg.cpp"),
                     "exec-only-threads"));
}

TEST(Rules, HoistOrGrid) {
  EXPECT_TRUE(fired(rules_fired("net/chan.cpp", "hoist_pos.cpp"),
                    "hoist-or-grid"));
  EXPECT_FALSE(fired(rules_fired("net/chan.cpp", "hoist_neg.cpp"),
                     "hoist-or-grid"));
}

TEST(Rules, ScratchScoring) {
  EXPECT_TRUE(fired(rules_fired("cfa/score.cpp", "scratch_pos.cpp"),
                    "scratch-scoring"));
  EXPECT_FALSE(fired(rules_fired("cfa/score.cpp", "scratch_neg.cpp"),
                     "scratch-scoring"));
}

TEST(Rules, StatusNotAbort) {
  EXPECT_TRUE(fired(rules_fired("scenario/loader.cpp", "status_pos.cpp"),
                    "status-not-abort"));
  EXPECT_FALSE(fired(rules_fired("scenario/tick.cpp", "status_neg.cpp"),
                     "status-not-abort"));
}

TEST(Rules, CheckNoSideEffects) {
  const auto pos = rules_fired("ml/checks.cpp", "sidefx_pos.cpp");
  EXPECT_EQ(std::count(pos.begin(), pos.end(), "check-no-side-effects"), 2);
  EXPECT_FALSE(fired(rules_fired("ml/checks.cpp", "sidefx_neg.cpp"),
                     "check-no-side-effects"));
}

TEST(Rules, NoMutableGlobal) {
  const auto pos = rules_fired("sim/globals.cpp", "global_pos.cpp");
  EXPECT_EQ(std::count(pos.begin(), pos.end(), "no-mutable-global"), 2);
  EXPECT_FALSE(fired(rules_fired("sim/clean.cpp", "global_neg.cpp"),
                     "no-mutable-global"));
}

// --- suppressions -----------------------------------------------------------

TEST(Rules, SuppressionsCountAndGoStale) {
  const LintResult r = lint_source("sim/seed2.cpp", fixture("suppress.cpp"));
  EXPECT_TRUE(r.findings.empty()) << render_text(r);
  ASSERT_EQ(r.suppressed.size(), 1u);
  EXPECT_EQ(r.suppressed[0].rule, "rng-determinism");
  EXPECT_NE(r.suppressed[0].suppress_reason.find("fixture demonstrates"),
            std::string::npos);
  ASSERT_EQ(r.unused_suppressions.size(), 1u);
  EXPECT_EQ(r.unused_suppressions[0].rule, "no-raw-assert");
}

// --- project rules over the mini trees --------------------------------------

TEST(GraphRules, CleanTreeHasNoFindings) {
  const LintResult r =
      run_lint(std::string{XFA_LINT_FIXTURES} + "/graph_pos");
  EXPECT_TRUE(r.findings.empty()) << render_text(r);
  EXPECT_EQ(r.files_scanned, 5u);
}

TEST(GraphRules, NegativeTreeSurfacesEachGraphRule) {
  const LintResult r =
      run_lint(std::string{XFA_LINT_FIXTURES} + "/graph_neg");
  std::vector<std::string> ids;
  for (const Finding& f : r.findings) ids.push_back(f.rule);
  EXPECT_TRUE(fired(ids, "include-layering")) << render_text(r);
  EXPECT_TRUE(fired(ids, "include-cycle")) << render_text(r);
  EXPECT_TRUE(fired(ids, "unused-include")) << render_text(r);
  EXPECT_TRUE(fired(ids, "cmake-registered")) << render_text(r);
  EXPECT_TRUE(fired(ids, "ordered-iteration")) << render_text(r);
}

TEST(GraphRules, LayerBandsMatchDeclaredDag) {
  EXPECT_EQ(layer_band("common"), 0);
  EXPECT_EQ(layer_band("exec"), 0);
  EXPECT_EQ(layer_band("sim"), 1);
  EXPECT_EQ(layer_band("net"), 1);
  EXPECT_EQ(layer_band("mobility"), 1);
  EXPECT_EQ(layer_band("routing"), 2);
  EXPECT_EQ(layer_band("transport"), 2);
  EXPECT_EQ(layer_band("attacks"), 2);
  EXPECT_EQ(layer_band("faults"), 2);
  EXPECT_EQ(layer_band("audit"), 2);
  EXPECT_EQ(layer_band("features"), 3);
  EXPECT_EQ(layer_band("ml"), 3);
  EXPECT_EQ(layer_band("cfa"), 3);
  EXPECT_EQ(layer_band("eval"), 3);
  EXPECT_EQ(layer_band("scenario"), 3);
  EXPECT_EQ(layer_band("tools"), -1);
}

// --- determinism of the parallel scan ---------------------------------------

TEST(Determinism, ReportIdenticalAcrossThreadCounts) {
  const std::string root = std::string{XFA_LINT_FIXTURES} + "/graph_neg";
  const LintResult a = run_lint(root, 1);
  const LintResult b = run_lint(root, 4);
  EXPECT_EQ(render_json(a), render_json(b));
  EXPECT_EQ(render_sarif(a), render_sarif(b));
}

// --- registry and docs -------------------------------------------------------

TEST(Registry, StableOrderAndLookup) {
  const auto& rules = rule_registry();
  EXPECT_GE(rules.size(), 14u);
  EXPECT_TRUE(std::is_sorted(
      rules.begin(), rules.end(),
      [](const RuleInfo& x, const RuleInfo& y) { return x.id < y.id; }));
  EXPECT_NE(find_rule("include-layering"), nullptr);
  EXPECT_EQ(find_rule("not-a-rule"), nullptr);
}

TEST(Docs, ReadmeRuleTableMatchesRegistry) {
  const std::string readme =
      read_file(std::string{XFA_LINT_REPO_ROOT} + "/README.md");
  const std::string begin = "<!-- xfa-lint-rules-begin -->";
  const std::string end = "<!-- xfa-lint-rules-end -->";
  const std::size_t b = readme.find(begin);
  const std::size_t e = readme.find(end);
  ASSERT_NE(b, std::string::npos) << "README.md lost the rule-table markers";
  ASSERT_NE(e, std::string::npos);
  const std::string embedded =
      readme.substr(b + begin.size(), e - b - begin.size());
  // The embedded block is exactly the generated table (modulo the
  // surrounding newlines the markers sit on).
  std::string expected = "\n" + render_rule_table();
  EXPECT_EQ(embedded, expected)
      << "README rule table drifted; regenerate with scripts/check.sh or "
         "`xfa_lint --list`";
}

}  // namespace
}  // namespace xfa::lint
