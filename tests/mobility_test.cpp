// Unit tests: random waypoint mobility model.
#include <gtest/gtest.h>

#include "mobility/waypoint.h"
#include "sim/rng.h"

namespace xfa {
namespace {

MobilityConfig small_field() {
  MobilityConfig config;
  config.field_width = 100;
  config.field_height = 100;
  config.max_speed = 10;
  config.pause_time = 1;
  return config;
}

TEST(Vec2Test, Arithmetic) {
  const Vec2 a{3, 4}, b{1, 2};
  EXPECT_EQ((a + b), (Vec2{4, 6}));
  EXPECT_EQ((a - b), (Vec2{2, 2}));
  EXPECT_EQ((a * 2.0), (Vec2{6, 8}));
  EXPECT_DOUBLE_EQ(a.norm(), 5.0);
  EXPECT_DOUBLE_EQ(distance(a, b), std::hypot(2, 2));
}

TEST(RandomWaypoint, PositionsStayInField) {
  const MobilityConfig config = small_field();
  RandomWaypointMobility mobility(10, config, Rng(1));
  for (NodeId n = 0; n < 10; ++n) {
    for (double t = 0; t < 500; t += 3.7) {
      const Vec2 p = mobility.position(n, t);
      EXPECT_GE(p.x, 0.0);
      EXPECT_LE(p.x, config.field_width);
      EXPECT_GE(p.y, 0.0);
      EXPECT_LE(p.y, config.field_height);
    }
  }
}

TEST(RandomWaypoint, SpeedWithinBounds) {
  const MobilityConfig config = small_field();
  RandomWaypointMobility mobility(10, config, Rng(2));
  for (NodeId n = 0; n < 10; ++n) {
    for (double t = 0; t < 200; t += 1.1) {
      const double v = mobility.speed(n, t);
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, config.max_speed);
    }
  }
}

TEST(RandomWaypoint, InitiallyPausedAtStartPosition) {
  const MobilityConfig config = small_field();
  RandomWaypointMobility mobility(3, config, Rng(3));
  const Vec2 p0 = mobility.position(0, 0.0);
  const Vec2 p_half = mobility.position(0, config.pause_time * 0.5);
  EXPECT_EQ(p0, p_half);
  EXPECT_DOUBLE_EQ(mobility.speed(0, 0.0), 0.0);
}

TEST(RandomWaypoint, EventuallyMoves) {
  const MobilityConfig config = small_field();
  RandomWaypointMobility mobility(3, config, Rng(4));
  const Vec2 start = mobility.position(1, 0.0);
  const Vec2 later = mobility.position(1, 50.0);
  EXPECT_NE(start, later);
}

TEST(RandomWaypoint, MovementSpeedMatchesReportedSpeed) {
  const MobilityConfig config = small_field();
  RandomWaypointMobility mobility(1, config, Rng(5));
  // Find a moving moment, then check displacement over a small dt.
  double t = 0;
  while (mobility.speed(0, t) == 0 && t < 100) t += 0.5;
  ASSERT_LT(t, 100.0) << "node never moved";
  const double v = mobility.speed(0, t);
  const Vec2 a = mobility.position(0, t);
  const Vec2 b = mobility.position(0, t + 0.01);
  if (mobility.speed(0, t + 0.01) == v) {  // still in the same segment
    EXPECT_NEAR(distance(a, b) / 0.01, v, 1e-6);
  }
}

TEST(RandomWaypoint, DeterministicAcrossInstances) {
  const MobilityConfig config = small_field();
  RandomWaypointMobility a(5, config, Rng(77));
  RandomWaypointMobility b(5, config, Rng(77));
  for (NodeId n = 0; n < 5; ++n) {
    for (double t = 0; t < 100; t += 7.3) {
      EXPECT_EQ(a.position(n, t), b.position(n, t));
    }
  }
}

TEST(RandomWaypoint, QueryOrderAcrossNodesDoesNotMatter) {
  const MobilityConfig config = small_field();
  RandomWaypointMobility a(4, config, Rng(88));
  RandomWaypointMobility b(4, config, Rng(88));
  // Advance node 3 far into the future on `a` before touching node 0.
  (void)a.position(3, 400.0);
  const Vec2 pa = a.position(0, 123.0);
  const Vec2 pb = b.position(0, 123.0);
  EXPECT_EQ(pa, pb);
}

// Property sweep: field bounds hold for a range of configurations.
class WaypointParamTest
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(WaypointParamTest, BoundsAndSpeedInvariants) {
  const auto [field, speed, pause] = GetParam();
  MobilityConfig config;
  config.field_width = field;
  config.field_height = field * 0.5;
  config.max_speed = speed;
  config.pause_time = pause;
  RandomWaypointMobility mobility(6, config, Rng(99));
  for (NodeId n = 0; n < 6; ++n) {
    for (double t = 0; t < 300; t += 4.9) {
      const Vec2 p = mobility.position(n, t);
      EXPECT_GE(p.x, 0.0);
      EXPECT_LE(p.x, config.field_width);
      EXPECT_GE(p.y, 0.0);
      EXPECT_LE(p.y, config.field_height);
      EXPECT_LE(mobility.speed(n, t), speed);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WaypointParamTest,
    ::testing::Combine(::testing::Values(200.0, 1000.0, 2000.0),
                       ::testing::Values(1.0, 20.0),
                       ::testing::Values(0.5, 10.0, 60.0)));

}  // namespace
}  // namespace xfa
