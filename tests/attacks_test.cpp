// Unit tests: intrusion schedules, black hole and selective dropping scripts.
#include <gtest/gtest.h>

#include <memory>

#include "attacks/blackhole.h"
#include "attacks/drop_variants.h"
#include "attacks/dropper.h"
#include "attacks/impersonation.h"
#include "attacks/onoff.h"
#include "attacks/storm.h"
#include "audit/audit.h"
#include "mobility/static.h"
#include "net/channel.h"
#include "net/node.h"
#include "routing/aodv/aodv.h"
#include "routing/dsr/dsr.h"
#include "sim/simulator.h"
#include "transport/cbr.h"

namespace xfa {
namespace {

TEST(IntrusionSchedule, PeriodicOnOffEqualPhases) {
  const auto schedule = IntrusionSchedule::periodic(100, 50);
  EXPECT_FALSE(schedule.active(99));
  EXPECT_TRUE(schedule.active(100));
  EXPECT_TRUE(schedule.active(149));
  EXPECT_FALSE(schedule.active(150));  // off phase, same length
  EXPECT_FALSE(schedule.active(199));
  EXPECT_TRUE(schedule.active(200));  // next session
  EXPECT_DOUBLE_EQ(schedule.first_start(), 100);
}

TEST(IntrusionSchedule, PeriodicWithEnd) {
  const auto schedule = IntrusionSchedule::periodic(100, 50, 250);
  EXPECT_TRUE(schedule.active(200));
  EXPECT_FALSE(schedule.active(300));
}

TEST(IntrusionSchedule, SessionsList) {
  const auto schedule =
      IntrusionSchedule::sessions({{2500, 100}, {5000, 100}, {7500, 100}});
  EXPECT_FALSE(schedule.active(2499));
  EXPECT_TRUE(schedule.active(2500));
  EXPECT_TRUE(schedule.active(2599));
  EXPECT_FALSE(schedule.active(2600));
  EXPECT_TRUE(schedule.active(5050));
  EXPECT_TRUE(schedule.active(7599));
  EXPECT_FALSE(schedule.active(9000));
  EXPECT_DOUBLE_EQ(schedule.first_start(), 2500);
}

TEST(IntrusionSchedule, NeverIsNeverActive) {
  const auto schedule = IntrusionSchedule::never();
  EXPECT_FALSE(schedule.active(0));
  EXPECT_FALSE(schedule.active(1e9));
  EXPECT_EQ(schedule.first_start(), kNever);
}

TEST(IntrusionSchedule, ActiveInWindow) {
  const auto schedule = IntrusionSchedule::sessions({{100, 10}});
  EXPECT_TRUE(schedule.active_in(95, 105));   // overlaps start
  EXPECT_TRUE(schedule.active_in(105, 115));  // overlaps end
  EXPECT_FALSE(schedule.active_in(80, 95));
  EXPECT_FALSE(schedule.active_in(115, 130));

  const auto periodic = IntrusionSchedule::periodic(100, 50);
  EXPECT_TRUE(periodic.active_in(140, 160));   // tail of session 1
  EXPECT_FALSE(periodic.active_in(160, 190));  // strictly inside off phase
  EXPECT_TRUE(periodic.active_in(190, 210));   // wraps into session 2
}

// --- Attack scripts on a fixed topology. ----------------------------------

template <typename Protocol>
struct AttackRig {
  AttackRig(std::size_t n, double spacing)
      : sim(31), mobility(StaticPositions::line(n, spacing)) {
    ChannelConfig config;
    config.max_jitter_s = 0.0005;
    config.promiscuous_taps = std::is_same_v<Protocol, Dsr>;
    channel = std::make_unique<Channel>(sim, mobility, config);
    for (NodeId i = 0; i < static_cast<NodeId>(n); ++i) {
      nodes.push_back(std::make_unique<Node>(sim, *channel, i));
      channel->register_node(*nodes.back());
      audits.push_back(std::make_unique<AuditLog>());
      nodes.back()->attach_audit(audits.back().get());
      nodes.back()->set_routing(std::make_unique<Protocol>(*nodes.back()));
      nodes.back()->routing().start();
    }
  }
  Node& node(NodeId id) { return *nodes[static_cast<std::size_t>(id)]; }
  AuditLog& audit(NodeId id) {
    return *audits[static_cast<std::size_t>(id)];
  }

  Simulator sim;
  StaticPositions mobility;
  std::unique_ptr<Channel> channel;
  std::vector<std::unique_ptr<Node>> nodes;
  std::vector<std::unique_ptr<AuditLog>> audits;
};

TEST(BlackholeAttackTest, AodvAbsorbsTrafficWhileActive) {
  // Chain 0-1-2; node 1 is compromised from t=10 onward.
  AttackRig<Aodv> rig(3, 200);
  CbrSink sink(rig.node(2), 1);
  BlackholeAttack attack(rig.node(1),
                         IntrusionSchedule::sessions({{10, 1000}}));
  attack.start();

  // Before the attack: traffic flows.
  CbrSource source(rig.node(0), 2, 1, 1.0, 512, 0.5, 200.0);
  rig.sim.run_until(9.0);
  const auto before = sink.packets_received();
  EXPECT_GT(before, 5u);

  rig.sim.run_until(100.0);
  const auto during = sink.packets_received() - before;
  // Nearly everything dies in the black hole.
  EXPECT_LT(during, 10u);
  EXPECT_GT(attack.adverts_sent(), 0u);
}

TEST(BlackholeAttackTest, InactiveOutsideSessions) {
  AttackRig<Aodv> rig(3, 200);
  CbrSink sink(rig.node(2), 1);
  BlackholeAttack attack(rig.node(1),
                         IntrusionSchedule::sessions({{1000, 10}}));
  attack.start();
  CbrSource source(rig.node(0), 2, 1, 1.0, 512, 0.5, 200.0);
  rig.sim.run_until(100.0);
  EXPECT_GT(sink.packets_received(), 80u);  // untouched before the session
  EXPECT_EQ(attack.adverts_sent(), 0u);
}

TEST(BlackholeAttackTest, DsrVariantPoisonsAndDrops) {
  AttackRig<Dsr> rig(3, 200);
  CbrSink sink(rig.node(2), 1);
  BlackholeAttack attack(rig.node(1),
                         IntrusionSchedule::sessions({{10, 1000}}));
  attack.start();
  CbrSource source(rig.node(0), 2, 1, 1.0, 512, 0.5, 200.0);
  rig.sim.run_until(9.0);
  const auto before = sink.packets_received();
  EXPECT_GT(before, 5u);
  rig.sim.run_until(100.0);
  EXPECT_LT(sink.packets_received() - before, 10u);
}

TEST(SelectiveDropTest, DropsOnlyTargetDestination) {
  // Chain 0-1-2 and 0-1-3 (3 placed near 2): node 1 drops traffic to 2 only.
  AttackRig<Aodv> rig(4, 200);
  rig.mobility.move(3, {400, 30});  // also behind node 1
  CbrSink sink2(rig.node(2), 1);
  CbrSink sink3(rig.node(3), 2);
  SelectiveDropAttack attack(rig.node(1), /*target_dst=*/2,
                             IntrusionSchedule::sessions({{0, 1e9}}));
  attack.start();
  CbrSource source2(rig.node(0), 2, 1, 1.0, 512, 0.5, 100.0);
  CbrSource source3(rig.node(0), 3, 2, 1.0, 512, 0.5, 100.0);
  rig.sim.run_until(100.0);
  EXPECT_EQ(sink2.packets_received(), 0u);
  EXPECT_GT(sink3.packets_received(), 80u);
  EXPECT_GT(attack.drops_matched(), 0u);
}

TEST(DropVariantsTest, ConstantDropsEverything) {
  AttackRig<Aodv> rig(3, 200);
  CbrSink sink(rig.node(2), 1);
  DropAttack attack(rig.node(1), DropSpec{DropMode::Constant},
                    IntrusionSchedule::sessions({{0, 1e9}}));
  attack.start();
  CbrSource source(rig.node(0), 2, 1, 2.0, 512, 0.5, 50.0);
  rig.sim.run_until(60.0);
  EXPECT_EQ(sink.packets_received(), 0u);
  EXPECT_GT(attack.drops_matched(), 50u);
}

TEST(DropVariantsTest, RandomDropsAboutTheRequestedFraction) {
  AttackRig<Aodv> rig(3, 200);
  CbrSink sink(rig.node(2), 1);
  DropSpec spec;
  spec.mode = DropMode::Random;
  spec.probability = 0.5;
  DropAttack attack(rig.node(1), spec, IntrusionSchedule::sessions({{0, 1e9}}));
  attack.start();
  CbrSource source(rig.node(0), 2, 1, 4.0, 512, 0.5, 100.0);
  rig.sim.run_until(110.0);
  const double delivered_fraction =
      static_cast<double>(sink.packets_received()) /
      static_cast<double>(source.packets_sent());
  EXPECT_GT(delivered_fraction, 0.3);
  EXPECT_LT(delivered_fraction, 0.7);
}

TEST(DropVariantsTest, SelectiveModeMatchesDedicatedScript) {
  AttackRig<Aodv> rig(3, 200);
  CbrSink sink(rig.node(2), 1);
  DropSpec spec;
  spec.mode = DropMode::Selective;
  spec.target_dst = 9;  // not the flow's destination
  DropAttack attack(rig.node(1), spec, IntrusionSchedule::sessions({{0, 1e9}}));
  attack.start();
  CbrSource source(rig.node(0), 2, 1, 2.0, 512, 0.5, 50.0);
  rig.sim.run_until(60.0);
  EXPECT_EQ(sink.packets_received(), source.packets_sent());
  EXPECT_EQ(attack.drops_matched(), 0u);
}

TEST(DropVariantsTest, ControlPacketsSurviveWhenDataOnly) {
  AttackRig<Aodv> rig(3, 200);
  DropAttack attack(rig.node(1), DropSpec{DropMode::Constant},
                    IntrusionSchedule::sessions({{0, 1e9}}));
  attack.start();
  // Discovery control traffic still relays through the dropper, so the
  // source can complete discovery even though data dies at node 1.
  rig.node(0).send_data(2, 1, 0, 512, false);
  rig.sim.run_until(10.0);
  const auto* aodv =
      static_cast<const Aodv*>(&rig.node(0).routing());
  EXPECT_NE(aodv->table().lookup(2, rig.sim.now()), nullptr);
}

TEST(UpdateStormTest, FloodsDiscoveryTraffic) {
  AttackRig<Aodv> rig(4, 200);
  UpdateStormConfig config;
  config.discoveries_per_second = 5.0;
  UpdateStormAttack attack(rig.node(1),
                           IntrusionSchedule::sessions({{10, 40}}), config);
  attack.start();
  rig.sim.run_until(9.0);
  const auto rreq_before =
      rig.audit(3)
          .packet_times(AuditPacketType::RouteRequest,
                        FlowDirection::Received)
          .size();
  rig.sim.run_until(50.0);
  const auto rreq_during =
      rig.audit(3)
          .packet_times(AuditPacketType::RouteRequest,
                        FlowDirection::Received)
          .size() -
      rreq_before;
  // The storm floods the whole network with meaningless RREQs.
  EXPECT_GT(attack.discoveries_triggered(), 100u);
  EXPECT_GT(rreq_during, 100u);
}

TEST(UpdateStormTest, QuietOutsideSessions) {
  AttackRig<Aodv> rig(3, 200);
  UpdateStormAttack attack(rig.node(1),
                           IntrusionSchedule::sessions({{1000, 10}}));
  attack.start();
  rig.sim.run_until(100.0);
  EXPECT_EQ(attack.discoveries_triggered(), 0u);
}

TEST(ImpersonationTest, VictimIsFramedAsSource) {
  AttackRig<Aodv> rig(4, 200);
  // Node 1 impersonates node 0, sending to node 3.
  struct CapturingSink final : TransportSink {
    void deliver(const Packet& pkt) override { sources.push_back(pkt.src); }
    std::vector<NodeId> sources;
  } sink;
  rig.node(3).register_sink(0, &sink);
  ImpersonationAttack attack(rig.node(1), /*victim=*/0, /*target=*/3,
                             IntrusionSchedule::sessions({{1, 30}}));
  attack.start();
  rig.sim.run_until(40.0);
  EXPECT_GT(attack.packets_forged(), 10u);
  ASSERT_FALSE(sink.sources.empty());
  for (const NodeId src : sink.sources) EXPECT_EQ(src, 0);
  // The true origin (node 1) shows no data/sent audit records: the forgery
  // is invisible at the network layer, as the paper argues.
  EXPECT_TRUE(rig.audit(1)
                  .packet_times(AuditPacketType::Data, FlowDirection::Sent)
                  .empty());
}

TEST(SelectiveDropTest, RespectsSchedule) {
  AttackRig<Aodv> rig(3, 200);
  CbrSink sink(rig.node(2), 1);
  SelectiveDropAttack attack(rig.node(1), 2,
                             IntrusionSchedule::periodic(20, 20, 100));
  attack.start();
  CbrSource source(rig.node(0), 2, 1, 2.0, 512, 0.5, 200.0);
  rig.sim.run_until(19.0);
  const auto before = sink.packets_received();
  EXPECT_GT(before, 30u);
  rig.sim.run_until(39.0);  // inside the on phase
  EXPECT_LT(sink.packets_received() - before, 5u);
  rig.sim.run_until(59.0);  // off phase: flows again
  EXPECT_GT(sink.packets_received() - before, 20u);
}

}  // namespace
}  // namespace xfa
