// Unit tests: the audit log (the per-node trace source).
#include <gtest/gtest.h>

#include "audit/audit.h"

namespace xfa {
namespace {

TEST(AuditLog, RecordsPacketStreamSeparately) {
  AuditLog log;
  log.record_packet(1.0, AuditPacketType::Data, FlowDirection::Sent);
  log.record_packet(2.0, AuditPacketType::Data, FlowDirection::Sent);
  log.record_packet(3.0, AuditPacketType::Data, FlowDirection::Received);
  EXPECT_EQ(
      log.packet_times(AuditPacketType::Data, FlowDirection::Sent).size(),
      2u);
  EXPECT_EQ(
      log.packet_times(AuditPacketType::Data, FlowDirection::Received).size(),
      1u);
  EXPECT_EQ(log.total_packet_records(), 3u);
}

TEST(AuditLog, ControlPacketsAggregateIntoRouteAll) {
  AuditLog log;
  log.record_packet(1.0, AuditPacketType::RouteRequest,
                    FlowDirection::Received);
  log.record_packet(2.0, AuditPacketType::RouteReply, FlowDirection::Received);
  log.record_packet(3.0, AuditPacketType::Hello, FlowDirection::Received);
  const auto& route_all =
      log.packet_times(AuditPacketType::RouteAll, FlowDirection::Received);
  EXPECT_EQ(route_all.size(), 3u);
  EXPECT_DOUBLE_EQ(route_all[0], 1.0);
  EXPECT_DOUBLE_EQ(route_all[2], 3.0);
  // Each physical observation counts once.
  EXPECT_EQ(log.total_packet_records(), 3u);
}

TEST(AuditLog, DataDoesNotAggregateIntoRouteAll) {
  AuditLog log;
  log.record_packet(1.0, AuditPacketType::Data, FlowDirection::Sent);
  EXPECT_TRUE(
      log.packet_times(AuditPacketType::RouteAll, FlowDirection::Sent)
          .empty());
}

TEST(AuditLog, RouteAllCanBeLoggedDirectly) {
  AuditLog log;
  // Encapsulated data forwarded at an intermediate hop.
  log.record_packet(5.0, AuditPacketType::RouteAll, FlowDirection::Forwarded);
  EXPECT_EQ(
      log.packet_times(AuditPacketType::RouteAll, FlowDirection::Forwarded)
          .size(),
      1u);
  EXPECT_EQ(log.total_packet_records(), 1u);
}

TEST(AuditLog, RouteEventsByKind) {
  AuditLog log;
  log.record_route_event(1.0, RouteEventKind::Add);
  log.record_route_event(2.0, RouteEventKind::Add);
  log.record_route_event(3.0, RouteEventKind::Remove);
  log.record_route_event(4.0, RouteEventKind::Notice);
  EXPECT_EQ(log.route_event_times(RouteEventKind::Add).size(), 2u);
  EXPECT_EQ(log.route_event_times(RouteEventKind::Remove).size(), 1u);
  EXPECT_EQ(log.route_event_times(RouteEventKind::Notice).size(), 1u);
  EXPECT_TRUE(log.route_event_times(RouteEventKind::Repair).empty());
  EXPECT_EQ(log.total_route_events(), 4u);
}

TEST(AuditLog, ClearResetsEverything) {
  AuditLog log;
  log.record_packet(1.0, AuditPacketType::Data, FlowDirection::Sent);
  log.record_route_event(1.0, RouteEventKind::Find);
  log.clear();
  EXPECT_EQ(log.total_packet_records(), 0u);
  EXPECT_EQ(log.total_route_events(), 0u);
  EXPECT_TRUE(
      log.packet_times(AuditPacketType::Data, FlowDirection::Sent).empty());
}

TEST(AuditLog, EnumNames) {
  EXPECT_STREQ(to_string(AuditPacketType::RouteRequest), "rreq");
  EXPECT_STREQ(to_string(FlowDirection::Dropped), "drop");
  EXPECT_STREQ(to_string(RouteEventKind::Notice), "notice");
}

// Property: timestamps within every stream remain sorted regardless of the
// interleaving of types/directions.
class AuditOrderTest : public ::testing::TestWithParam<int> {};

TEST_P(AuditOrderTest, StreamsStaySorted) {
  AuditLog log;
  const int streams = GetParam();
  double t = 0;
  for (int i = 0; i < 200; ++i) {
    t += 0.5;
    const auto type = static_cast<AuditPacketType>(i % streams);
    const auto dir = static_cast<FlowDirection>((i / streams) % 4);
    if (type == AuditPacketType::Data &&
        (dir == FlowDirection::Forwarded || dir == FlowDirection::Dropped))
      continue;
    log.record_packet(t, type, dir);
  }
  for (std::size_t s = 0; s < kAuditPacketTypeCount; ++s) {
    for (std::size_t d = 0; d < kFlowDirectionCount; ++d) {
      const auto& times = log.packet_times(static_cast<AuditPacketType>(s),
                                           static_cast<FlowDirection>(d));
      EXPECT_TRUE(std::is_sorted(times.begin(), times.end()));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, AuditOrderTest, ::testing::Values(2, 3, 6));

}  // namespace
}  // namespace xfa
