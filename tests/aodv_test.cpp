// Unit tests: AODV route table and agent behaviour on fixed topologies.
#include <gtest/gtest.h>

#include <memory>

#include "audit/audit.h"
#include "mobility/static.h"
#include "net/channel.h"
#include "net/node.h"
#include "routing/aodv/aodv.h"
#include "sim/simulator.h"
#include "transport/cbr.h"

namespace xfa {
namespace {

// ---------------------------------------------------------------------------
// Route table.
// ---------------------------------------------------------------------------

TEST(AodvRouteTable, AddLookupInvalidate) {
  AodvRouteTable table;
  EXPECT_EQ(table.lookup(5, 0.0), nullptr);
  EXPECT_EQ(table.update(5, 2, 3, 10, true, 100.0, 0.0), RouteUpdate::Added);
  const AodvRouteEntry* entry = table.lookup(5, 1.0);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->next_hop, 2);
  EXPECT_EQ(entry->hop_count, 3);
  EXPECT_TRUE(table.invalidate(5, 2.0));
  EXPECT_EQ(table.lookup(5, 3.0), nullptr);
  EXPECT_NE(table.lookup_any(5), nullptr);  // seqno memory survives
}

TEST(AodvRouteTable, FresherSeqnoWins) {
  AodvRouteTable table;
  table.update(5, 2, 3, 10, true, 100.0, 0.0);
  // Stale seqno rejected even with better hop count.
  EXPECT_EQ(table.update(5, 3, 1, 9, true, 100.0, 0.0),
            RouteUpdate::Rejected);
  // Fresher seqno accepted even with worse hop count.
  EXPECT_EQ(table.update(5, 4, 7, 11, true, 100.0, 0.0),
            RouteUpdate::Refreshed);
  EXPECT_EQ(table.lookup(5, 1.0)->next_hop, 4);
}

TEST(AodvRouteTable, EqualSeqnoPrefersFewerHops) {
  AodvRouteTable table;
  table.update(5, 2, 3, 10, true, 100.0, 0.0);
  EXPECT_EQ(table.update(5, 3, 2, 10, true, 100.0, 0.0),
            RouteUpdate::Refreshed);
  EXPECT_EQ(table.update(5, 4, 5, 10, true, 100.0, 0.0),
            RouteUpdate::Rejected);
}

TEST(AodvRouteTable, MaxSeqnoIsNeverSuperseded) {
  // The black hole persistence property the paper reports.
  AodvRouteTable table;
  table.update(5, 66, 1, kMaxSeqNo, true, 1e18, 0.0);
  EXPECT_EQ(table.update(5, 2, 1, 12345, true, 1e18, 1.0),
            RouteUpdate::Rejected);
  EXPECT_EQ(table.lookup(5, 2.0)->next_hop, 66);
}

TEST(AodvRouteTable, ExpiredEntryCanBeReplaced) {
  AodvRouteTable table;
  table.update(5, 2, 3, 10, true, 10.0, 0.0);
  // After expiry the entry is unusable, so even a stale seqno may replace it.
  EXPECT_EQ(table.update(5, 3, 2, 1, true, 100.0, 20.0), RouteUpdate::Added);
  EXPECT_EQ(table.lookup(5, 21.0)->next_hop, 3);
}

TEST(AodvRouteTable, ExpiryPurge) {
  AodvRouteTable table;
  table.update(5, 2, 3, 10, true, 10.0, 0.0);
  table.update(6, 2, 1, 4, true, 50.0, 0.0);
  EXPECT_EQ(table.lookup(5, 20.0), nullptr);  // expired entries don't match
  EXPECT_EQ(table.purge_expired(20.0), 1u);
  EXPECT_EQ(table.valid_route_count(20.0), 1u);
}

TEST(AodvRouteTable, InvalidateViaCollectsBrokenDestinations) {
  AodvRouteTable table;
  table.update(5, 2, 3, 10, true, 100.0, 0.0);
  table.update(6, 2, 2, 11, true, 100.0, 0.0);
  table.update(7, 3, 1, 12, true, 100.0, 0.0);
  const auto broken = table.invalidate_via(2, 1.0);
  EXPECT_EQ(broken.size(), 2u);
  EXPECT_EQ(table.lookup(7, 2.0)->next_hop, 3);
}

TEST(AodvRouteTable, AverageHopCount) {
  AodvRouteTable table;
  table.update(5, 2, 2, 10, true, 100.0, 0.0);
  table.update(6, 2, 4, 11, true, 100.0, 0.0);
  EXPECT_DOUBLE_EQ(table.average_hop_count(1.0), 3.0);
}

TEST(AodvRouteTable, InvalidationBumpsSeqnoForRecovery) {
  AodvRouteTable table;
  table.update(5, 2, 3, 10, true, 100.0, 0.0);
  table.invalidate(5, 1.0);
  EXPECT_EQ(table.lookup_any(5)->seqno, 11u);
}

// ---------------------------------------------------------------------------
// Agent on fixed line topologies.
// ---------------------------------------------------------------------------

struct AodvRig {
  AodvRig(std::size_t n, double spacing, double range = 250)
      : sim(9), mobility(StaticPositions::line(n, spacing)) {
    ChannelConfig config;
    config.range_m = range;
    config.max_jitter_s = 0.0005;
    config.promiscuous_taps = false;
    channel = std::make_unique<Channel>(sim, mobility, config);
    for (NodeId i = 0; i < static_cast<NodeId>(n); ++i) {
      nodes.push_back(std::make_unique<Node>(sim, *channel, i));
      channel->register_node(*nodes.back());
      audits.push_back(std::make_unique<AuditLog>());
      nodes.back()->attach_audit(audits.back().get());
      nodes.back()->set_routing(std::make_unique<Aodv>(*nodes.back()));
      nodes.back()->routing().start();
    }
  }

  Aodv& aodv(NodeId id) {
    return static_cast<Aodv&>(nodes[static_cast<std::size_t>(id)]->routing());
  }
  Node& node(NodeId id) { return *nodes[static_cast<std::size_t>(id)]; }
  AuditLog& audit(NodeId id) {
    return *audits[static_cast<std::size_t>(id)];
  }

  Simulator sim;
  StaticPositions mobility;
  std::unique_ptr<Channel> channel;
  std::vector<std::unique_ptr<Node>> nodes;
  std::vector<std::unique_ptr<AuditLog>> audits;
};

TEST(AodvAgent, DeliversOverMultipleHops) {
  // 5 nodes, 200 m apart with 250 m range: strictly a chain 0-1-2-3-4.
  AodvRig rig(5, 200);
  CbrSink sink(rig.node(4), /*flow_id=*/1);
  rig.node(0).send_data(4, 1, 0, 512, false);
  rig.sim.run_until(5.0);
  EXPECT_EQ(sink.packets_received(), 1u);
  EXPECT_EQ(rig.node(4).data_delivered(), 1u);
  // The route at the source spans 4 hops.
  const AodvRouteEntry* route = rig.aodv(0).table().lookup(4, rig.sim.now());
  ASSERT_NE(route, nullptr);
  EXPECT_EQ(route->hop_count, 4);
  EXPECT_EQ(route->next_hop, 1);
}

TEST(AodvAgent, RouteDiscoveryPopulatesIntermediateTables) {
  AodvRig rig(4, 200);
  CbrSink sink(rig.node(3), 1);
  rig.node(0).send_data(3, 1, 0, 512, false);
  rig.sim.run_until(5.0);
  // Node 1 must know both endpoints (reverse route to 0, forward to 3).
  EXPECT_NE(rig.aodv(1).table().lookup(0, rig.sim.now()), nullptr);
  EXPECT_NE(rig.aodv(1).table().lookup(3, rig.sim.now()), nullptr);
}

TEST(AodvAgent, BuffersDuringDiscoveryAndFlushes) {
  AodvRig rig(3, 200);
  CbrSink sink(rig.node(2), 1);
  // Burst of packets before any route exists.
  for (std::uint32_t s = 0; s < 5; ++s)
    rig.node(0).send_data(2, 1, s, 512, false);
  rig.sim.run_until(5.0);
  EXPECT_EQ(sink.packets_received(), 5u);
}

TEST(AodvAgent, SecondSendUsesCachedRoute) {
  AodvRig rig(3, 200);
  CbrSink sink(rig.node(2), 1);
  rig.node(0).send_data(2, 1, 0, 512, false);
  rig.sim.run_until(5.0);
  const auto rreq_before =
      rig.audit(0)
          .packet_times(AuditPacketType::RouteRequest, FlowDirection::Sent)
          .size();
  const auto finds_before =
      rig.audit(0).route_event_times(RouteEventKind::Find).size();
  rig.node(0).send_data(2, 1, 1, 512, false);
  rig.sim.run_until(6.0);
  EXPECT_EQ(sink.packets_received(), 2u);
  EXPECT_EQ(rig.audit(0)
                .packet_times(AuditPacketType::RouteRequest,
                              FlowDirection::Sent)
                .size(),
            rreq_before);  // no second discovery
  EXPECT_EQ(rig.audit(0).route_event_times(RouteEventKind::Find).size(),
            finds_before + 1);  // logged as a cache find
}

TEST(AodvAgent, UnreachableDestinationDropsAfterRetries) {
  // Node 2 is far beyond range of everyone.
  AodvRig rig(2, 10000);
  rig.node(0).send_data(1, 1, 0, 512, false);
  rig.sim.run_until(30.0);
  EXPECT_EQ(rig.node(1).data_delivered(), 0u);
  // The buffered packet was eventually dropped and audited as such.
  EXPECT_GE(rig.audit(0)
                .packet_times(AuditPacketType::RouteAll, FlowDirection::Dropped)
                .size(),
            1u);
  EXPECT_GE(rig.aodv(0).stats().discoveries_failed, 1u);
}

TEST(AodvAgent, HelloBeaconsDiscoverNeighbors) {
  AodvRig rig(2, 100);
  rig.sim.run_until(5.0);
  // Each node should have noticed the other via HELLO.
  EXPECT_NE(rig.aodv(0).table().lookup(1, rig.sim.now()), nullptr);
  EXPECT_NE(rig.aodv(1).table().lookup(0, rig.sim.now()), nullptr);
  EXPECT_GT(rig.audit(0)
                .packet_times(AuditPacketType::Hello, FlowDirection::Received)
                .size(),
            2u);
}

TEST(AodvAgent, LinkBreakTriggersRerrAndRemoval) {
  AodvRig rig(3, 200);
  CbrSink sink(rig.node(2), 1);
  rig.node(0).send_data(2, 1, 0, 512, false);
  rig.sim.run_until(5.0);
  ASSERT_EQ(sink.packets_received(), 1u);

  // Sever the 1-2 link and send again: node 1 must detect the failure,
  // remove the route and report RERR.
  rig.mobility.move(2, {10000, 10000});
  rig.node(0).send_data(2, 1, 1, 512, false);
  rig.sim.run_until(10.0);
  EXPECT_GE(rig.audit(1)
                .packet_times(AuditPacketType::RouteError, FlowDirection::Sent)
                .size(),
            1u);
  EXPECT_GE(
      rig.audit(1).route_event_times(RouteEventKind::Remove).size(),
      1u);
}

TEST(AodvAgent, RepairAfterBreakEventuallyRedelivers) {
  AodvRig rig(4, 200);
  CbrSink sink(rig.node(3), 1);
  rig.node(0).send_data(3, 1, 0, 512, false);
  rig.sim.run_until(5.0);
  ASSERT_EQ(sink.packets_received(), 1u);

  // Move node 1 out; a 0-2 hop is too long (400 m)... so instead move node 1
  // closer to 0 *and* keep chain: teleport node 1 to overlap node 2's
  // position, making 0-1 break but 0 now reaches node 2? 0 at x=0, range
  // 250: no. Realistic repair: break 2-3 but provide alternate 2'->3 via
  // node 1? Keep it simple: break the last hop and restore it.
  rig.mobility.move(3, {10000, 10000});
  rig.node(0).send_data(3, 1, 1, 512, false);
  rig.sim.run_until(8.0);
  const auto delivered_while_broken = sink.packets_received();
  EXPECT_EQ(delivered_while_broken, 1u);

  rig.mobility.move(3, {600, 0});  // back in the chain
  rig.node(0).send_data(3, 1, 2, 512, false);
  rig.sim.run_until(20.0);
  EXPECT_GE(sink.packets_received(), 2u);
}

TEST(AodvAgent, SilentNeighborTimesOut) {
  AodvRig rig(2, 100);
  rig.sim.run_until(5.0);
  ASSERT_NE(rig.aodv(0).table().lookup(1, rig.sim.now()), nullptr);
  // Node 1 disappears; after the allowed-hello-loss window its route (kept
  // alive only by beacons) must die at node 0.
  rig.mobility.move(1, {100000, 0});
  rig.sim.run_until(20.0);
  EXPECT_EQ(rig.aodv(0).table().lookup(1, rig.sim.now()), nullptr);
}

TEST(AodvAgent, RerrPropagatesUpstream) {
  // Chain 0-1-2-3; traffic 0->3; then 3 vanishes. Node 2 detects the break
  // on the next data packet and its RERR must reach node 1 (and node 0),
  // invalidating their routes to 3.
  AodvRig rig(4, 200);
  CbrSink sink(rig.node(3), 1);
  rig.node(0).send_data(3, 1, 0, 512, false);
  rig.sim.run_until(5.0);
  ASSERT_EQ(sink.packets_received(), 1u);
  ASSERT_NE(rig.aodv(1).table().lookup(3, rig.sim.now()), nullptr);

  rig.mobility.move(3, {100000, 0});
  rig.node(0).send_data(3, 1, 1, 512, false);
  rig.sim.run_until(8.0);
  EXPECT_GE(rig.audit(1)
                .packet_times(AuditPacketType::RouteError,
                              FlowDirection::Received)
                .size(),
            1u);
  EXPECT_EQ(rig.aodv(1).table().lookup(3, rig.sim.now()), nullptr);
}

TEST(AodvAgent, DataTtlExhaustionIsDropped) {
  // Poison a two-node loop by hand is hard through the public surface;
  // instead check that a packet with a tiny TTL entering a long chain dies
  // with a drop record instead of looping forever.
  AodvRig rig(6, 200);
  CbrSink sink(rig.node(5), 1);
  rig.node(0).send_data(5, 1, 0, 512, false);  // warm up the route
  rig.sim.run_until(5.0);
  ASSERT_EQ(sink.packets_received(), 1u);
  // Now inject a data packet with ttl=2 directly via the routing agent.
  Packet pkt;
  pkt.kind = PacketKind::Data;
  pkt.src = 0;
  pkt.dst = 5;
  pkt.flow_id = 1;
  pkt.seq = 99;
  pkt.ttl = 2;
  rig.aodv(0).send_data(std::move(pkt));
  rig.sim.run_until(10.0);
  EXPECT_EQ(sink.packets_received(), 1u);  // the low-TTL packet died en route
}

TEST(AodvAgent, BogusAdvertPoisonsNeighborsWithMaxSeqno) {
  AodvRig rig(3, 200);
  // Let HELLOs establish neighbor state first.
  rig.sim.run_until(3.0);
  // Node 1 (middle) advertises a bogus route for victim 0.
  rig.aodv(1).inject_bogus_route_advert(0);
  rig.sim.run_until(4.0);
  const AodvRouteEntry* poisoned =
      rig.aodv(2).table().lookup(0, rig.sim.now());
  ASSERT_NE(poisoned, nullptr);
  EXPECT_EQ(poisoned->next_hop, 1);
  EXPECT_EQ(poisoned->seqno, kMaxSeqNo);
  // A genuine discovery cannot displace the poisoned route (verified on a
  // copy of the update rule; the agent's table is read-only from outside).
  AodvRouteTable probe;
  probe.update(0, poisoned->next_hop, poisoned->hop_count, poisoned->seqno,
               true, rig.sim.now() + 1000, rig.sim.now());
  EXPECT_EQ(probe.update(0, 2, 1, 100, true, rig.sim.now() + 100,
                         rig.sim.now()),
            RouteUpdate::Rejected);
}

TEST(AodvAgent, MaliciousFilterDropsAndAudits) {
  AodvRig rig(3, 200);
  CbrSink sink(rig.node(2), 1);
  rig.node(1).add_forward_filter(
      [](const Packet& pkt) { return pkt.kind == PacketKind::Data; });
  rig.node(0).send_data(2, 1, 0, 512, false);
  rig.sim.run_until(10.0);
  EXPECT_EQ(sink.packets_received(), 0u);
  EXPECT_GE(rig.aodv(1).stats().data_dropped_malicious, 1u);
  EXPECT_GE(rig.audit(1)
                .packet_times(AuditPacketType::RouteAll, FlowDirection::Dropped)
                .size(),
            1u);
}

// Property sweep: delivery works across chain lengths and spacings.
class AodvChainTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, double>> {};

TEST_P(AodvChainTest, ChainDelivery) {
  const auto [n, spacing] = GetParam();
  AodvRig rig(n, spacing);
  CbrSink sink(rig.node(static_cast<NodeId>(n - 1)), 1);
  rig.node(0).send_data(static_cast<NodeId>(n - 1), 1, 0, 512, false);
  rig.sim.run_until(10.0);
  EXPECT_EQ(sink.packets_received(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, AodvChainTest,
                         ::testing::Combine(::testing::Values(2u, 3u, 6u, 9u),
                                            ::testing::Values(100.0, 240.0)));

}  // namespace
}  // namespace xfa
