// Regression guard for the centralized-RNG determinism rule (tools/xfa_lint
// bans stray entropy sources): the same scenario config must reproduce the
// exact same trace, byte for byte, on every run.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include "common/env.h"

#include "faults/plan.h"
#include "scenario/runner.h"

namespace xfa {
namespace {

/// Serializes every bit of a trace (times, feature rows, labels) so the
/// comparison is byte-exact, not within-epsilon.
std::string trace_bytes(const RawTrace& trace) {
  std::string bytes;
  const auto append = [&bytes](const void* data, std::size_t size) {
    bytes.append(static_cast<const char*>(data), size);
  };
  for (const SimTime t : trace.times) append(&t, sizeof(t));
  for (const auto& row : trace.rows)
    for (const double v : row) append(&v, sizeof(v));
  for (const int label : trace.labels) append(&label, sizeof(label));
  return bytes;
}

class DeterminismTest : public ::testing::Test {
 protected:
  // Force live simulation; a cache hit would make the comparison vacuous.
  void SetUp() override {
    setenv("XFA_NO_CACHE", "1", 1);
    refresh_env_for_testing();
  }
  void TearDown() override {
    unsetenv("XFA_NO_CACHE");
    refresh_env_for_testing();
  }
};

ScenarioConfig small_config() {
  ScenarioConfig config;
  config.node_count = 15;
  config.duration = 150;
  config.seed = 42;
  config.traffic.max_connections = 8;
  return config;
}

TEST_F(DeterminismTest, SameSeedReproducesByteIdenticalFeatureStream) {
  const ScenarioConfig config = small_config();
  const ScenarioResult first = run_scenario(config);
  const ScenarioResult second = run_scenario(config);

  ASSERT_EQ(first.trace.size(), second.trace.size());
  EXPECT_EQ(trace_bytes(first.trace), trace_bytes(second.trace));
  EXPECT_EQ(first.summary.scheduler_events, second.summary.scheduler_events);
  EXPECT_EQ(first.summary.data_delivered, second.summary.data_delivered);
}

TEST_F(DeterminismTest, AttackScenarioIsEquallyReproducible) {
  ScenarioConfig config = small_config();
  config.attacks = single_attack_sessions(AttackKind::Blackhole);
  const ScenarioResult first = run_scenario(config);
  const ScenarioResult second = run_scenario(config);
  EXPECT_EQ(trace_bytes(first.trace), trace_bytes(second.trace));
}

TEST_F(DeterminismTest, FaultPlanChaosIsByteDeterministic) {
  // The whole point of scheduling chaos from a dedicated seeded stream: the
  // same seed and the same FaultPlan must reproduce the exact same faulted
  // trace, byte for byte — including every burst, flap, crash, corrupted
  // frame and jittered delivery.
  ScenarioConfig config = small_config();
  config.faults = benign_chaos();
  const ScenarioResult first = run_scenario(config);
  const ScenarioResult second = run_scenario(config);
  EXPECT_EQ(trace_bytes(first.trace), trace_bytes(second.trace));
  EXPECT_EQ(first.summary.scheduler_events, second.summary.scheduler_events);
  EXPECT_EQ(first.summary.channel.fault_corrupted,
            second.summary.channel.fault_corrupted);
  EXPECT_EQ(first.summary.channel.fault_duplicates,
            second.summary.channel.fault_duplicates);

  // A different fault seed is a different scenario.
  config.faults.fault_seed += 1;
  const ScenarioResult reseeded = run_scenario(config);
  EXPECT_NE(trace_bytes(first.trace), trace_bytes(reseeded.trace));

  // And the fault layer left the fault-free path untouched.
  const ScenarioResult clean = run_scenario(small_config());
  EXPECT_NE(trace_bytes(first.trace), trace_bytes(clean.trace));
}

TEST_F(DeterminismTest, DifferentSeedsDiverge) {
  ScenarioConfig config = small_config();
  const ScenarioResult first = run_scenario(config);
  config.seed = 43;
  const ScenarioResult second = run_scenario(config);
  EXPECT_NE(trace_bytes(first.trace), trace_bytes(second.trace));
}

}  // namespace
}  // namespace xfa
