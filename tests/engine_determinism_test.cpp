// End-to-end engine determinism: a registered bench plan must print the
// exact same bytes whatever the shared pool size, cold cache or warm. This
// is the executable form of the "--threads only changes wall-clock, never
// bytes" contract in bench/registry.h and DESIGN.md §9.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>

#include "bench/registry.h"
#include "common/env.h"
#include "exec/thread_pool.h"

namespace xfa {
namespace {

class EngineDeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = ::testing::TempDir() + "xfa_engine_determinism";
    std::filesystem::remove_all(root_);
    std::filesystem::create_directories(root_);
    // Fast mode keeps the smoke traces small enough for the TSan pass.
    setenv("XFA_FAST", "1", 1);
  }
  void TearDown() override {
    std::filesystem::remove_all(root_);
    unsetenv("XFA_FAST");
    unsetenv("XFA_CACHE_DIR");
    refresh_env_for_testing();
    resize_shared_pool(1);
  }

  void use_cache_dir(const std::string& name) {
    const std::string dir = root_ + "/" + name;
    std::filesystem::create_directories(dir);
    setenv("XFA_CACHE_DIR", dir.c_str(), 1);
    refresh_env_for_testing();
  }

  static std::string run_plan(const bench::ExperimentPlan& plan) {
    ::testing::internal::CaptureStdout();
    const int code = plan.run();
    std::string output = ::testing::internal::GetCapturedStdout();
    EXPECT_EQ(code, 0);
    return output;
  }

  std::string root_;
};

TEST_F(EngineDeterminismTest, SmokePlanIsByteIdenticalAcrossThreadCounts) {
  const bench::ExperimentPlan* smoke = bench::find_plan("smoke");
  ASSERT_NE(smoke, nullptr);

  use_cache_dir("serial");
  resize_shared_pool(1);
  const std::string cold_serial = run_plan(*smoke);
  ASSERT_FALSE(cold_serial.empty());
  const std::string warm_serial = run_plan(*smoke);
  EXPECT_EQ(cold_serial, warm_serial) << "warm cache changed the bytes";

  use_cache_dir("parallel");  // fresh cache: a genuinely cold parallel run
  resize_shared_pool(8);
  const std::string cold_parallel = run_plan(*smoke);
  EXPECT_EQ(cold_serial, cold_parallel) << "--threads=8 changed the bytes";
  const std::string warm_parallel = run_plan(*smoke);
  EXPECT_EQ(cold_serial, warm_parallel);
}

TEST_F(EngineDeterminismTest, RegistryListsTheCorePlans) {
  for (const char* name : {"fig1", "fig2", "fig3", "fig4", "fig5", "fig6",
                           "table1_3", "table4_6", "smoke"})
    EXPECT_NE(bench::find_plan(name), nullptr) << name;
  EXPECT_EQ(bench::find_plan("no-such-plan"), nullptr);
}

}  // namespace
}  // namespace xfa
