// Unit tests: scenario config/cache-key discipline, labelling policies,
// trace cache round-trip, and small end-to-end scenario runs.
#include <gtest/gtest.h>

#include <cstdio>
#include "common/env.h"

#include "scenario/cache.h"
#include "scenario/pipeline.h"
#include "scenario/runner.h"

namespace xfa {
namespace {

ScenarioConfig small_config() {
  ScenarioConfig config;
  config.node_count = 15;
  config.duration = 200;
  config.seed = 5;
  config.traffic.max_connections = 10;
  return config;
}

TEST(ScenarioConfigTest, CacheKeyCoversBehaviourFields) {
  const ScenarioConfig base = small_config();
  EXPECT_EQ(base.cache_key(), small_config().cache_key());

  ScenarioConfig changed = base;
  changed.seed = 6;
  EXPECT_NE(changed.cache_key(), base.cache_key());
  changed = base;
  changed.routing = RoutingKind::Dsr;
  EXPECT_NE(changed.cache_key(), base.cache_key());
  changed = base;
  changed.transport = TransportKind::Tcp;
  EXPECT_NE(changed.cache_key(), base.cache_key());
  changed = base;
  changed.mobility_seed += 1;
  EXPECT_NE(changed.cache_key(), base.cache_key());
  changed = base;
  changed.traffic_seed += 1;
  EXPECT_NE(changed.cache_key(), base.cache_key());
  changed = base;
  changed.attacks = mixed_attacks();
  EXPECT_NE(changed.cache_key(), base.cache_key());
  changed = base;
  changed.attacks = single_attack_sessions(AttackKind::Blackhole);
  EXPECT_NE(changed.cache_key(), base.cache_key());
}

TEST(ScenarioConfigTest, ExtendedAttackKindsKeyedDistinctly) {
  ScenarioConfig base = small_config();
  base.attacks = single_attack_sessions(AttackKind::UpdateStorm);
  ScenarioConfig random_drop = small_config();
  random_drop.attacks = single_attack_sessions(AttackKind::RandomDrop);
  EXPECT_NE(base.cache_key(), random_drop.cache_key());
  ScenarioConfig other_probability = random_drop;
  other_probability.attacks[0].drop_probability = 0.9;
  EXPECT_NE(random_drop.cache_key(), other_probability.cache_key());
}

TEST(RunScenarioTest, UpdateStormAndRandomDropRun) {
  ScenarioConfig config = small_config();
  config.duration = 120;
  config.attacks = single_attack_sessions(AttackKind::UpdateStorm);
  config.attacks[0].schedule = ScheduleSpec::session_list({{30, 60}});
  const ScenarioResult storm = run_scenario(config);
  EXPECT_EQ(storm.trace.size(), 24u);

  config.attacks = single_attack_sessions(AttackKind::RandomDrop);
  config.attacks[0].schedule = ScheduleSpec::session_list({{30, 60}});
  const ScenarioResult drop = run_scenario(config);
  EXPECT_EQ(drop.trace.size(), 24u);
}

TEST(ScenarioConfigTest, MixedAttacksMatchPaperSetup) {
  const auto attacks = mixed_attacks();
  ASSERT_EQ(attacks.size(), 2u);
  EXPECT_EQ(attacks[0].kind, AttackKind::Blackhole);
  EXPECT_DOUBLE_EQ(attacks[0].schedule.start, 2500);
  EXPECT_EQ(attacks[1].kind, AttackKind::SelectiveDrop);
  EXPECT_DOUBLE_EQ(attacks[1].schedule.start, 5000);
  EXPECT_NE(attacks[0].attacker, attacks[1].attacker);
}

TEST(ScenarioConfigTest, SingleAttackSessionsMatchFigure5) {
  const auto attacks = single_attack_sessions(AttackKind::SelectiveDrop);
  ASSERT_EQ(attacks.size(), 1u);
  const auto& sessions = attacks[0].schedule.sessions;
  ASSERT_EQ(sessions.size(), 3u);
  EXPECT_DOUBLE_EQ(sessions[0].first, 2500);
  EXPECT_DOUBLE_EQ(sessions[1].first, 5000);
  EXPECT_DOUBLE_EQ(sessions[2].first, 7500);
  for (const auto& [start, duration] : sessions)
    EXPECT_DOUBLE_EQ(duration, 100);
}

TEST(LabelsTest, OnsetOnwardsLabelsEverythingAfterFirstStart) {
  RawTrace trace;
  for (int i = 1; i <= 10; ++i) trace.times.push_back(i * 100.0);
  trace.rows.assign(10, std::vector<double>(3, 0.0));
  ScenarioConfig config;
  config.attacks = single_attack_sessions(AttackKind::Blackhole);
  config.attacks[0].schedule =
      ScheduleSpec::session_list({{450, 100}});
  apply_labels(trace, config, LabelPolicy::OnsetOnwards);
  for (std::size_t i = 0; i < 10; ++i)
    EXPECT_EQ(trace.labels[i], trace.times[i] > 450 ? 1 : 0) << i;
}

TEST(LabelsTest, ActiveSessionsLabelsOnlyOverlappingWindows) {
  RawTrace trace;
  for (int i = 1; i <= 10; ++i) trace.times.push_back(i * 100.0);
  trace.rows.assign(10, std::vector<double>(3, 0.0));
  ScenarioConfig config;
  config.sample_interval = 100;
  config.attacks = single_attack_sessions(AttackKind::Blackhole);
  config.attacks[0].schedule = ScheduleSpec::session_list({{450, 100}});
  apply_labels(trace, config, LabelPolicy::ActiveSessions);
  // Session [450, 550): windows (400,500] and (500,600] overlap.
  const std::vector<int> expected = {0, 0, 0, 0, 1, 1, 0, 0, 0, 0};
  EXPECT_EQ(trace.labels, expected);
}

TEST(LabelsTest, NoAttacksMeansAllNormal) {
  RawTrace trace;
  trace.times = {5, 10};
  trace.rows.assign(2, std::vector<double>(3, 0.0));
  apply_labels(trace, small_config(), LabelPolicy::OnsetOnwards);
  EXPECT_EQ(trace.labels, (std::vector<int>{0, 0}));
}

TEST(TraceCacheTest, RoundTrip) {
  const std::string dir =
      ::testing::TempDir() + "/xfa_cache_test";
  TraceCache cache(dir);
  if (!cache.enabled()) GTEST_SKIP() << "cache disabled by environment";

  ScenarioResult result;
  result.trace.times = {5, 10, 15};
  result.trace.rows = {{1, 2}, {3, 4}, {5, 6}};
  result.summary.data_originated = 42;
  result.summary.packet_delivery_ratio = 0.9;
  result.summary.channel.transmissions = 7;
  cache.store("some-key", result);

  const auto loaded = cache.load("some-key");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->trace.times, result.trace.times);
  EXPECT_EQ(loaded->trace.rows, result.trace.rows);
  EXPECT_EQ(loaded->summary.data_originated, 42u);
  EXPECT_DOUBLE_EQ(loaded->summary.packet_delivery_ratio, 0.9);
  EXPECT_EQ(loaded->summary.channel.transmissions, 7u);

  EXPECT_FALSE(cache.load("different-key").has_value());
}

TEST(RunScenarioTest, SmallRunProducesSaneTrace) {
  const ScenarioConfig config = small_config();
  const ScenarioResult result = run_scenario(config);
  const std::size_t expected_samples =
      static_cast<std::size_t>(config.duration / config.sample_interval);
  EXPECT_EQ(result.trace.size(), expected_samples);
  EXPECT_EQ(result.trace.rows.front().size(),
            FeatureSchema::standard().size());
  EXPECT_EQ(result.trace.labels.size(), expected_samples);
  // Normal run: all labels 0, some traffic flowed.
  for (const int label : result.trace.labels) EXPECT_EQ(label, 0);
  EXPECT_GT(result.summary.data_originated, 0u);
  EXPECT_GT(result.summary.packet_delivery_ratio, 0.3);
  EXPECT_GT(result.summary.monitor_audit_packets, 0u);
}

TEST(RunScenarioTest, DeterministicAcrossRuns) {
  ScenarioConfig config = small_config();
  config.seed = 99;  // avoid cache interference from other tests
  setenv("XFA_NO_CACHE", "1", 1);
  refresh_env_for_testing();
  const ScenarioResult a = run_scenario(config);
  const ScenarioResult b = run_scenario(config);
  unsetenv("XFA_NO_CACHE");
  refresh_env_for_testing();
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i)
    EXPECT_EQ(a.trace.rows[i], b.trace.rows[i]) << "row " << i;
  EXPECT_EQ(a.summary.scheduler_events, b.summary.scheduler_events);
}

TEST(RunScenarioTest, AttackTraceGetsPositiveLabels) {
  ScenarioConfig config = small_config();
  config.attacks = mixed_attacks(/*session=*/20);
  config.attacks[0].schedule = ScheduleSpec::periodic_from(50, 20);
  config.attacks[1].schedule = ScheduleSpec::periodic_from(100, 20);
  const ScenarioResult result = run_scenario(config);
  int positives = 0;
  for (const int label : result.trace.labels) positives += label;
  EXPECT_GT(positives, 0);
}

TEST(RunScenarioTest, MonitorNodeIsConfigurable) {
  ScenarioConfig config = small_config();
  config.duration = 100;
  config.monitor_node = 5;
  const ScenarioResult result = run_scenario(config);
  EXPECT_GT(result.summary.monitor_audit_packets, 0u);
}

TEST(RunScenarioTest, TcpScenarioProducesAckTraffic) {
  ScenarioConfig config = small_config();
  config.transport = TransportKind::Tcp;
  config.duration = 300;
  const ScenarioResult result = run_scenario(config);
  EXPECT_GT(result.summary.data_originated, 0u);
  // ACKs flow back, so delivered counts include both directions; the ratio
  // stays meaningful.
  EXPECT_GT(result.summary.packet_delivery_ratio, 0.3);
}

TEST(RunScenarioTest, SummaryChannelCountsAreConsistent) {
  const ScenarioResult result = run_scenario(small_config());
  const ChannelStats& channel = result.summary.channel;
  EXPECT_GT(channel.transmissions, 0u);
  EXPECT_GE(channel.deliveries + channel.random_losses,
            channel.transmissions)
      << "broadcasts reach multiple receivers";
}

TEST(ScaledOptionsTest, FastModeScalesSchedules) {
  ExperimentOptions options = paper_mixed_options();
  options.duration = 8000;
  const ExperimentOptions fast = scaled(options);
  EXPECT_DOUBLE_EQ(fast.duration, 2000);
  EXPECT_DOUBLE_EQ(fast.attacks[0].schedule.start, 625);
  EXPECT_DOUBLE_EQ(fast.attacks[0].schedule.duration, 50);
}

TEST(PipelineTest, PaperScenarioAndClassifierInventories) {
  EXPECT_EQ(paper_scenarios().size(), 4u);
  EXPECT_EQ(paper_classifiers().size(), 3u);
  EXPECT_EQ(paper_classifiers()[0].name, "C4.5");
}

}  // namespace
}  // namespace xfa
