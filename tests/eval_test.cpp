// Unit tests: recall-precision curves, AUC, density histograms, time series.
#include <gtest/gtest.h>

#include "eval/density.h"
#include "eval/pr.h"
#include "eval/series.h"
#include "sim/rng.h"

namespace xfa {
namespace {

TEST(PrCurve, PerfectSeparation) {
  // Intrusions score low, normals high: the curve must reach (1, 1).
  std::vector<double> scores = {0.1, 0.2, 0.3, 0.8, 0.9, 1.0};
  std::vector<int> labels = {1, 1, 1, 0, 0, 0};
  const PrCurve curve = recall_precision_curve(scores, labels);
  const PrPoint best = curve.optimal_point();
  EXPECT_DOUBLE_EQ(best.recall, 1.0);
  EXPECT_DOUBLE_EQ(best.precision, 1.0);
  EXPECT_GT(curve.area_above_diagonal(), 0.45);
}

TEST(PrCurve, RandomScoresGiveNearDiagonalAuc) {
  Rng rng(3);
  std::vector<double> scores;
  std::vector<int> labels;
  for (int i = 0; i < 4000; ++i) {
    scores.push_back(rng.uniform());
    labels.push_back(rng.chance(0.5) ? 1 : 0);
  }
  const PrCurve curve = recall_precision_curve(scores, labels);
  EXPECT_NEAR(curve.area_above_diagonal(), 0.0, 0.05);
}

TEST(PrCurve, InvertedScoresGiveNegativeArea) {
  // Intrusions scoring HIGH (worse than random for our convention).
  std::vector<double> scores = {0.9, 0.95, 1.0, 0.1, 0.2, 0.3};
  std::vector<int> labels = {1, 1, 1, 0, 0, 0};
  const PrCurve curve = recall_precision_curve(scores, labels);
  EXPECT_LT(curve.area_above_diagonal(), 0.0);
}

TEST(PrCurve, RecallMonotone) {
  Rng rng(5);
  std::vector<double> scores;
  std::vector<int> labels;
  for (int i = 0; i < 500; ++i) {
    const int label = rng.chance(0.3) ? 1 : 0;
    scores.push_back(label ? rng.uniform(0, 0.7) : rng.uniform(0.3, 1.0));
    labels.push_back(label);
  }
  const PrCurve curve = recall_precision_curve(scores, labels);
  for (std::size_t i = 1; i < curve.points.size(); ++i)
    EXPECT_GE(curve.points[i].recall, curve.points[i - 1].recall);
}

TEST(PrCurve, CountsAreConsistent) {
  std::vector<double> scores = {0.1, 0.4, 0.4, 0.6, 0.8};
  std::vector<int> labels = {1, 1, 0, 0, 1};
  const PrCurve curve = recall_precision_curve(scores, labels);
  for (const PrPoint& point : curve.points) {
    EXPECT_EQ(point.true_positives + point.false_negatives, 3u);
    if (point.true_positives + point.false_positives > 0) {
      EXPECT_NEAR(point.precision,
                  static_cast<double>(point.true_positives) /
                      static_cast<double>(point.true_positives +
                                          point.false_positives),
                  1e-12);
    }
  }
}

TEST(PrCurve, EmptyAndDegenerateInputs) {
  EXPECT_TRUE(recall_precision_curve({}, {}).points.empty());
  // No intrusions at all: no curve.
  EXPECT_TRUE(
      recall_precision_curve({0.5, 0.6}, {0, 0}).points.empty());
}

TEST(PrCurve, TieGroupsMoveTogether) {
  // All events share one score: only two operating points (none / all).
  std::vector<double> scores(10, 0.5);
  std::vector<int> labels = {1, 0, 1, 0, 1, 0, 1, 0, 1, 0};
  const PrCurve curve = recall_precision_curve(scores, labels);
  ASSERT_EQ(curve.points.size(), 2u);
  EXPECT_DOUBLE_EQ(curve.points[1].recall, 1.0);
  EXPECT_DOUBLE_EQ(curve.points[1].precision, 0.5);
}

TEST(PrCurve, ThresholdSemanticsMatchDetectorRule) {
  // The curve's operating points must correspond to "alarm iff score <
  // threshold": picking any point's threshold and re-deriving recall by hand
  // must reproduce the point.
  Rng rng(9);
  std::vector<double> scores;
  std::vector<int> labels;
  for (int i = 0; i < 300; ++i) {
    const int label = rng.chance(0.4) ? 1 : 0;
    scores.push_back(label ? rng.uniform(0, 0.6) : rng.uniform(0.4, 1.0));
    labels.push_back(label);
  }
  const PrCurve curve = recall_precision_curve(scores, labels);
  for (std::size_t i = 0; i < curve.points.size(); i += 7) {
    const PrPoint& point = curve.points[i];
    std::size_t tp = 0, total_pos = 0;
    for (std::size_t j = 0; j < scores.size(); ++j) {
      if (labels[j] != 0) {
        ++total_pos;
        if (scores[j] < point.threshold) ++tp;
      }
    }
    EXPECT_NEAR(point.recall,
                static_cast<double>(tp) / static_cast<double>(total_pos),
                1e-12);
  }
}

TEST(Density, IntegratesToOne) {
  Rng rng(7);
  std::vector<double> values;
  for (int i = 0; i < 1000; ++i) values.push_back(rng.uniform());
  const DensityHistogram hist = density_histogram(values, 20);
  double mass = 0;
  const double width = 1.0 / 20;
  for (const double d : hist.density) mass += d * width;
  EXPECT_NEAR(mass, 1.0, 1e-9);
}

TEST(Density, MassBelowThreshold) {
  std::vector<double> values;
  for (int i = 0; i < 100; ++i) values.push_back(i < 30 ? 0.1 : 0.9);
  const DensityHistogram hist = density_histogram(values, 10);
  EXPECT_NEAR(mass_below(hist, 0.5), 0.3, 0.02);
  EXPECT_NEAR(mass_below(hist, 1.0), 1.0, 1e-9);
  EXPECT_NEAR(mass_below(hist, 0.0), 0.0, 1e-9);
}

TEST(Density, OutOfRangeClampsToEdgeBins) {
  const std::vector<double> values = {-5.0, 5.0};
  const DensityHistogram hist = density_histogram(values, 4, 0.0, 1.0);
  EXPECT_GT(hist.density.front(), 0.0);
  EXPECT_GT(hist.density.back(), 0.0);
}

TEST(Density, AsciiRenderHasOneLinePerBin) {
  const std::vector<double> values = {0.1, 0.2, 0.9};
  const DensityHistogram hist = density_histogram(values, 5);
  EXPECT_EQ(render_ascii(hist).size(), 5u);
}

TEST(Series, AverageOfEqualLengthSeries) {
  TimeSeries a{{1, 2, 3}, {1.0, 2.0, 3.0}};
  TimeSeries b{{1, 2, 3}, {3.0, 4.0, 5.0}};
  const TimeSeries avg = average_series({a, b});
  ASSERT_EQ(avg.size(), 3u);
  EXPECT_DOUBLE_EQ(avg.values[0], 2.0);
  EXPECT_DOUBLE_EQ(avg.values[2], 4.0);
}

TEST(Series, AverageHandlesLengthMismatch) {
  TimeSeries a{{1, 2, 3}, {1.0, 2.0, 3.0}};
  TimeSeries b{{1, 2}, {3.0, 4.0}};
  const TimeSeries avg = average_series({a, b});
  ASSERT_EQ(avg.size(), 3u);
  EXPECT_DOUBLE_EQ(avg.values[0], 2.0);
  EXPECT_DOUBLE_EQ(avg.values[2], 3.0);  // only series a contributes
}

TEST(Series, DownsampleAverages) {
  TimeSeries s;
  for (int i = 1; i <= 10; ++i) {
    s.times.push_back(i);
    s.values.push_back(i);
  }
  const TimeSeries down = downsample(s, 5.0);
  ASSERT_EQ(down.size(), 2u);
  EXPECT_DOUBLE_EQ(down.values[0], 3.0);  // mean of 1..5
  EXPECT_DOUBLE_EQ(down.values[1], 8.0);  // mean of 6..10
}

TEST(Series, DownsampleWithGaps) {
  TimeSeries s{{1, 2, 21, 22}, {1, 3, 10, 20}};
  const TimeSeries down = downsample(s, 10.0);
  ASSERT_EQ(down.size(), 2u);
  EXPECT_DOUBLE_EQ(down.values[0], 2.0);
  EXPECT_DOUBLE_EQ(down.values[1], 15.0);
}

}  // namespace
}  // namespace xfa
