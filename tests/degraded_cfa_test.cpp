// Graceful degradation of cross-feature analysis: constant (degenerate)
// feature columns are skipped with the Algorithm 2/3 averages renormalized
// over the survivors, unusable inputs surface as Status instead of aborting,
// and the detector's false-alarm rate stays bounded on faulty-but-normal
// traces produced under a FaultPlan.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <vector>

#include "cfa/model.h"
#include "common/env.h"
#include "faults/plan.h"
#include "ml/c45.h"
#include "scenario/pipeline.h"
#include "sim/rng.h"

namespace xfa {
namespace {

ClassifierFactory c45() {
  return [] { return std::make_unique<C45>(); };
}

Dataset dataset_with_constant_column() {
  Dataset data;
  data.cardinality = {3, 1, 3, 2};
  Rng rng(21);
  for (int i = 0; i < 80; ++i) {
    const int v = static_cast<int>(rng.uniform_int(3));
    data.rows.push_back({v, 0, (v + 1) % 3, v % 2});
  }
  return data;
}

// Skipping a constant column must be *equivalent* to never having listed it:
// same surviving sub-models, same inputs, byte-equal renormalized scores.
TEST(DegradedCfa, SkippedColumnMatchesModelTrainedWithoutIt) {
  const Dataset data = dataset_with_constant_column();

  CrossFeatureModel degraded;
  ASSERT_TRUE(degraded.train(data, {0, 1, 2, 3}, c45(), 1).ok());
  ASSERT_EQ(degraded.skipped_columns(), std::vector<std::size_t>{1});
  ASSERT_EQ(degraded.submodel_count(), 3u);

  CrossFeatureModel reference;
  ASSERT_TRUE(reference.train(data, {0, 2, 3}, c45(), 1).ok());
  EXPECT_TRUE(reference.skipped_columns().empty());
  ASSERT_EQ(reference.submodel_count(), 3u);

  for (const auto& row : data.rows) {
    const EventScore a = degraded.score(row);
    const EventScore b = reference.score(row);
    EXPECT_DOUBLE_EQ(a.avg_match_count, b.avg_match_count);
    EXPECT_DOUBLE_EQ(a.avg_probability, b.avg_probability);
  }
}

TEST(DegradedCfa, UnusableInputsSurfaceAsStatusNotAbort) {
  const Dataset data = dataset_with_constant_column();

  CrossFeatureModel all_constant;
  const Status train_failed = all_constant.train(data, {1}, c45(), 1);
  EXPECT_EQ(train_failed.code(), StatusCode::kTrainFailed);
  EXPECT_FALSE(all_constant.trained());

  CrossFeatureModel empty;
  EXPECT_EQ(empty.train(Dataset{}, {0}, c45(), 1).code(),
            StatusCode::kDegenerateData);

  CrossFeatureModel bad_column;
  EXPECT_EQ(bad_column.train(data, {0, 99}, c45(), 1).code(),
            StatusCode::kInvalidArgument);
  CrossFeatureModel no_columns;
  EXPECT_EQ(no_columns.train(data, {}, c45(), 1).code(),
            StatusCode::kInvalidArgument);
}

TEST(DegradedCfa, TrainDetectorCheckedRejectsEmptyTrace) {
  const Result<Detector> detector =
      train_detector_checked(RawTrace{}, make_c45_factory());
  ASSERT_FALSE(detector.ok());
  EXPECT_EQ(detector.status().code(), StatusCode::kDegenerateData);
}

class DegradedPipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    setenv("XFA_NO_CACHE", "1", 1);
    refresh_env_for_testing();
  }
  void TearDown() override {
    unsetenv("XFA_NO_CACHE");
    refresh_env_for_testing();
  }

  static RawTrace faulty_normal_trace(std::uint64_t seed) {
    ScenarioConfig config;
    config.node_count = 15;
    config.duration = 300;
    config.seed = seed;
    config.traffic.max_connections = 8;
    config.faults = benign_chaos();
    return run_scenario(config).trace;
  }
};

// A feature counter frozen by faults (here: forced constant post-hoc, the
// worst case of e.g. a neighbourhood stuck during long loss bursts) must be
// skipped by the ensemble while the detector keeps training and scoring.
TEST_F(DegradedPipelineTest, FrozenFeatureColumnIsSkippedAndDetectorSurvives) {
  RawTrace trace = faulty_normal_trace(1000);
  ASSERT_FALSE(trace.rows.empty());
  const std::vector<std::size_t> classifiable =
      FeatureSchema::standard().classifiable_columns();
  // Freeze a mid-schema traffic column to a constant.
  const std::size_t frozen = classifiable[classifiable.size() / 2];
  for (auto& row : trace.rows) row[frozen] = 3.0;

  DetectorOptions options;
  options.threads = 1;
  const Result<Detector> detector =
      train_detector_checked(trace, make_c45_factory(), options);
  ASSERT_TRUE(detector.ok()) << detector.status().to_string();

  const auto& skipped = detector->model.skipped_columns();
  EXPECT_NE(std::find(skipped.begin(), skipped.end(), frozen), skipped.end())
      << "frozen column " << frozen << " was not skipped";
  EXPECT_GT(detector->model.submodel_count(), 0u);

  const std::vector<EventScore> scores = detector->score_trace(trace);
  ASSERT_EQ(scores.size(), trace.size());
  for (const EventScore& score : scores) {
    EXPECT_TRUE(std::isfinite(score.avg_match_count));
    EXPECT_TRUE(std::isfinite(score.avg_probability));
    EXPECT_GE(score.avg_match_count, 0.0);
    EXPECT_LE(score.avg_match_count, 1.0);
  }
}

// The paper's premise under test: benign chaos (loss bursts, flaps, churn)
// is still *normal* behaviour, so a detector trained and calibrated on
// faulty-but-normal traces must keep its false-alarm rate on a held-out
// faulty-but-normal trace within a sane bound.
TEST_F(DegradedPipelineTest, FalseAlarmRateUnderChaosStaysBounded) {
  const RawTrace train = faulty_normal_trace(1000);
  const RawTrace calibrate = faulty_normal_trace(1001);
  const RawTrace evaluate = faulty_normal_trace(1002);
  ASSERT_GT(evaluate.size(), 20u);

  DetectorOptions options;
  options.threads = 1;
  options.false_alarm_rate = 0.05;
  const Result<Detector> trained =
      train_detector_checked(train, make_c45_factory(), options, &calibrate);
  ASSERT_TRUE(trained.ok()) << trained.status().to_string();
  const Detector& detector = *trained;

  const std::vector<EventScore> scores = detector.score_trace(evaluate);
  std::size_t false_alarms_match = 0, false_alarms_prob = 0;
  for (const EventScore& score : scores) {
    if (score.avg_match_count < detector.threshold_match) ++false_alarms_match;
    if (score.avg_probability < detector.threshold_probability)
      ++false_alarms_prob;
  }
  const auto n = static_cast<double>(scores.size());
  // Generous bound: the eval trace is short (~60 samples) and fully
  // independent chaos, so allow several times the nominal 5% FAR — the
  // failure mode being guarded against is wholesale false alarming.
  EXPECT_LE(static_cast<double>(false_alarms_match) / n, 0.35);
  EXPECT_LE(static_cast<double>(false_alarms_prob) / n, 0.35);
}

}  // namespace
}  // namespace xfa
