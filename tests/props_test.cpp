// End-to-end property tests: paper-level invariants on small fixed
// topologies and reduced scenarios.
#include <gtest/gtest.h>

#include <memory>

#include "attacks/blackhole.h"
#include "attacks/storm.h"
#include "audit/audit.h"
#include "mobility/static.h"
#include "net/channel.h"
#include "net/node.h"
#include "routing/aodv/aodv.h"
#include "scenario/pipeline.h"
#include "sim/simulator.h"
#include "transport/cbr.h"

namespace xfa {
namespace {

struct Rig {
  Rig(std::size_t n, double spacing, std::uint64_t seed = 51)
      : sim(seed), mobility(StaticPositions::line(n, spacing)) {
    ChannelConfig config;
    config.max_jitter_s = 0.0005;
    config.promiscuous_taps = false;
    channel = std::make_unique<Channel>(sim, mobility, config);
    for (NodeId i = 0; i < static_cast<NodeId>(n); ++i) {
      nodes.push_back(std::make_unique<Node>(sim, *channel, i));
      channel->register_node(*nodes.back());
      audits.push_back(std::make_unique<AuditLog>());
      nodes.back()->attach_audit(audits.back().get());
      nodes.back()->set_routing(std::make_unique<Aodv>(*nodes.back()));
      nodes.back()->routing().start();
    }
  }
  Aodv& aodv(NodeId id) {
    return static_cast<Aodv&>(nodes[static_cast<std::size_t>(id)]->routing());
  }
  Node& node(NodeId id) { return *nodes[static_cast<std::size_t>(id)]; }
  AuditLog& audit(NodeId id) {
    return *audits[static_cast<std::size_t>(id)];
  }

  Simulator sim;
  StaticPositions mobility;
  std::unique_ptr<Channel> channel;
  std::vector<std::unique_ptr<Node>> nodes;
  std::vector<std::unique_ptr<AuditLog>> audits;
};

TEST(PaperProperties, BlackholePoisonHoldsWhileAdvertised) {
  // The paper: "routes with maximum sequence number are always considered
  // the freshest". While the attacker keeps advertising, the poisoned route
  // stays installed and no valid genuine route can displace it. (Our AODV
  // lets an *expired* poisoned entry be replaced — RFC semantics — so full
  // recovery is possible once adverts stop; see DESIGN.md §7.9. The attack
  // scripts re-advertise every session, which preserves the paper's
  // oscillating non-recovery during the attacked period.)
  Rig rig(3, 200);
  BlackholeAttack attack(rig.node(1),
                         IntrusionSchedule::sessions({{5, 30}}));
  attack.start();
  rig.sim.run_until(30.0);  // mid-session
  ASSERT_GT(attack.adverts_sent(), 0u);
  const AodvRouteEntry* poisoned =
      rig.aodv(2).table().lookup(0, rig.sim.now());
  ASSERT_NE(poisoned, nullptr);
  EXPECT_EQ(poisoned->seqno, kMaxSeqNo);
  EXPECT_EQ(poisoned->next_hop, 1);
  // Entry memory outlives the session: the max seqno is never decremented.
  rig.sim.run_until(120.0);
  const AodvRouteEntry* later = rig.aodv(2).table().lookup_any(0);
  ASSERT_NE(later, nullptr);
  EXPECT_EQ(later->seqno, kMaxSeqNo);
}

TEST(PaperProperties, StormInflatesMonitorRreqObservations) {
  Rig clean(4, 200, 77);
  Rig stormy(4, 200, 77);
  UpdateStormConfig config;
  config.discoveries_per_second = 5.0;
  UpdateStormAttack attack(stormy.node(2),
                           IntrusionSchedule::sessions({{5, 90}}), config);
  attack.start();
  clean.sim.run_until(100.0);
  stormy.sim.run_until(100.0);
  const auto clean_rreq =
      clean.audit(0)
          .packet_times(AuditPacketType::RouteRequest,
                        FlowDirection::Received)
          .size();
  const auto stormy_rreq =
      stormy.audit(0)
          .packet_times(AuditPacketType::RouteRequest,
                        FlowDirection::Received)
          .size();
  EXPECT_GT(stormy_rreq, clean_rreq + 100)
      << "the monitor must observe the meaningless-discovery flood";
}

TEST(PaperProperties, ScoresAlwaysInUnitIntervalOverWholeTraces) {
  ExperimentOptions options;
  options.duration = 400;
  options.normal_eval_traces = 1;
  options.abnormal_traces = 1;
  options.attacks = mixed_attacks(50);
  options.attacks[0].schedule.start = 100;
  options.attacks[1].schedule.start = 200;
  options.base_seed = 9900;
  const ExperimentData data = gather_experiment(
      RoutingKind::Aodv, TransportKind::Udp, options);
  DetectorOptions detector_options;
  detector_options.threads = 1;
  for (const NamedFactory& classifier : paper_classifiers()) {
    const Detector detector =
        train_detector(data.train_normal, classifier.factory,
                       detector_options);
    for (const RawTrace* trace :
         {&data.normal_eval[0], &data.abnormal[0]}) {
      for (const EventScore& s : detector.score_trace(*trace)) {
        EXPECT_GE(s.avg_probability, 0.0) << classifier.name;
        EXPECT_LE(s.avg_probability, 1.0) << classifier.name;
        EXPECT_GE(s.avg_match_count, 0.0) << classifier.name;
        EXPECT_LE(s.avg_match_count, 1.0) << classifier.name;
      }
    }
  }
}

TEST(PaperProperties, IdenticalSeedsGiveIdenticalChannelStats) {
  Rig a(5, 180, 123);
  Rig b(5, 180, 123);
  CbrSink sink_a(a.node(4), 1);
  CbrSink sink_b(b.node(4), 1);
  CbrSource source_a(a.node(0), 4, 1, 1.0, 512, 0.5, 60.0);
  CbrSource source_b(b.node(0), 4, 1, 1.0, 512, 0.5, 60.0);
  a.sim.run_until(80.0);
  b.sim.run_until(80.0);
  EXPECT_EQ(a.channel->stats().transmissions, b.channel->stats().transmissions);
  EXPECT_EQ(a.channel->stats().deliveries, b.channel->stats().deliveries);
  EXPECT_EQ(sink_a.packets_received(), sink_b.packets_received());
}

TEST(PaperProperties, AlgorithmsAgreeOnExtremeEvents) {
  // An event matching every sub-model perfectly has both scores high; an
  // event matching none has both low — the two algorithms only diverge in
  // the middle (that divergence is Figure 2's subject).
  Rng rng(5);
  Dataset data;
  data.cardinality = {4, 4, 4};
  for (int i = 0; i < 300; ++i) {
    const int v = static_cast<int>(rng.uniform_int(4));
    data.rows.push_back({v, v, v});
  }
  CrossFeatureModel model;
  model.train(data, {0, 1, 2}, make_c45_factory(), 1);
  const EventScore all_match = model.score({2, 2, 2});
  const EventScore none_match = model.score({0, 1, 2});
  EXPECT_GT(all_match.avg_match_count, 0.99);
  EXPECT_GT(all_match.avg_probability, 0.8);
  EXPECT_LT(none_match.avg_match_count, 0.34);
  EXPECT_LT(none_match.avg_probability, all_match.avg_probability);
}

}  // namespace
}  // namespace xfa
