// Unit tests: discrete-event scheduler, simulator facade, RNG.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/rng.h"
#include "sim/scheduler.h"
#include "sim/simulator.h"

namespace xfa {
namespace {

TEST(Scheduler, DispatchesInTimeOrder) {
  Scheduler scheduler;
  std::vector<int> order;
  scheduler.schedule_at(3.0, [&] { order.push_back(3); });
  scheduler.schedule_at(1.0, [&] { order.push_back(1); });
  scheduler.schedule_at(2.0, [&] { order.push_back(2); });
  scheduler.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Scheduler, SameTimeEventsAreFifo) {
  Scheduler scheduler;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    scheduler.schedule_at(1.0, [&order, i] { order.push_back(i); });
  scheduler.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Scheduler, ClockAdvancesToEventTime) {
  Scheduler scheduler;
  double seen = -1;
  scheduler.schedule_at(5.5, [&] { seen = scheduler.now(); });
  scheduler.run();
  EXPECT_DOUBLE_EQ(seen, 5.5);
  EXPECT_DOUBLE_EQ(scheduler.now(), 5.5);
}

TEST(Scheduler, RunUntilStopsAndSetsClock) {
  Scheduler scheduler;
  int fired = 0;
  scheduler.schedule_at(1.0, [&] { ++fired; });
  scheduler.schedule_at(10.0, [&] { ++fired; });
  scheduler.run_until(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(scheduler.now(), 5.0);
  EXPECT_EQ(scheduler.pending(), 1u);
}

TEST(Scheduler, CancelPreventsDispatch) {
  Scheduler scheduler;
  int fired = 0;
  const EventId id = scheduler.schedule_at(1.0, [&] { ++fired; });
  EXPECT_TRUE(scheduler.cancel(id));
  EXPECT_FALSE(scheduler.cancel(id));  // double cancel is a no-op
  scheduler.run();
  EXPECT_EQ(fired, 0);
}

TEST(Scheduler, CancelOneOfSeveral) {
  Scheduler scheduler;
  std::vector<int> order;
  scheduler.schedule_at(1.0, [&] { order.push_back(1); });
  const EventId id = scheduler.schedule_at(2.0, [&] { order.push_back(2); });
  scheduler.schedule_at(3.0, [&] { order.push_back(3); });
  scheduler.cancel(id);
  scheduler.run();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(Scheduler, EventsCanScheduleEvents) {
  Scheduler scheduler;
  std::vector<double> times;
  scheduler.schedule_at(1.0, [&] {
    times.push_back(scheduler.now());
    scheduler.schedule_in(1.0, [&] { times.push_back(scheduler.now()); });
  });
  scheduler.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[1], 2.0);
}

TEST(Scheduler, RunUntilIncludesBoundaryEvents) {
  Scheduler scheduler;
  int fired = 0;
  scheduler.schedule_at(5.0, [&] { ++fired; });
  scheduler.run_until(5.0);  // events at exactly `until` fire
  EXPECT_EQ(fired, 1);
}

TEST(Scheduler, CancelInsideCallback) {
  Scheduler scheduler;
  int fired = 0;
  EventId later = 0;
  scheduler.schedule_at(1.0, [&] { scheduler.cancel(later); });
  later = scheduler.schedule_at(2.0, [&] { ++fired; });
  scheduler.run();
  EXPECT_EQ(fired, 0);
}

TEST(Scheduler, ScheduleAtCurrentTimeRunsThisPass) {
  Scheduler scheduler;
  std::vector<int> order;
  scheduler.schedule_at(1.0, [&] {
    order.push_back(1);
    scheduler.schedule_at(scheduler.now(), [&] { order.push_back(2); });
  });
  scheduler.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Scheduler, DispatchedCounterCounts) {
  Scheduler scheduler;
  for (int i = 0; i < 5; ++i) scheduler.schedule_at(i, [] {});
  scheduler.run();
  EXPECT_EQ(scheduler.dispatched(), 5u);
}

TEST(PeriodicTimerTest, FiresAtInterval) {
  Simulator sim(1);
  std::vector<double> fires;
  PeriodicTimer timer(sim, 2.0, [&] { fires.push_back(sim.now()); });
  timer.start();
  sim.run_until(9.0);
  ASSERT_EQ(fires.size(), 4u);
  EXPECT_DOUBLE_EQ(fires[0], 2.0);
  EXPECT_DOUBLE_EQ(fires[3], 8.0);
}

TEST(PeriodicTimerTest, InitialDelayOverride) {
  Simulator sim(1);
  std::vector<double> fires;
  PeriodicTimer timer(sim, 5.0, [&] { fires.push_back(sim.now()); });
  timer.start(0.5);
  sim.run_until(11.0);
  ASSERT_EQ(fires.size(), 3u);
  EXPECT_DOUBLE_EQ(fires[0], 0.5);
  EXPECT_DOUBLE_EQ(fires[1], 5.5);
}

TEST(PeriodicTimerTest, StopHalts) {
  Simulator sim(1);
  int fires = 0;
  PeriodicTimer timer(sim, 1.0, [&] {
    if (++fires == 3) timer.stop();
  });
  timer.start();
  sim.run_until(100.0);
  EXPECT_EQ(fires, 3);
  EXPECT_FALSE(timer.running());
}

TEST(PeriodicTimerTest, DestructionCancels) {
  Simulator sim(1);
  int fires = 0;
  {
    PeriodicTimer timer(sim, 1.0, [&] { ++fires; });
    timer.start();
    sim.run_until(2.5);
  }
  sim.run_until(10.0);
  EXPECT_EQ(fires, 2);
}

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(5.0, 9.0);
    EXPECT_GE(u, 5.0);
    EXPECT_LT(u, 9.0);
  }
}

TEST(RngTest, UniformIntCoversAllValues) {
  Rng rng(7);
  std::vector<int> counts(6, 0);
  for (int i = 0; i < 6000; ++i) ++counts[rng.uniform_int(6)];
  for (const int c : counts) {
    EXPECT_GT(c, 800);
    EXPECT_LT(c, 1200);
  }
}

TEST(RngTest, ExponentialHasRequestedMean) {
  Rng rng(7);
  double sum = 0;
  constexpr int kSamples = 50000;
  for (int i = 0; i < kSamples; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / kSamples, 4.0, 0.15);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(9);
  Rng child = parent.fork();
  // The child stream should not simply replay the parent stream.
  Rng parent_copy(9);
  (void)parent_copy.fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (child() == parent()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(SimulatorTest, ForkedRngsAreReproducible) {
  Simulator a(42), b(42);
  Rng ra = a.fork_rng(), rb = b.fork_rng();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(ra(), rb());
}

TEST(SimulatorTest, AfterSchedulesRelative) {
  Simulator sim(1);
  double fired_at = -1;
  sim.at(3.0, [&] { sim.after(2.0, [&] { fired_at = sim.now(); }); });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 5.0);
}

}  // namespace
}  // namespace xfa
