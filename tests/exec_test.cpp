// The execution layer: ThreadPool scheduling/timing, TaskGroup structured
// cancellation, parallel_for coverage, SingleFlight deduplication, and the
// nested-parallelism (cooperative draining) guarantee.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "exec/parallel_for.h"
#include "exec/single_flight.h"
#include "exec/task_group.h"
#include "exec/thread_pool.h"

namespace xfa {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.size(), 2u);
  std::atomic<int> counter{0};
  TaskGroup group(pool);
  for (int i = 0; i < 100; ++i)
    group.submit([&counter] {
      counter.fetch_add(1);
      return Status::Ok();
    });
  EXPECT_TRUE(group.wait().ok());
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, AsyncReturnsFutureWithResult) {
  ThreadPool pool(2);
  std::future<int> a = pool.async([] { return 41; });
  std::future<std::string> b = pool.async([] { return std::string("x"); });
  EXPECT_EQ(a.get(), 41);
  EXPECT_EQ(b.get(), "x");
}

TEST(ThreadPool, ZeroResolvesToAtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, StatsCountExecutedTasks) {
  ThreadPool pool(1);
  const ExecStats before = pool.stats();
  TaskGroup group(pool);
  for (int i = 0; i < 10; ++i)
    group.submit([] {
      // Touch the clock so wall time is measurably non-zero in aggregate.
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      return Status::Ok();
    });
  EXPECT_TRUE(group.wait().ok());
  // wait() can return a beat before the pool's post-task instrumentation
  // lands for the last task, so poll the counters up to their target.
  ExecStats after = pool.stats();
  while (after.tasks_executed - before.tasks_executed < 10u) {
    std::this_thread::yield();
    after = pool.stats();
  }
  EXPECT_EQ(after.tasks_executed - before.tasks_executed, 10u);
  EXPECT_GT(after.task_wall_seconds, before.task_wall_seconds);
}

TEST(ThreadPool, RunPendingTaskDrainsQueue) {
  // A pool whose single worker is blocked: the caller can still make
  // progress by draining the queue cooperatively.
  ThreadPool pool(1);
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  std::atomic<bool> parked{false};
  pool.submit([&parked, gate] {  // parks the only worker
    parked = true;
    gate.wait();
  });
  while (!parked.load()) std::this_thread::yield();
  std::atomic<bool> ran{false};
  pool.submit([&ran] { ran = true; });
  while (pool.run_pending_task()) {
  }
  EXPECT_TRUE(ran.load());
  release.set_value();
}

TEST(ThreadPool, DestructorRunsRemainingQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 20; ++i)
      pool.submit([&counter] { counter.fetch_add(1); });
  }
  EXPECT_EQ(counter.load(), 20);
}

TEST(SharedPool, ResizeChangesWorkerCount) {
  resize_shared_pool(3);
  EXPECT_EQ(shared_pool().size(), 3u);
  resize_shared_pool(1);
  EXPECT_EQ(shared_pool().size(), 1u);
}

TEST(TaskGroup, PropagatesFirstError) {
  ThreadPool pool(2);
  TaskGroup group(pool);
  for (int i = 0; i < 8; ++i)
    group.submit([i] {
      if (i == 3) return Status{StatusCode::kDegenerateData, "task 3 failed"};
      return Status::Ok();
    });
  const Status status = group.wait();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kDegenerateData);
  EXPECT_EQ(status.message(), "task 3 failed");
}

TEST(TaskGroup, CancellationSkipsNotYetStartedTasks) {
  // One worker + FIFO queue makes the skip deterministic: the first task
  // fails while the rest are still queued, so none of them may run.
  ThreadPool pool(1);
  std::promise<void> park;
  std::shared_future<void> gate = park.get_future().share();
  std::atomic<bool> parked{false};
  pool.submit([&parked, gate] {  // hold the worker...
    parked = true;
    gate.wait();
  });
  while (!parked.load()) std::this_thread::yield();
  TaskGroup group(pool);
  std::atomic<int> ran{0};
  group.submit([] { return Status{StatusCode::kIoError, "boom"}; });
  for (int i = 0; i < 50; ++i)
    group.submit([&ran] {
      ran.fetch_add(1);
      return Status::Ok();
    });
  // ...run the failing task here, while the worker is still parked: the
  // queue is FIFO, so it is deterministically the head.
  EXPECT_TRUE(pool.run_pending_task());
  park.set_value();
  const Status status = group.wait();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_EQ(ran.load(), 0) << "cancelled tasks must never run";
  EXPECT_FALSE(group.cancelled()) << "wait() resets the group";
}

TEST(TaskGroup, DropsSubmissionsAfterFailure) {
  ThreadPool pool(1);
  TaskGroup group(pool);
  group.submit([] { return Status{StatusCode::kIoError, "early"}; });
  // Let the failure land before the late submission.
  while (!group.cancelled()) pool.run_pending_task();
  std::atomic<bool> ran{false};
  group.submit([&ran] {
    ran = true;
    return Status::Ok();
  });
  EXPECT_FALSE(group.wait().ok());
  EXPECT_FALSE(ran.load());
}

TEST(TaskGroup, ReusableAfterWait) {
  ThreadPool pool(2);
  TaskGroup group(pool);
  group.submit([] { return Status{StatusCode::kIoError, "first batch"}; });
  EXPECT_FALSE(group.wait().ok());
  std::atomic<int> ran{0};
  group.submit([&ran] {
    ran.fetch_add(1);
    return Status::Ok();
  });
  EXPECT_TRUE(group.wait().ok());
  EXPECT_EQ(ran.load(), 1);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  parallel_for(pool, kN, [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelFor, HandlesEdgeSizes) {
  ThreadPool pool(2);
  int zero_calls = 0;
  parallel_for(pool, 0, [&zero_calls](std::size_t) { ++zero_calls; });
  EXPECT_EQ(zero_calls, 0);
  std::size_t seen = 99;
  parallel_for(pool, 1, [&seen](std::size_t i) { seen = i; });
  EXPECT_EQ(seen, 0u);
}

TEST(ParallelFor, NestedInsidePoolTasksDoesNotDeadlock) {
  // Every outer iteration opens its own inner parallel_for on the same
  // pool. With blocking waits this deadlocks a small pool; cooperative
  // draining must complete it.
  ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  parallel_for(pool, 8, [&pool, &inner_total](std::size_t) {
    parallel_for(pool, 8,
                 [&inner_total](std::size_t) { inner_total.fetch_add(1); });
  });
  EXPECT_EQ(inner_total.load(), 64);
}

TEST(SingleFlight, ConcurrentCallersShareOneExecution) {
  SingleFlight<int> flight;
  ThreadPool pool(4);
  std::atomic<int> executions{0};
  std::atomic<int> sum{0};
  TaskGroup group(pool);
  for (int i = 0; i < 16; ++i)
    group.submit([&flight, &executions, &sum] {
      const int value = flight.run("key", [&executions] {
        executions.fetch_add(1);
        // Stay in flight long enough for followers to pile up.
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        return 7;
      });
      sum.fetch_add(value);
      return Status::Ok();
    });
  EXPECT_TRUE(group.wait().ok());
  EXPECT_EQ(sum.load(), 16 * 7);
  // Cooperative draining means a waiter can occasionally start a fresh
  // flight after the leader finished, but never one per caller.
  EXPECT_LT(executions.load(), 16);
}

TEST(SingleFlight, SequentialCallsExecuteEachTime) {
  SingleFlight<int> flight;
  int executions = 0;
  EXPECT_EQ(flight.run("key", [&executions] { return ++executions; }), 1);
  EXPECT_EQ(flight.run("key", [&executions] { return ++executions; }), 2);
}

TEST(SingleFlight, DistinctKeysDoNotShare) {
  SingleFlight<std::string> flight;
  EXPECT_EQ(flight.run("a", [] { return std::string("va"); }), "va");
  EXPECT_EQ(flight.run("b", [] { return std::string("vb"); }), "vb");
}

}  // namespace
}  // namespace xfa
