// Process-wide snapshot of the XFA_* environment variables.
//
// POSIX makes std::getenv racy against any concurrent setenv(), and the
// execution layer (src/exec) runs scenario work on a shared thread pool — so
// the environment is read exactly once, before any worker touches it, into
// an immutable snapshot that every subsequent lookup reads lock-free.
//
// Tests that mutate the environment (setenv/unsetenv) must call
// refresh_env_for_testing() afterwards, while no pool tasks are in flight.
#pragma once

#include <cstddef>
#include <string>

namespace xfa {

struct EnvSnapshot {
  /// XFA_FAST=1: 4x scaled-down experiment durations/schedules.
  bool fast = false;
  /// XFA_NO_CACHE=1: trace cache loads nothing and stores nothing.
  bool no_cache = false;
  /// XFA_CACHE_DIR: trace-cache directory.
  std::string cache_dir = "xfa_cache";
  /// XFA_SCENARIO_RETRIES: bounded retries for degenerate scenario runs.
  int scenario_retries = 2;
  /// XFA_THREADS: default worker count for the shared pool; 0 = hardware
  /// concurrency (resolved by the pool, src/exec/thread_pool.h).
  std::size_t threads = 0;
};

/// The snapshot, captured on first use (thread-safe via magic static).
const EnvSnapshot& env();

/// Re-reads the environment into the snapshot. Test-only: callers must
/// guarantee no concurrent reader (idle pool), since readers are lock-free.
void refresh_env_for_testing();

}  // namespace xfa
