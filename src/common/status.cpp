#include "common/status.h"

namespace xfa {

const char* to_string(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "kOk";
    case StatusCode::kNotFound: return "kNotFound";
    case StatusCode::kCorruptArtifact: return "kCorruptArtifact";
    case StatusCode::kDegenerateData: return "kDegenerateData";
    case StatusCode::kTrainFailed: return "kTrainFailed";
    case StatusCode::kRetryable: return "kRetryable";
    case StatusCode::kIoError: return "kIoError";
    case StatusCode::kInvalidArgument: return "kInvalidArgument";
  }
  return "?";
}

std::string Status::to_string() const {
  if (ok()) return xfa::to_string(code_);
  std::string out = xfa::to_string(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace xfa
