#include "common/crc64.h"

#include <array>

namespace xfa {
namespace {

// Reflected form of the ECMA-182 polynomial 0x42F0E1EBA9EA3693.
constexpr std::uint64_t kPolynomial = 0xC96C5795D7870F42ULL;

std::array<std::uint64_t, 256> build_table() {
  std::array<std::uint64_t, 256> table{};
  for (std::uint64_t byte = 0; byte < 256; ++byte) {
    std::uint64_t crc = byte;
    for (int bit = 0; bit < 8; ++bit)
      crc = (crc >> 1) ^ (crc & 1 ? kPolynomial : 0);
    table[static_cast<std::size_t>(byte)] = crc;
  }
  return table;
}

}  // namespace

std::uint64_t crc64(const void* data, std::size_t size, std::uint64_t seed) {
  static const std::array<std::uint64_t, 256> table = build_table();
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t crc = ~seed;
  for (std::size_t i = 0; i < size; ++i)
    crc = (crc >> 8) ^ table[(crc ^ bytes[i]) & 0xff];
  return ~crc;
}

}  // namespace xfa
