// CRC-64/XZ (ECMA-182 polynomial, reflected) — the integrity checksum for
// on-disk artifacts such as the trace cache's XFATRC3 payload.
#pragma once

#include <cstddef>
#include <cstdint>

namespace xfa {

/// CRC of `size` bytes starting at `data`. `seed` allows incremental use:
/// crc64(b, n2, crc64(a, n1)) == crc64(concat(a, b), n1 + n2).
std::uint64_t crc64(const void* data, std::size_t size, std::uint64_t seed = 0);

}  // namespace xfa
