// Move-only `void()` callable with small-buffer storage.
//
// The discrete-event scheduler stores one callback per pending event; with
// std::function every packet delivery pays a heap allocation because the
// capture (receiver, packet handle, sender id) never fits libstdc++'s tiny
// inline buffer, and std::function additionally requires copyability, which
// forbids capturing move-only state. InlineFunction gives the hot path a
// 56-byte inline buffer (enough for every per-delivery lambda the channel
// creates) and falls back to the heap only for genuinely large captures
// (e.g. a relayed Packet moved into a jittered rebroadcast).
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace xfa {
namespace detail {

struct InlineFunctionOps {
  void (*invoke)(void* storage);
  // Move-constructs into `dst` from `src`, then destroys `src`'s payload.
  void (*relocate)(void* dst, void* src);
  void (*destroy)(void* storage);
};

template <typename F>
inline constexpr InlineFunctionOps kInlineTargetOps = {
    [](void* storage) { (*static_cast<F*>(storage))(); },
    [](void* dst, void* src) {
      F* from = static_cast<F*>(src);
      ::new (dst) F(std::move(*from));
      from->~F();
    },
    [](void* storage) { static_cast<F*>(storage)->~F(); },
};

template <typename F>
inline constexpr InlineFunctionOps kHeapTargetOps = {
    [](void* storage) { (**static_cast<F**>(storage))(); },
    [](void* dst, void* src) {
      ::new (dst) F*(*static_cast<F**>(src));
    },
    [](void* storage) { delete *static_cast<F**>(storage); },
};

}  // namespace detail

class InlineFunction {
 public:
  /// Captures up to this many bytes live inline (no allocation).
  static constexpr std::size_t kInlineBytes = 56;

  InlineFunction() = default;

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<
                !std::is_same_v<D, InlineFunction> &&
                std::is_invocable_r_v<void, D&>>>
  InlineFunction(F&& fn) {  // NOLINT(google-explicit-constructor)
    if constexpr (sizeof(D) <= kInlineBytes &&
                  alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (storage_) D(std::forward<F>(fn));
      ops_ = &detail::kInlineTargetOps<D>;
    } else {
      ::new (storage_) D*(new D(std::forward<F>(fn)));
      ops_ = &detail::kHeapTargetOps<D>;
    }
  }

  InlineFunction(InlineFunction&& other) noexcept { take(other); }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      take(other);
    }
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { reset(); }

  void operator()() { ops_->invoke(storage_); }

  explicit operator bool() const { return ops_ != nullptr; }

 private:
  void take(InlineFunction& other) noexcept {
    if (other.ops_ != nullptr) {
      other.ops_->relocate(storage_, other.storage_);
      ops_ = other.ops_;
      other.ops_ = nullptr;
    }
  }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  const detail::InlineFunctionOps* ops_ = nullptr;
};

}  // namespace xfa
