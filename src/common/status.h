// Recoverable-error taxonomy: Status and Result<T>.
//
// XFA_CHECK (common/check.h) is for contract violations — programmer errors
// that have no meaningful recovery. Environmental failures (a corrupt cache
// artifact, a degenerate training column produced by benign network faults,
// a filesystem hiccup) are *expected* at production scale and must propagate
// instead of aborting the process. Functions on such paths return a Status
// (or a Result<T> carrying either the value or the Status) and the caller
// decides: regenerate, retry with a derived seed, skip the sub-model, or
// surface the error.
//
//   Status s = cache.store(key, result);
//   if (!s.ok()) log(s.to_string());
//
//   Result<ScenarioResult> r = run_scenario_checked(config);
//   if (!r.ok()) return r.status();
//   use(*r);
#pragma once

#include <string>
#include <utility>

#include "common/check.h"

namespace xfa {

enum class StatusCode : std::uint8_t {
  kOk = 0,
  /// The requested artifact does not exist (e.g. trace-cache miss). Not a
  /// failure — the caller is expected to produce the artifact itself.
  kNotFound,
  /// A stored artifact failed validation (bad magic, checksum mismatch,
  /// hostile length field). The loader quarantines the file; the caller
  /// regenerates.
  kCorruptArtifact,
  /// Data is structurally valid but unusable: an empty trace, a constant
  /// feature column, a monitor node that observed nothing.
  kDegenerateData,
  /// No usable model came out of training (e.g. every sub-model skipped).
  kTrainFailed,
  /// Transient failure; retrying (possibly with a derived seed) may succeed.
  kRetryable,
  /// Filesystem/stream error while reading or writing an artifact.
  kIoError,
  /// The caller passed arguments that cannot be acted on.
  kInvalidArgument,
};

const char* to_string(StatusCode code);

/// A status code plus a human-readable message. Cheap to copy when ok (the
/// common case carries no message).
class Status {
 public:
  /// Ok status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "kCorruptArtifact: trace payload checksum mismatch" (or "kOk").
  std::string to_string() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Either a T or a non-ok Status explaining why there is no T.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)

  Result(Status status) : status_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    XFA_CHECK(!status_.ok()) << "Result constructed from an ok Status";
  }

  bool ok() const { return status_.ok(); }
  /// optional-compatible spelling of ok().
  bool has_value() const { return ok(); }

  const Status& status() const { return status_; }

  T& value() {
    XFA_CHECK(ok()) << status_.to_string();
    return value_;
  }
  const T& value() const {
    XFA_CHECK(ok()) << status_.to_string();
    return value_;
  }

  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  T value_;  // default-initialized; only readable when ok()
  Status status_;
};

}  // namespace xfa
