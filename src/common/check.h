// Always-on contract macros for invariants and API preconditions.
//
// The classic C assert macro vanishes under NDEBUG, which is exactly the
// configuration tier-1 CI builds (RelWithDebInfo), so none of the repo's
// invariants were actually exercised. XFA_CHECK stays armed in every build
// type: on violation it prints `file:line`, the failed expression, and any
// streamed message to stderr, then aborts.
//
//   XFA_CHECK(cond) << "optional context " << value;
//   XFA_CHECK_GE(sample_interval, 1);   // prints both operand values
//   XFA_DCHECK(expensive_invariant());  // debug builds only
//
// The comparison variants (XFA_CHECK_EQ/NE/LT/LE/GT/GE) re-evaluate their
// operands when composing the failure message, so operands must be
// side-effect free (they should be anyway — they are contracts).
//
// Repo policy (enforced by tools/xfa_lint.cpp): no raw C assert use anywhere
// under src/; `static_assert` is of course still fine.
#pragma once

#include <sstream>

namespace xfa {
namespace detail {

/// Accumulates the failure message; the destructor reports and aborts.
/// Only ever constructed on the failure path of a check.
class CheckFailStream {
 public:
  CheckFailStream(const char* file, int line, const char* expr);
  [[noreturn]] ~CheckFailStream();

  CheckFailStream(const CheckFailStream&) = delete;
  CheckFailStream& operator=(const CheckFailStream&) = delete;

  template <typename T>
  CheckFailStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

/// Lowest-precedence `operator&` swallows the stream expression so the
/// failure arm of the ternary in XFA_CHECK has type void.
struct Voidify {
  void operator&(const CheckFailStream&) const {}
};

}  // namespace detail
}  // namespace xfa

#if defined(__GNUC__) || defined(__clang__)
#define XFA_PREDICT_TRUE(x) (__builtin_expect(!!(x), 1))
#else
#define XFA_PREDICT_TRUE(x) (x)
#endif

/// Aborts with file:line and the expression text unless `cond` holds.
/// Additional context can be streamed: XFA_CHECK(ok) << "ttl=" << ttl;
#define XFA_CHECK(cond)                                   \
  XFA_PREDICT_TRUE(cond)                                  \
  ? (void)0                                               \
  : ::xfa::detail::Voidify() & ::xfa::detail::CheckFailStream( \
                                   __FILE__, __LINE__, #cond)

#define XFA_CHECK_OP_(a, op, b)                                            \
  XFA_PREDICT_TRUE((a)op(b))                                               \
  ? (void)0                                                                \
  : ::xfa::detail::Voidify() &                                             \
          ::xfa::detail::CheckFailStream(__FILE__, __LINE__,               \
                                         #a " " #op " " #b)                \
              << "(" << (a) << " vs. " << (b) << ") "

/// Comparison checks that print both operand values on failure.
#define XFA_CHECK_EQ(a, b) XFA_CHECK_OP_(a, ==, b)
#define XFA_CHECK_NE(a, b) XFA_CHECK_OP_(a, !=, b)
#define XFA_CHECK_LT(a, b) XFA_CHECK_OP_(a, <, b)
#define XFA_CHECK_LE(a, b) XFA_CHECK_OP_(a, <=, b)
#define XFA_CHECK_GT(a, b) XFA_CHECK_OP_(a, >, b)
#define XFA_CHECK_GE(a, b) XFA_CHECK_OP_(a, >=, b)

// Debug-only variant for checks too hot for release builds. The condition is
// still parsed and type-checked in release so it cannot rot.
#ifdef NDEBUG
#define XFA_DCHECK(cond) \
  while (false) XFA_CHECK(cond)
#else
#define XFA_DCHECK(cond) XFA_CHECK(cond)
#endif
