#include "common/check.h"

#include <cstdio>
#include <cstdlib>

namespace xfa {
namespace detail {

CheckFailStream::CheckFailStream(const char* file, int line,
                                 const char* expr) {
  stream_ << file << ":" << line << ": XFA_CHECK failed: " << expr << " ";
}

CheckFailStream::~CheckFailStream() {
  const std::string message = stream_.str();
  std::fprintf(stderr, "%s\n", message.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace detail
}  // namespace xfa
