#include "common/env.h"

#include <cstdlib>

namespace xfa {
namespace {

bool flag_set(const char* name) {
  const char* value = std::getenv(name);
  return value != nullptr && value[0] == '1';
}

EnvSnapshot read_environment() {
  EnvSnapshot snapshot;
  snapshot.fast = flag_set("XFA_FAST");
  snapshot.no_cache = flag_set("XFA_NO_CACHE");
  if (const char* dir = std::getenv("XFA_CACHE_DIR");
      dir != nullptr && dir[0] != '\0') {
    snapshot.cache_dir = dir;
  }
  if (const char* retries = std::getenv("XFA_SCENARIO_RETRIES");
      retries != nullptr && retries[0] != '\0') {
    const int parsed = std::atoi(retries);
    if (parsed >= 0) snapshot.scenario_retries = parsed;
  }
  if (const char* threads = std::getenv("XFA_THREADS");
      threads != nullptr && threads[0] != '\0') {
    const int parsed = std::atoi(threads);
    if (parsed > 0) snapshot.threads = static_cast<std::size_t>(parsed);
  }
  return snapshot;
}

EnvSnapshot& mutable_snapshot() {
  static EnvSnapshot snapshot = read_environment();
  return snapshot;
}

}  // namespace

const EnvSnapshot& env() { return mutable_snapshot(); }

void refresh_env_for_testing() { mutable_snapshot() = read_environment(); }

}  // namespace xfa
