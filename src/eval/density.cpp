#include "eval/density.h"

#include <algorithm>
#include <sstream>
#include <string>

#include "common/check.h"

namespace xfa {

DensityHistogram density_histogram(const std::vector<double>& values,
                                   std::size_t bins, double lo, double hi) {
  XFA_CHECK(bins > 0 && hi > lo);
  DensityHistogram hist;
  hist.lo = lo;
  hist.hi = hi;
  const double width = (hi - lo) / static_cast<double>(bins);
  hist.bin_centers.resize(bins);
  hist.density.assign(bins, 0.0);
  for (std::size_t b = 0; b < bins; ++b)
    hist.bin_centers[b] = lo + width * (static_cast<double>(b) + 0.5);
  if (values.empty()) return hist;

  for (const double v : values) {
    auto b = static_cast<long>((v - lo) / width);
    b = std::clamp<long>(b, 0, static_cast<long>(bins) - 1);
    hist.density[static_cast<std::size_t>(b)] += 1.0;
  }
  const double norm = static_cast<double>(values.size()) * width;
  for (double& d : hist.density) d /= norm;
  return hist;
}

double mass_below(const DensityHistogram& hist, double threshold) {
  const double width =
      (hist.hi - hist.lo) / static_cast<double>(hist.bins());
  double mass = 0;
  for (std::size_t b = 0; b < hist.bins(); ++b) {
    const double bin_lo = hist.lo + width * static_cast<double>(b);
    const double bin_hi = bin_lo + width;
    if (bin_hi <= threshold) {
      mass += hist.density[b] * width;
    } else if (bin_lo < threshold) {
      mass += hist.density[b] * (threshold - bin_lo);
    }
  }
  return mass;
}

std::vector<std::string> render_ascii(const DensityHistogram& hist,
                                      std::size_t width) {
  double max_density = 0;
  for (const double d : hist.density) max_density = std::max(max_density, d);
  std::vector<std::string> lines;
  lines.reserve(hist.bins());
  for (std::size_t b = 0; b < hist.bins(); ++b) {
    const auto bar_length =
        max_density == 0
            ? std::size_t{0}
            : static_cast<std::size_t>(hist.density[b] / max_density *
                                       static_cast<double>(width));
    std::ostringstream os;
    os.precision(3);
    os << std::fixed << hist.bin_centers[b] << ' ';
    os.precision(4);
    os << hist.density[b] << ' ' << std::string(bar_length, '#');
    lines.push_back(os.str());
  }
  return lines;
}

}  // namespace xfa
