// Time-series aggregation for Figures 3 and 5: "Since multiple traces have
// been studied in each test condition, we use the averaged outcome of the
// same test condition in the figures."
#pragma once

#include <cstddef>
#include <vector>

#include "sim/types.h"

namespace xfa {

struct TimeSeries {
  std::vector<SimTime> times;
  std::vector<double> values;

  std::size_t size() const { return values.size(); }
};

/// Point-wise average of several equally-timed series (trailing points of
/// longer series are averaged over however many series still have data).
TimeSeries average_series(const std::vector<TimeSeries>& series);

/// Coarsens a series by averaging consecutive windows of `window` seconds —
/// used to print a readable number of rows for a 10,000-second run.
TimeSeries downsample(const TimeSeries& series, SimTime window);

}  // namespace xfa
