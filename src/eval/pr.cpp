#include "eval/pr.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace xfa {

double PrCurve::area_under_curve() const {
  if (points.size() < 2) return 0.0;
  double area = 0;
  for (std::size_t i = 1; i < points.size(); ++i) {
    const double dr = points[i].recall - points[i - 1].recall;
    area += dr * (points[i].precision + points[i - 1].precision) / 2.0;
  }
  return area;
}

PrPoint PrCurve::optimal_point() const {
  XFA_CHECK(!points.empty());
  const PrPoint* best = &points.front();
  double best_distance = 1e18;
  for (const PrPoint& point : points) {
    const double dr = 1.0 - point.recall;
    const double dp = 1.0 - point.precision;
    const double distance = std::sqrt(dr * dr + dp * dp);
    if (distance < best_distance) {
      best_distance = distance;
      best = &point;
    }
  }
  return *best;
}

PrCurve recall_precision_curve(const std::vector<double>& scores,
                               const std::vector<int>& labels) {
  XFA_CHECK_EQ(scores.size(), labels.size());
  PrCurve curve;
  if (scores.empty()) return curve;

  // Sort events by score ascending; sweeping the threshold upward through
  // the sorted order flags progressively more events as alarms.
  std::vector<std::size_t> order(scores.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return scores[a] < scores[b];
  });

  std::size_t total_intrusions = 0;
  for (const int label : labels)
    if (label != 0) ++total_intrusions;
  if (total_intrusions == 0) return curve;

  std::size_t tp = 0, fp = 0;
  const auto emit = [&](double threshold) {
    PrPoint point;
    point.threshold = threshold;
    point.true_positives = tp;
    point.false_positives = fp;
    point.false_negatives = total_intrusions - tp;
    point.recall =
        static_cast<double>(tp) / static_cast<double>(total_intrusions);
    point.precision = (tp + fp) == 0
                          ? 1.0
                          : static_cast<double>(tp) /
                                static_cast<double>(tp + fp);
    curve.points.push_back(point);
  };

  emit(-1e18);  // threshold below everything: no alarms at all
  std::size_t i = 0;
  while (i < order.size()) {
    const double value = scores[order[i]];
    // Advance through the whole tie group: threshold just above `value`.
    while (i < order.size() && scores[order[i]] == value) {
      if (labels[order[i]] != 0)
        ++tp;
      else
        ++fp;
      ++i;
    }
    emit(std::nextafter(value, 1e18));
  }
  return curve;
}

}  // namespace xfa
