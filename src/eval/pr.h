// Recall-precision evaluation (paper §4.2): operating points swept over the
// decision threshold, the Area-Under-Curve accuracy measure relative to the
// random-guess diagonal, and the simplified optimal-point criterion
// ("optimal point occurs with the closest distance to (1,1)").
#pragma once

#include <cstddef>
#include <vector>

namespace xfa {

struct PrPoint {
  double threshold = 0;
  double recall = 0;     // p(alarm | intrusion)
  double precision = 0;  // p(intrusion | alarm)
  std::size_t true_positives = 0;
  std::size_t false_positives = 0;
  std::size_t false_negatives = 0;
};

struct PrCurve {
  std::vector<PrPoint> points;  // ascending recall

  /// Area between the curve and the recall axis, trapezoidal over recall.
  double area_under_curve() const;

  /// AUC minus the 0.5 of the random-guess diagonal (paper's accuracy
  /// comparison measure).
  double area_above_diagonal() const { return area_under_curve() - 0.5; }

  /// The point closest (Euclidean) to perfect (recall, precision) = (1, 1).
  PrPoint optimal_point() const;
};

/// Builds the curve from anomaly scores (higher = more normal; an event is
/// an alarm when score < threshold) and binary ground truth (1 = intrusion).
/// One operating point per distinct score value, plus the extremes.
PrCurve recall_precision_curve(const std::vector<double>& scores,
                               const std::vector<int>& labels);

}  // namespace xfa
