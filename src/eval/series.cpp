#include "eval/series.h"

#include <algorithm>

#include "common/check.h"

namespace xfa {

TimeSeries average_series(const std::vector<TimeSeries>& series) {
  TimeSeries out;
  if (series.empty()) return out;
  std::size_t longest = 0;
  for (const TimeSeries& s : series) longest = std::max(longest, s.size());
  out.times.resize(longest);
  out.values.assign(longest, 0.0);
  std::vector<std::size_t> contributors(longest, 0);
  for (const TimeSeries& s : series) {
    XFA_CHECK_EQ(s.times.size(), s.values.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
      out.times[i] = s.times[i];
      out.values[i] += s.values[i];
      ++contributors[i];
    }
  }
  for (std::size_t i = 0; i < longest; ++i)
    out.values[i] /= static_cast<double>(contributors[i]);
  return out;
}

TimeSeries downsample(const TimeSeries& series, SimTime window) {
  XFA_CHECK_GT(window, 0);
  TimeSeries out;
  if (series.size() == 0) return out;
  SimTime window_end = window;
  double sum = 0;
  std::size_t count = 0;
  for (std::size_t i = 0; i < series.size(); ++i) {
    while (series.times[i] > window_end && count > 0) {
      out.times.push_back(window_end);
      out.values.push_back(sum / static_cast<double>(count));
      sum = 0;
      count = 0;
      window_end += window;
    }
    while (series.times[i] > window_end) window_end += window;
    sum += series.values[i];
    ++count;
  }
  if (count > 0) {
    out.times.push_back(window_end);
    out.values.push_back(sum / static_cast<double>(count));
  }
  return out;
}

}  // namespace xfa
