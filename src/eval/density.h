// Score density distributions (paper Figures 4 and 6): histogram-based
// density estimates of the average-probability outputs over [0, 1].
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace xfa {

struct DensityHistogram {
  std::vector<double> bin_centers;
  std::vector<double> density;  // integrates to ~1 over [lo, hi]
  double lo = 0, hi = 1;

  std::size_t bins() const { return density.size(); }
};

/// Equal-width histogram density over [lo, hi]; out-of-range values clamp to
/// the edge bins.
DensityHistogram density_histogram(const std::vector<double>& values,
                                   std::size_t bins = 25, double lo = 0.0,
                                   double hi = 1.0);

/// Mass of the density that lies strictly below `threshold` — e.g. the
/// false-alarm mass of a normal-score density, or the detected mass of an
/// abnormal-score density.
double mass_below(const DensityHistogram& hist, double threshold);

/// Renders the histogram as a rows of "center density bar" lines for
/// terminal display.
std::vector<std::string> render_ascii(const DensityHistogram& hist,
                                      std::size_t width = 50);

}  // namespace xfa
