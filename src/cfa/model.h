// Cross-feature analysis (the paper's contribution, §3).
//
// Training (Algorithm 1): for every feature f_i, train a sub-model
// C_i : {f_1..f_L} \ {f_i} -> f_i on normal data only.
//
// Testing: apply the event to all L sub-models and combine:
//  * average match count (Algorithm 2):  sum_i [[C_i(x) = f_i(x)]] / L
//  * average probability (Algorithm 3):  sum_i p(f_i(x)|x) / L
// An event is an anomaly iff the chosen score falls below the decision
// threshold.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "common/status.h"
#include "features/discretize.h"
#include "ml/dataset.h"
#include "ml/linreg.h"

namespace xfa {

/// Both combined scores for one event.
struct EventScore {
  double avg_match_count = 0;
  double avg_probability = 0;
};

/// Which of the two combination rules drives the anomaly decision.
enum class ScoreKind { MatchCount, Probability };

inline double pick(const EventScore& score, ScoreKind kind) {
  return kind == ScoreKind::MatchCount ? score.avg_match_count
                                       : score.avg_probability;
}

class CrossFeatureModel {
 public:
  /// Algorithm 1. `label_columns` are the features to build sub-models for
  /// (the classifiable columns of the schema — time is excluded upstream);
  /// each sub-model uses all the *other* label columns as its inputs.
  /// Sub-model fits run on the shared execution pool (src/exec); pass
  /// `threads` = 1 to force serial fitting on the calling thread. Results
  /// are byte-identical either way.
  ///
  /// Degrades gracefully: a label column that is constant over the training
  /// data (the typical casualty of benign network faults — e.g. a counter
  /// that never fires under loss bursts) admits no discriminative sub-model
  /// C_i, so it is skipped, recorded in skipped_columns(), and excluded from
  /// every surviving sub-model's inputs; the Algorithm 2/3 averages then
  /// renormalize over the survivors (score() divides by the survivor count).
  /// Returns kDegenerateData/kInvalidArgument on unusable input and
  /// kTrainFailed when no sub-model survives; the model stays untrained.
  Status train(const Dataset& normal_data,
               const std::vector<std::size_t>& label_columns,
               const ClassifierFactory& factory, std::size_t threads = 0);

  bool trained() const { return !submodels_.empty(); }
  /// Label columns skipped as degenerate by the last successful train().
  const std::vector<std::size_t>& skipped_columns() const {
    return skipped_columns_;
  }
  std::size_t submodel_count() const { return submodels_.size(); }
  std::size_t label_column_of(std::size_t submodel) const {
    return label_columns_[submodel];
  }
  const Classifier& submodel(std::size_t index) const {
    return *submodels_[index];
  }

  /// Algorithms 2 and 3 for one event (computed together in one pass).
  EventScore score(const std::vector<int>& row) const;

  /// Per-sub-model verdicts for one event — the alert explanation: which
  /// labelled features deviated from their predicted values and how
  /// improbable the observed value was.
  struct SubmodelVerdict {
    std::size_t label_column = 0;
    bool matched = false;        // Algorithm-2 contribution
    double probability = 0;      // Algorithm-3 contribution, p(f_i(x)|x)
    int observed = 0;
    int predicted = 0;
  };

  /// Verdicts sorted by ascending probability (most anomalous first).
  std::vector<SubmodelVerdict> explain(const std::vector<int>& row) const;

  /// Scores every row of a trace/dataset. Row blocks are scored in parallel
  /// on the shared pool with slot-indexed writes, so the result is
  /// byte-identical to the serial per-row loop for any thread count.
  std::vector<EventScore> score_all(
      const std::vector<std::vector<int>>& rows) const;

 private:
  /// One-pass Algorithm 2/3 with a caller-owned scratch buffer (resized to
  /// the widest sub-model's label cardinality; reused across rows so the
  /// per-event hot path is allocation-free).
  EventScore score_with(const std::vector<int>& row,
                        std::vector<double>& scratch) const;

  std::vector<std::size_t> label_columns_;
  std::vector<std::size_t> skipped_columns_;
  std::vector<std::unique_ptr<Classifier>> submodels_;
  std::size_t max_dist_size_ = 0;  // widest sub-model label cardinality
  std::size_t schema_width_ = 0;   // 1 + widest trained column index
};

/// Continuous-feature extension (§3): one multiple-linear-regression
/// sub-model per feature, deviation measured by |log(C_i(x)/f_i(x))|. The
/// combined score maps mean log-distance into (0, 1] via exp(-d) so that the
/// same "below threshold == anomaly" convention applies.
class CrossFeatureRegressionModel {
 public:
  void train(const std::vector<std::vector<double>>& normal_rows,
             const std::vector<std::size_t>& label_columns);

  bool trained() const { return !submodels_.empty(); }
  std::size_t submodel_count() const { return submodels_.size(); }

  /// Mean log distance across sub-models (lower = more normal).
  double mean_log_distance(const std::vector<double>& row) const;

  /// exp(-mean_log_distance), in (0, 1]; higher = more normal.
  double score(const std::vector<double>& row) const;

 private:
  std::vector<std::size_t> label_columns_;
  std::vector<LinearRegression> submodels_;
};

}  // namespace xfa
