// Decision threshold selection (paper §3): "We can determine the threshold
// by computing average match count values on all normal events, and using a
// lower bound of output values with certain confidence level (which is one
// minus false alarm rate)."
#pragma once

#include <vector>

namespace xfa {

/// Returns the threshold theta such that approximately `false_alarm_rate` of
/// the given normal scores fall strictly below it (the (FAR)-quantile of the
/// normal score distribution). `scores` is taken by value and sorted.
double select_threshold(std::vector<double> scores, double false_alarm_rate);

/// Realized false alarm rate of a threshold over normal scores: the fraction
/// classified as anomalies (score < theta).
double realized_false_alarm_rate(const std::vector<double>& normal_scores,
                                 double threshold);

}  // namespace xfa
