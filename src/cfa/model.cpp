#include "cfa/model.h"

#include <cmath>
#include <thread>

#include "common/check.h"

namespace xfa {

void CrossFeatureModel::train(const Dataset& normal_data,
                              const std::vector<std::size_t>& label_columns,
                              const ClassifierFactory& factory,
                              std::size_t threads) {
  XFA_CHECK(!normal_data.rows.empty());
  XFA_CHECK(!label_columns.empty());
  for (const std::size_t col : label_columns)
    XFA_CHECK_LT(col, normal_data.columns()) << "label column out of range";
  label_columns_ = label_columns;
  submodels_.clear();
  submodels_.resize(label_columns_.size());

  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  threads = std::min(threads, label_columns_.size());

  // Worker over a strided partition of sub-model indices. Each sub-model
  // with respect to f_i uses every other label column as input features.
  const auto worker = [&](std::size_t start) {
    for (std::size_t i = start; i < label_columns_.size(); i += threads) {
      std::vector<std::size_t> features;
      features.reserve(label_columns_.size() - 1);
      for (const std::size_t col : label_columns_)
        if (col != label_columns_[i]) features.push_back(col);
      auto classifier = factory();
      classifier->fit(normal_data, features, label_columns_[i]);
      submodels_[i] = std::move(classifier);
    }
  };
  if (threads == 1) {
    worker(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker, t);
    for (std::thread& t : pool) t.join();
  }
}

EventScore CrossFeatureModel::score(const std::vector<int>& row) const {
  XFA_CHECK(trained());
  EventScore score;
  const auto count = static_cast<double>(submodels_.size());
  for (std::size_t i = 0; i < submodels_.size(); ++i) {
    XFA_CHECK_LT(label_columns_[i], row.size())
        << "row narrower than the trained schema";
    const int truth = row[label_columns_[i]];
    const std::vector<double> dist = submodels_[i]->predict_dist(row);
    // Match count (Algorithm 2): does the argmax equal the true value?
    int argmax = 0;
    for (std::size_t v = 1; v < dist.size(); ++v)
      if (dist[v] > dist[static_cast<std::size_t>(argmax)])
        argmax = static_cast<int>(v);
    if (argmax == truth) score.avg_match_count += 1.0;
    // Probability of the true class (Algorithm 3).
    if (truth >= 0 && static_cast<std::size_t>(truth) < dist.size())
      score.avg_probability += dist[static_cast<std::size_t>(truth)];
  }
  score.avg_match_count /= count;
  score.avg_probability /= count;
  return score;
}

std::vector<CrossFeatureModel::SubmodelVerdict> CrossFeatureModel::explain(
    const std::vector<int>& row) const {
  XFA_CHECK(trained());
  std::vector<SubmodelVerdict> verdicts;
  verdicts.reserve(submodels_.size());
  for (std::size_t i = 0; i < submodels_.size(); ++i) {
    SubmodelVerdict verdict;
    verdict.label_column = label_columns_[i];
    verdict.observed = row[label_columns_[i]];
    const std::vector<double> dist = submodels_[i]->predict_dist(row);
    int argmax = 0;
    for (std::size_t v = 1; v < dist.size(); ++v)
      if (dist[v] > dist[static_cast<std::size_t>(argmax)])
        argmax = static_cast<int>(v);
    verdict.predicted = argmax;
    verdict.matched = argmax == verdict.observed;
    verdict.probability =
        verdict.observed >= 0 &&
                static_cast<std::size_t>(verdict.observed) < dist.size()
            ? dist[static_cast<std::size_t>(verdict.observed)]
            : 0.0;
    verdicts.push_back(verdict);
  }
  std::sort(verdicts.begin(), verdicts.end(),
            [](const SubmodelVerdict& a, const SubmodelVerdict& b) {
              return a.probability < b.probability;
            });
  return verdicts;
}

std::vector<EventScore> CrossFeatureModel::score_all(
    const std::vector<std::vector<int>>& rows) const {
  std::vector<EventScore> scores;
  scores.reserve(rows.size());
  for (const auto& row : rows) scores.push_back(score(row));
  return scores;
}

void CrossFeatureRegressionModel::train(
    const std::vector<std::vector<double>>& normal_rows,
    const std::vector<std::size_t>& label_columns) {
  XFA_CHECK(!normal_rows.empty());
  for (const std::size_t col : label_columns)
    XFA_CHECK_LT(col, normal_rows.front().size())
        << "label column out of range";
  label_columns_ = label_columns;
  submodels_.assign(label_columns_.size(), LinearRegression{});

  for (std::size_t i = 0; i < label_columns_.size(); ++i) {
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    x.reserve(normal_rows.size());
    y.reserve(normal_rows.size());
    for (const auto& row : normal_rows) {
      std::vector<double> features;
      features.reserve(label_columns_.size() - 1);
      for (const std::size_t col : label_columns_)
        if (col != label_columns_[i]) features.push_back(row[col]);
      x.push_back(std::move(features));
      y.push_back(row[label_columns_[i]]);
    }
    submodels_[i].fit(x, y);
  }
}

double CrossFeatureRegressionModel::mean_log_distance(
    const std::vector<double>& row) const {
  XFA_CHECK(trained());
  double total = 0;
  for (std::size_t i = 0; i < label_columns_.size(); ++i) {
    std::vector<double> features;
    features.reserve(label_columns_.size() - 1);
    for (const std::size_t col : label_columns_)
      if (col != label_columns_[i]) features.push_back(row[col]);
    total += LinearRegression::log_distance(submodels_[i].predict(features),
                                            row[label_columns_[i]]);
  }
  return total / static_cast<double>(label_columns_.size());
}

double CrossFeatureRegressionModel::score(
    const std::vector<double>& row) const {
  return std::exp(-mean_log_distance(row));
}

}  // namespace xfa
