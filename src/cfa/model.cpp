#include "cfa/model.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "exec/parallel_for.h"
#include "ml/dataset_view.h"

namespace xfa {

namespace {

/// A column with a single observed value cannot be predicted *discriminatively*
/// and (worse) trains sub-models that memorize the constant — under benign
/// faults such columns appear routinely (e.g. frozen counters during long
/// loss bursts), so they are skipped rather than fatal.
bool is_constant_column(std::span<const std::int32_t> column) {
  const std::int32_t first = column.front();
  for (const std::int32_t v : column)
    if (v != first) return false;
  return true;
}

/// Rows scored per parallel_for task: big enough to amortize dispatch,
/// small enough to load-balance a 2000-row trace across the pool.
constexpr std::size_t kScoreBlock = 64;

}  // namespace

Status CrossFeatureModel::train(const Dataset& normal_data,
                                const std::vector<std::size_t>& label_columns,
                                const ClassifierFactory& factory,
                                std::size_t threads) {
  if (normal_data.rows.empty())
    return {StatusCode::kDegenerateData, "no training rows"};
  if (label_columns.empty())
    return {StatusCode::kInvalidArgument, "no label columns"};
  for (const std::size_t col : label_columns)
    if (col >= normal_data.columns())
      return {StatusCode::kInvalidArgument, "label column out of range"};

  // One column-major view, built once and shared (read-only) by all L
  // sub-model fits — the per-fit row-table walk was the training hot spot.
  const DatasetView view(normal_data);

  std::vector<std::size_t> survivors;
  std::vector<std::size_t> skipped;
  survivors.reserve(label_columns.size());
  for (const std::size_t col : label_columns) {
    if (is_constant_column(view.column(col))) {
      skipped.push_back(col);
    } else {
      survivors.push_back(col);
    }
  }
  if (survivors.empty())
    return {StatusCode::kTrainFailed,
            "every label column is constant; no sub-model can discriminate"};

  label_columns_ = std::move(survivors);
  skipped_columns_ = std::move(skipped);
  submodels_.clear();
  submodels_.resize(label_columns_.size());
  max_dist_size_ = 0;
  schema_width_ = 0;
  for (const std::size_t col : label_columns_) {
    max_dist_size_ = std::max(
        max_dist_size_, static_cast<std::size_t>(view.cardinality(col)));
    schema_width_ = std::max(schema_width_, col + 1);
  }

  // One sub-model fit per index, written to its own slot — byte-identical
  // for any worker count. Each sub-model with respect to f_i uses every
  // other label column as input features.
  const auto fit_submodel = [&](std::size_t i) {
    std::vector<std::size_t> features;
    features.reserve(label_columns_.size() - 1);
    for (const std::size_t col : label_columns_)
      if (col != label_columns_[i]) features.push_back(col);
    auto classifier = factory();
    classifier->fit(view, features, label_columns_[i]);
    submodels_[i] = std::move(classifier);
  };
  if (threads == 1) {
    // Explicit opt-out (callers measuring serial cost): stay on this thread.
    for (std::size_t i = 0; i < label_columns_.size(); ++i) fit_submodel(i);
  } else {
    parallel_for(shared_pool(), label_columns_.size(), fit_submodel);
  }
  return Status::Ok();
}

EventScore CrossFeatureModel::score_with(const std::vector<int>& row,
                                         std::vector<double>& scratch) const {
  XFA_CHECK(trained());
  // Checked before ANY sub-model predicts: every sub-model reads the other
  // label columns as features, so a narrow row must be rejected up front,
  // not when the loop happens to reach an out-of-range label column.
  XFA_CHECK_LE(schema_width_, row.size())
      << "row narrower than the trained schema";
  scratch.resize(max_dist_size_);  // no-op once the caller's buffer is sized
  EventScore score;
  const auto count = static_cast<double>(submodels_.size());
  for (std::size_t i = 0; i < submodels_.size(); ++i) {
    const int truth = row[label_columns_[i]];
    // Zero-copy for C4.5/RIPPER (cached distributions); NBC writes into the
    // scratch the span then aliases.
    const std::span<const double> dist =
        submodels_[i]->predict_dist_span(row, scratch);
    const std::size_t classes = dist.size();
    // Match count (Algorithm 2): does the argmax equal the true value?
    std::size_t argmax = 0;
    for (std::size_t v = 1; v < classes; ++v)
      if (dist[v] > dist[argmax]) argmax = v;
    if (argmax == static_cast<std::size_t>(truth) && truth >= 0)
      score.avg_match_count += 1.0;
    // Probability of the true class (Algorithm 3).
    if (truth >= 0 && static_cast<std::size_t>(truth) < classes)
      score.avg_probability += dist[static_cast<std::size_t>(truth)];
  }
  score.avg_match_count /= count;
  score.avg_probability /= count;
  return score;
}

EventScore CrossFeatureModel::score(const std::vector<int>& row) const {
  // Reused across calls (per thread) so single-event scoring in a loop is
  // as allocation-free as the batched path; score_with sizes it per model.
  thread_local std::vector<double> scratch;
  return score_with(row, scratch);
}

std::vector<CrossFeatureModel::SubmodelVerdict> CrossFeatureModel::explain(
    const std::vector<int>& row) const {
  XFA_CHECK(trained());
  XFA_CHECK_LE(schema_width_, row.size())
      << "row narrower than the trained schema";
  std::vector<SubmodelVerdict> verdicts;
  verdicts.reserve(submodels_.size());
  std::vector<double> scratch(max_dist_size_);
  for (std::size_t i = 0; i < submodels_.size(); ++i) {
    SubmodelVerdict verdict;
    verdict.label_column = label_columns_[i];
    verdict.observed = row[label_columns_[i]];
    const std::span<const double> dist =
        submodels_[i]->predict_dist_span(row, scratch);
    const std::size_t classes = dist.size();
    std::size_t argmax = 0;
    for (std::size_t v = 1; v < classes; ++v)
      if (dist[v] > dist[argmax]) argmax = v;
    verdict.predicted = static_cast<int>(argmax);
    verdict.matched = verdict.predicted == verdict.observed;
    verdict.probability =
        verdict.observed >= 0 &&
                static_cast<std::size_t>(verdict.observed) < classes
            ? dist[static_cast<std::size_t>(verdict.observed)]
            : 0.0;
    verdicts.push_back(verdict);
  }
  std::sort(verdicts.begin(), verdicts.end(),
            [](const SubmodelVerdict& a, const SubmodelVerdict& b) {
              return a.probability < b.probability;
            });
  return verdicts;
}

std::vector<EventScore> CrossFeatureModel::score_all(
    const std::vector<std::vector<int>>& rows) const {
  std::vector<EventScore> scores(rows.size());
  if (rows.empty()) return scores;
  // Each block task owns one scratch buffer and writes only its own slots;
  // per-row arithmetic does not depend on the blocking, so the output is
  // byte-identical for any pool size (including the serial case).
  const std::size_t blocks = (rows.size() + kScoreBlock - 1) / kScoreBlock;
  parallel_for(shared_pool(), blocks, [&](std::size_t b) {
    std::vector<double> scratch(max_dist_size_);
    const std::size_t lo = b * kScoreBlock;
    const std::size_t hi = std::min(lo + kScoreBlock, rows.size());
    for (std::size_t i = lo; i < hi; ++i)
      scores[i] = score_with(rows[i], scratch);
  });
  return scores;
}

void CrossFeatureRegressionModel::train(
    const std::vector<std::vector<double>>& normal_rows,
    const std::vector<std::size_t>& label_columns) {
  XFA_CHECK(!normal_rows.empty());
  for (const std::size_t col : label_columns)
    XFA_CHECK_LT(col, normal_rows.front().size())
        << "label column out of range";
  label_columns_ = label_columns;
  submodels_.assign(label_columns_.size(), LinearRegression{});

  for (std::size_t i = 0; i < label_columns_.size(); ++i) {
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    x.reserve(normal_rows.size());
    y.reserve(normal_rows.size());
    for (const auto& row : normal_rows) {
      std::vector<double> features;
      features.reserve(label_columns_.size() - 1);
      for (const std::size_t col : label_columns_)
        if (col != label_columns_[i]) features.push_back(row[col]);
      x.push_back(std::move(features));
      y.push_back(row[label_columns_[i]]);
    }
    submodels_[i].fit(x, y);
  }
}

double CrossFeatureRegressionModel::mean_log_distance(
    const std::vector<double>& row) const {
  XFA_CHECK(trained());
  double total = 0;
  // One feature buffer reused across sub-models (hot path: called per row).
  std::vector<double> features;
  features.reserve(label_columns_.size() - 1);
  for (std::size_t i = 0; i < label_columns_.size(); ++i) {
    features.clear();
    for (const std::size_t col : label_columns_)
      if (col != label_columns_[i]) features.push_back(row[col]);
    total += LinearRegression::log_distance(submodels_[i].predict(features),
                                            row[label_columns_[i]]);
  }
  return total / static_cast<double>(label_columns_.size());
}

double CrossFeatureRegressionModel::score(
    const std::vector<double>& row) const {
  return std::exp(-mean_log_distance(row));
}

}  // namespace xfa
