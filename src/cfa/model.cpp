#include "cfa/model.h"

#include <cmath>

#include "common/check.h"
#include "exec/parallel_for.h"

namespace xfa {

namespace {

/// A column with a single observed value cannot be predicted *discriminatively*
/// and (worse) trains sub-models that memorize the constant — under benign
/// faults such columns appear routinely (e.g. frozen counters during long
/// loss bursts), so they are skipped rather than fatal.
bool is_constant_column(const std::vector<std::vector<int>>& rows,
                        std::size_t column) {
  const int first = rows.front()[column];
  for (const auto& row : rows)
    if (row[column] != first) return false;
  return true;
}

}  // namespace

Status CrossFeatureModel::train(const Dataset& normal_data,
                                const std::vector<std::size_t>& label_columns,
                                const ClassifierFactory& factory,
                                std::size_t threads) {
  if (normal_data.rows.empty())
    return {StatusCode::kDegenerateData, "no training rows"};
  if (label_columns.empty())
    return {StatusCode::kInvalidArgument, "no label columns"};
  for (const std::size_t col : label_columns)
    if (col >= normal_data.columns())
      return {StatusCode::kInvalidArgument, "label column out of range"};

  std::vector<std::size_t> survivors;
  std::vector<std::size_t> skipped;
  survivors.reserve(label_columns.size());
  for (const std::size_t col : label_columns) {
    if (is_constant_column(normal_data.rows, col)) {
      skipped.push_back(col);
    } else {
      survivors.push_back(col);
    }
  }
  if (survivors.empty())
    return {StatusCode::kTrainFailed,
            "every label column is constant; no sub-model can discriminate"};

  label_columns_ = std::move(survivors);
  skipped_columns_ = std::move(skipped);
  submodels_.clear();
  submodels_.resize(label_columns_.size());

  // One sub-model fit per index, written to its own slot — byte-identical
  // for any worker count. Each sub-model with respect to f_i uses every
  // other label column as input features.
  const auto fit_submodel = [&](std::size_t i) {
    std::vector<std::size_t> features;
    features.reserve(label_columns_.size() - 1);
    for (const std::size_t col : label_columns_)
      if (col != label_columns_[i]) features.push_back(col);
    auto classifier = factory();
    classifier->fit(normal_data, features, label_columns_[i]);
    submodels_[i] = std::move(classifier);
  };
  if (threads == 1) {
    // Explicit opt-out (callers measuring serial cost): stay on this thread.
    for (std::size_t i = 0; i < label_columns_.size(); ++i) fit_submodel(i);
  } else {
    parallel_for(shared_pool(), label_columns_.size(), fit_submodel);
  }
  return Status::Ok();
}

EventScore CrossFeatureModel::score(const std::vector<int>& row) const {
  XFA_CHECK(trained());
  EventScore score;
  const auto count = static_cast<double>(submodels_.size());
  for (std::size_t i = 0; i < submodels_.size(); ++i) {
    XFA_CHECK_LT(label_columns_[i], row.size())
        << "row narrower than the trained schema";
    const int truth = row[label_columns_[i]];
    const std::vector<double> dist = submodels_[i]->predict_dist(row);
    // Match count (Algorithm 2): does the argmax equal the true value?
    int argmax = 0;
    for (std::size_t v = 1; v < dist.size(); ++v)
      if (dist[v] > dist[static_cast<std::size_t>(argmax)])
        argmax = static_cast<int>(v);
    if (argmax == truth) score.avg_match_count += 1.0;
    // Probability of the true class (Algorithm 3).
    if (truth >= 0 && static_cast<std::size_t>(truth) < dist.size())
      score.avg_probability += dist[static_cast<std::size_t>(truth)];
  }
  score.avg_match_count /= count;
  score.avg_probability /= count;
  return score;
}

std::vector<CrossFeatureModel::SubmodelVerdict> CrossFeatureModel::explain(
    const std::vector<int>& row) const {
  XFA_CHECK(trained());
  std::vector<SubmodelVerdict> verdicts;
  verdicts.reserve(submodels_.size());
  for (std::size_t i = 0; i < submodels_.size(); ++i) {
    SubmodelVerdict verdict;
    verdict.label_column = label_columns_[i];
    verdict.observed = row[label_columns_[i]];
    const std::vector<double> dist = submodels_[i]->predict_dist(row);
    int argmax = 0;
    for (std::size_t v = 1; v < dist.size(); ++v)
      if (dist[v] > dist[static_cast<std::size_t>(argmax)])
        argmax = static_cast<int>(v);
    verdict.predicted = argmax;
    verdict.matched = argmax == verdict.observed;
    verdict.probability =
        verdict.observed >= 0 &&
                static_cast<std::size_t>(verdict.observed) < dist.size()
            ? dist[static_cast<std::size_t>(verdict.observed)]
            : 0.0;
    verdicts.push_back(verdict);
  }
  std::sort(verdicts.begin(), verdicts.end(),
            [](const SubmodelVerdict& a, const SubmodelVerdict& b) {
              return a.probability < b.probability;
            });
  return verdicts;
}

std::vector<EventScore> CrossFeatureModel::score_all(
    const std::vector<std::vector<int>>& rows) const {
  std::vector<EventScore> scores;
  scores.reserve(rows.size());
  for (const auto& row : rows) scores.push_back(score(row));
  return scores;
}

void CrossFeatureRegressionModel::train(
    const std::vector<std::vector<double>>& normal_rows,
    const std::vector<std::size_t>& label_columns) {
  XFA_CHECK(!normal_rows.empty());
  for (const std::size_t col : label_columns)
    XFA_CHECK_LT(col, normal_rows.front().size())
        << "label column out of range";
  label_columns_ = label_columns;
  submodels_.assign(label_columns_.size(), LinearRegression{});

  for (std::size_t i = 0; i < label_columns_.size(); ++i) {
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    x.reserve(normal_rows.size());
    y.reserve(normal_rows.size());
    for (const auto& row : normal_rows) {
      std::vector<double> features;
      features.reserve(label_columns_.size() - 1);
      for (const std::size_t col : label_columns_)
        if (col != label_columns_[i]) features.push_back(row[col]);
      x.push_back(std::move(features));
      y.push_back(row[label_columns_[i]]);
    }
    submodels_[i].fit(x, y);
  }
}

double CrossFeatureRegressionModel::mean_log_distance(
    const std::vector<double>& row) const {
  XFA_CHECK(trained());
  double total = 0;
  for (std::size_t i = 0; i < label_columns_.size(); ++i) {
    std::vector<double> features;
    features.reserve(label_columns_.size() - 1);
    for (const std::size_t col : label_columns_)
      if (col != label_columns_[i]) features.push_back(row[col]);
    total += LinearRegression::log_distance(submodels_[i].predict(features),
                                            row[label_columns_[i]]);
  }
  return total / static_cast<double>(label_columns_.size());
}

double CrossFeatureRegressionModel::score(
    const std::vector<double>& row) const {
  return std::exp(-mean_log_distance(row));
}

}  // namespace xfa
