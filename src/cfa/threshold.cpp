#include "cfa/threshold.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace xfa {

double select_threshold(std::vector<double> scores, double false_alarm_rate) {
  XFA_CHECK(!scores.empty());
  XFA_CHECK(false_alarm_rate >= 0 && false_alarm_rate < 1);
  std::sort(scores.begin(), scores.end());
  const auto index = static_cast<std::size_t>(
      std::floor(false_alarm_rate * static_cast<double>(scores.size())));
  return scores[std::min(index, scores.size() - 1)];
}

double realized_false_alarm_rate(const std::vector<double>& normal_scores,
                                 double threshold) {
  if (normal_scores.empty()) return 0.0;
  std::size_t alarms = 0;
  for (const double score : normal_scores)
    if (score < threshold) ++alarms;
  return static_cast<double>(alarms) /
         static_cast<double>(normal_scores.size());
}

}  // namespace xfa
