// Fundamental simulation types shared across all subsystems.
#pragma once

#include <cstdint>
#include <limits>

namespace xfa {

/// Simulation clock time, in seconds from simulation start.
using SimTime = double;

/// A node's network address. Nodes are numbered 0..N-1.
using NodeId = std::int32_t;

/// Sentinel meaning "no node" / broadcast depending on context.
inline constexpr NodeId kInvalidNode = -1;

/// Link-layer broadcast address.
inline constexpr NodeId kBroadcast = -2;

/// "Infinitely far in the future" for timers that are not armed.
inline constexpr SimTime kNever = std::numeric_limits<SimTime>::infinity();

}  // namespace xfa
