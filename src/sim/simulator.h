// Simulator: the top-level context owning the clock and the root RNG.
//
// A Simulator is the ns-2 "Scheduler + Simulator object" equivalent. All
// subsystems hold a reference to it for time, event scheduling and
// reproducible randomness.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/rng.h"
#include "sim/scheduler.h"
#include "sim/types.h"

namespace xfa {

class Simulator {
 public:
  /// `seed` drives every random decision made during the run.
  explicit Simulator(std::uint64_t seed = 1);

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return scheduler_.now(); }
  Scheduler& scheduler() { return scheduler_; }

  /// Root RNG; prefer fork_rng() for subsystems.
  Rng& rng() { return rng_; }

  /// Independent RNG stream derived from the root seed.
  Rng fork_rng() { return rng_.fork(); }

  EventId at(SimTime time, Scheduler::Callback fn) {
    return scheduler_.schedule_at(time, std::move(fn));
  }
  EventId after(SimTime delay, Scheduler::Callback fn) {
    return scheduler_.schedule_in(delay, std::move(fn));
  }
  bool cancel(EventId id) { return scheduler_.cancel(id); }

  void run_until(SimTime until) { scheduler_.run_until(until); }
  void run() { scheduler_.run(); }

 private:
  Scheduler scheduler_;
  Rng rng_;
};

/// A repeating timer helper: reschedules itself every `interval` seconds
/// until stop() is called or the owner is destroyed.
class PeriodicTimer {
 public:
  PeriodicTimer(Simulator& sim, SimTime interval, std::function<void()> fn)
      : sim_(sim), interval_(interval), fn_(std::move(fn)) {}
  ~PeriodicTimer() { stop(); }

  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  /// Arms the timer; first firing after `initial_delay` (defaults to the
  /// interval itself).
  void start(SimTime initial_delay = -1);
  void stop();
  bool running() const { return armed_; }

 private:
  void fire();

  Simulator& sim_;
  SimTime interval_;
  std::function<void()> fn_;
  EventId pending_ = 0;
  bool armed_ = false;
};

}  // namespace xfa
