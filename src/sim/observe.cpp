#include "sim/observe.h"

namespace xfa {

const char* to_string(AuditPacketType type) {
  switch (type) {
    case AuditPacketType::Data: return "data";
    case AuditPacketType::RouteAll: return "route";
    case AuditPacketType::RouteRequest: return "rreq";
    case AuditPacketType::RouteReply: return "rrep";
    case AuditPacketType::RouteError: return "rerr";
    case AuditPacketType::Hello: return "hello";
  }
  return "?";
}

const char* to_string(FlowDirection dir) {
  switch (dir) {
    case FlowDirection::Received: return "recv";
    case FlowDirection::Sent: return "sent";
    case FlowDirection::Forwarded: return "fwd";
    case FlowDirection::Dropped: return "drop";
  }
  return "?";
}

const char* to_string(RouteEventKind kind) {
  switch (kind) {
    case RouteEventKind::Add: return "add";
    case RouteEventKind::Remove: return "remove";
    case RouteEventKind::Find: return "find";
    case RouteEventKind::Notice: return "notice";
    case RouteEventKind::Repair: return "repair";
  }
  return "?";
}

}  // namespace xfa
