#include "sim/rng.h"

#include <cmath>

#include "common/check.h"

namespace xfa {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  XFA_CHECK_LE(lo, hi);
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_int(std::uint64_t n) {
  XFA_CHECK_GT(n, 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % n;
  std::uint64_t v;
  do {
    v = (*this)();
  } while (v >= limit);
  return v % n;
}

double Rng::exponential(double mean) {
  XFA_CHECK_GT(mean, 0);
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

bool Rng::chance(double p) { return uniform() < p; }

Rng Rng::fork() { return Rng((*this)()); }

}  // namespace xfa
