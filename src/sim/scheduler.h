// Discrete-event scheduler: the heart of the ns-2 replacement.
//
// Storage layout (the simulation-core hot path, see DESIGN.md §10): event
// callbacks live in a free-list slab indexed by the heap entries, so one
// schedule/dispatch cycle costs a slab slot reuse plus a binary-heap
// push/pop — no per-event map insert/find/erase, and (for the common small
// captures) no per-event allocation thanks to InlineFunction's inline
// buffer. Cancellation releases the callback immediately and leaves a
// tombstone in the heap; tombstones are compacted away when they outnumber
// the live entries (see maybe_compact).
#pragma once

#include <cstdint>
#include <vector>

#include "common/inline_function.h"
#include "sim/types.h"

namespace xfa {

/// Opaque handle identifying a scheduled event, usable for cancellation.
/// Encodes (slot generation << 32 | slot index); never 0 for a live event.
using EventId = std::uint64_t;

/// A time-ordered queue of callbacks. Events scheduled for the same time fire
/// in scheduling order (FIFO), which keeps runs deterministic.
class Scheduler {
 public:
  /// Callback storage type: move-only, small-buffer-optimized.
  using Callback = InlineFunction;

  Scheduler() = default;

  /// Current simulation time; advances only inside run loops.
  SimTime now() const { return now_; }

  /// Schedules `fn` to run at absolute time `at` (>= now). Returns an id that
  /// can be passed to cancel().
  EventId schedule_at(SimTime at, Callback fn);

  /// Schedules `fn` to run `delay` seconds from now (delay >= 0).
  EventId schedule_in(SimTime delay, Callback fn);

  /// Cancels a pending event. Cancelling an already-fired or unknown id is a
  /// no-op. Returns true if the event was pending. The callback is destroyed
  /// immediately; only the heap entry lingers as a tombstone.
  bool cancel(EventId id);

  /// Runs events until the queue is empty or simulated time would pass
  /// `until`; the clock ends at `until` if the queue drains earlier.
  void run_until(SimTime until);

  /// Runs until the queue is empty.
  void run();

  /// Number of events dispatched so far (diagnostic).
  std::uint64_t dispatched() const { return dispatched_; }

  /// Number of successful cancellations so far (diagnostic).
  std::uint64_t cancelled() const { return cancelled_; }

  /// Number of live (not cancelled) events currently pending.
  std::size_t pending() const { return heap_.size() - cancelled_pending_; }

  /// High-water mark of live pending events (diagnostic; microbench).
  std::size_t peak_pending() const { return peak_pending_; }

  /// Number of tombstone compaction passes run so far (diagnostic).
  std::uint64_t compactions() const { return compactions_; }

 private:
  struct Slot {
    Callback fn;
    std::uint32_t generation = 1;  // bumped on release; stale ids miss
    bool armed = false;            // true while a live event owns the slot
  };
  struct Entry {
    SimTime at;
    std::uint64_t seq;  // tie-break: FIFO among same-time events
    std::uint32_t slot;
    std::uint32_t generation;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  bool live(const Entry& entry) const {
    const Slot& slot = slots_[entry.slot];
    return slot.armed && slot.generation == entry.generation;
  }

  void release_slot(std::uint32_t index);
  void dispatch_next();
  void maybe_compact();

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t dispatched_ = 0;
  std::uint64_t cancelled_ = 0;
  std::uint64_t compactions_ = 0;
  std::size_t cancelled_pending_ = 0;
  std::size_t peak_pending_ = 0;
  // Binary heap (std::push_heap/pop_heap over Later) of pending entries; a
  // plain vector so compaction can filter tombstones in place.
  std::vector<Entry> heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
};

}  // namespace xfa
