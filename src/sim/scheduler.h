// Discrete-event scheduler: the heart of the ns-2 replacement.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "sim/types.h"

namespace xfa {

/// Opaque handle identifying a scheduled event, usable for cancellation.
using EventId = std::uint64_t;

/// A time-ordered queue of callbacks. Events scheduled for the same time fire
/// in scheduling order (FIFO), which keeps runs deterministic.
class Scheduler {
 public:
  Scheduler() = default;

  /// Current simulation time; advances only inside run loops.
  SimTime now() const { return now_; }

  /// Schedules `fn` to run at absolute time `at` (>= now). Returns an id that
  /// can be passed to cancel().
  EventId schedule_at(SimTime at, std::function<void()> fn);

  /// Schedules `fn` to run `delay` seconds from now (delay >= 0).
  EventId schedule_in(SimTime delay, std::function<void()> fn);

  /// Cancels a pending event. Cancelling an already-fired or unknown id is a
  /// no-op. Returns true if the event was pending.
  bool cancel(EventId id);

  /// Runs events until the queue is empty or simulated time would pass
  /// `until`; the clock ends at `until` if the queue drains earlier.
  void run_until(SimTime until);

  /// Runs until the queue is empty.
  void run();

  /// Number of events dispatched so far (diagnostic).
  std::uint64_t dispatched() const { return dispatched_; }

  /// Number of events currently pending (includes cancelled-but-unpopped).
  std::size_t pending() const { return queue_.size() - cancelled_pending_; }

 private:
  struct Entry {
    SimTime at;
    std::uint64_t seq;  // tie-break: FIFO among same-time events
    EventId id;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  void dispatch_next();

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_id_ = 1;
  std::uint64_t dispatched_ = 0;
  std::size_t cancelled_pending_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  // Callback storage; erased on dispatch or cancel. An entry popped from the
  // queue with no callback here was cancelled.
  std::unordered_map<EventId, std::function<void()>> callbacks_;
};

}  // namespace xfa
