// Deterministic pseudo-random number generation for the simulator.
//
// Every stochastic component of the simulation draws from an Rng seeded from
// the scenario seed, so identical configurations reproduce traces exactly.
// The generator is xoshiro256** (Blackman & Vigna), seeded via SplitMix64.
#pragma once

#include <array>
#include <cstdint>

namespace xfa {

/// Deterministic 64-bit PRNG with convenience distributions.
///
/// Satisfies the UniformRandomBitGenerator requirements so it can also be
/// used with <random> distributions if callers prefer.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the generator; equal seeds yield equal streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Next raw 64-bit value.
  result_type operator()();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_int(std::uint64_t n);

  /// Exponentially distributed value with the given mean. Requires mean > 0.
  double exponential(double mean);

  /// Bernoulli trial with success probability p.
  bool chance(double p);

  /// Derives an independent child generator; used to give each subsystem its
  /// own stream so adding draws in one place does not perturb another.
  Rng fork();

 private:
  std::array<std::uint64_t, 4> state_;
};

}  // namespace xfa
