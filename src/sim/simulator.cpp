#include "sim/simulator.h"

namespace xfa {

Simulator::Simulator(std::uint64_t seed) : rng_(seed) {}

void PeriodicTimer::start(SimTime initial_delay) {
  stop();
  armed_ = true;
  const SimTime delay = initial_delay < 0 ? interval_ : initial_delay;
  pending_ = sim_.after(delay, [this] { fire(); });
}

void PeriodicTimer::stop() {
  if (armed_) {
    sim_.cancel(pending_);
    armed_ = false;
  }
}

void PeriodicTimer::fire() {
  // Reschedule before invoking so fn_ may stop() the timer.
  pending_ = sim_.after(interval_, [this] { fire(); });
  fn_();
}

}  // namespace xfa
