#include "sim/scheduler.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/check.h"

namespace xfa {
namespace {

/// Tombstones are compacted only above this heap size: tiny queues re-heapify
/// in microseconds anyway, and the threshold keeps a schedule/cancel/schedule
/// ping-pong from compacting on every other cancel.
constexpr std::size_t kCompactMinEntries = 64;

constexpr EventId make_event_id(std::uint32_t slot, std::uint32_t generation) {
  return (static_cast<EventId>(generation) << 32) | slot;
}

}  // namespace

EventId Scheduler::schedule_at(SimTime at, Callback fn) {
  XFA_CHECK(at >= now_) << "cannot schedule into the past";
  XFA_CHECK(fn) << "null event callback";
  std::uint32_t index;
  if (!free_slots_.empty()) {
    index = free_slots_.back();
    free_slots_.pop_back();
  } else {
    XFA_CHECK_LT(slots_.size(), std::numeric_limits<std::uint32_t>::max());
    index = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& slot = slots_[index];
  slot.fn = std::move(fn);
  slot.armed = true;
  heap_.push_back(Entry{at, next_seq_++, index, slot.generation});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  peak_pending_ = std::max(peak_pending_, heap_.size() - cancelled_pending_);
  return make_event_id(index, slot.generation);
}

EventId Scheduler::schedule_in(SimTime delay, Callback fn) {
  XFA_CHECK_GE(delay, 0);
  return schedule_at(now_ + delay, std::move(fn));
}

void Scheduler::release_slot(std::uint32_t index) {
  Slot& slot = slots_[index];
  slot.armed = false;
  // Bumping the generation invalidates every EventId and heap entry minted
  // for the previous occupancy (skip 0 so live ids are never 0 on wrap).
  if (++slot.generation == 0) slot.generation = 1;
  free_slots_.push_back(index);
}

bool Scheduler::cancel(EventId id) {
  const auto index = static_cast<std::uint32_t>(id & 0xffffffffu);
  const auto generation = static_cast<std::uint32_t>(id >> 32);
  if (index >= slots_.size()) return false;
  Slot& slot = slots_[index];
  if (!slot.armed || slot.generation != generation) return false;
  slot.fn = Callback();  // release the callback (and its captures) now
  release_slot(index);
  ++cancelled_;
  ++cancelled_pending_;
  maybe_compact();
  return true;
}

void Scheduler::maybe_compact() {
  // Compact when tombstones dominate: cancelled entries otherwise sit in the
  // heap until their fire time, so a schedule-heavy workload that cancels
  // most timers (e.g. per-packet retransmit timers) would grow the heap
  // without bound relative to its live size.
  if (heap_.size() < kCompactMinEntries ||
      cancelled_pending_ * 2 <= heap_.size()) {
    return;
  }
  std::erase_if(heap_, [this](const Entry& entry) { return !live(entry); });
  std::make_heap(heap_.begin(), heap_.end(), Later{});
  cancelled_pending_ = 0;
  ++compactions_;
}

void Scheduler::dispatch_next() {
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  const Entry entry = heap_.back();
  heap_.pop_back();
  if (!live(entry)) {
    // Cancelled event: discard the tombstone silently.
    XFA_CHECK_GT(cancelled_pending_, 0);
    --cancelled_pending_;
    return;
  }
  // Dispatch order is the core determinism invariant: the queue must hand
  // back events in non-decreasing time.
  XFA_CHECK_GE(entry.at, now_) << "event queue regressed in time";
  now_ = entry.at;
  // Move out and release the slot before invoking: the callback may
  // schedule/cancel re-entrantly (growing slots_ would invalidate references,
  // and cancelling its own id must be a no-op).
  Callback fn = std::move(slots_[entry.slot].fn);
  release_slot(entry.slot);
  ++dispatched_;
  fn();
}

void Scheduler::run_until(SimTime until) {
  while (!heap_.empty() && heap_.front().at <= until) dispatch_next();
  if (now_ < until) now_ = until;
}

void Scheduler::run() {
  while (!heap_.empty()) dispatch_next();
}

}  // namespace xfa
