#include "sim/scheduler.h"

#include <utility>

#include "common/check.h"

namespace xfa {

EventId Scheduler::schedule_at(SimTime at, std::function<void()> fn) {
  XFA_CHECK(at >= now_) << "cannot schedule into the past";
  XFA_CHECK(fn) << "null event callback";
  const EventId id = next_id_++;
  queue_.push(Entry{at, next_seq_++, id});
  callbacks_.emplace(id, std::move(fn));
  return id;
}

EventId Scheduler::schedule_in(SimTime delay, std::function<void()> fn) {
  XFA_CHECK_GE(delay, 0);
  return schedule_at(now_ + delay, std::move(fn));
}

bool Scheduler::cancel(EventId id) {
  const auto it = callbacks_.find(id);
  if (it == callbacks_.end()) return false;
  callbacks_.erase(it);
  ++cancelled_pending_;
  return true;
}

void Scheduler::dispatch_next() {
  const Entry entry = queue_.top();
  queue_.pop();
  const auto it = callbacks_.find(entry.id);
  if (it == callbacks_.end()) {
    // Cancelled event: discard silently.
    XFA_CHECK_GT(cancelled_pending_, 0);
    --cancelled_pending_;
    return;
  }
  // Dispatch order is the core determinism invariant: the queue must hand
  // back events in non-decreasing time.
  XFA_CHECK_GE(entry.at, now_) << "event queue regressed in time";
  now_ = entry.at;
  // Move out before invoking: the callback may schedule/cancel re-entrantly.
  auto fn = std::move(it->second);
  callbacks_.erase(it);
  ++dispatched_;
  fn();
}

void Scheduler::run_until(SimTime until) {
  while (!queue_.empty() && queue_.top().at <= until) dispatch_next();
  if (now_ < until) now_ = until;
}

void Scheduler::run() {
  while (!queue_.empty()) dispatch_next();
}

}  // namespace xfa
