// Local-observation vocabulary and the audit-sink interface.
//
// The paper's premise is that a MANET node can observe only local activity:
// packets it sends/receives/forwards/drops, and its own routing-fabric events
// (route add/removal/find/notice/repair). This header defines that
// observation vocabulary plus the abstract sink a node reports into.
//
// It lives in the simulation band (not in audit/) on purpose: the network
// layer below must be able to *emit* observations without depending on the
// analysis machinery above that *stores and consumes* them. audit/ implements
// the sink; net/ only sees this interface — keeping the module-layering DAG
// acyclic and downward-only.
#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/types.h"

namespace xfa {

/// Packet-type dimension of Table 5. `RouteAll` aggregates every packet that
/// carries a routing header: all control messages plus encapsulated data at
/// intermediate hops (the paper: "all activities (including forwarding and
/// dropping) during the transmission process only involve 'route' packets").
enum class AuditPacketType : std::uint8_t {
  Data = 0,
  RouteAll = 1,
  RouteRequest = 2,
  RouteReply = 3,
  RouteError = 4,
  Hello = 5,
};
inline constexpr std::size_t kAuditPacketTypeCount = 6;

/// Flow-direction dimension of Table 5.
enum class FlowDirection : std::uint8_t {
  Received = 0,   // observed at destinations
  Sent = 1,       // observed at sources
  Forwarded = 2,  // observed at intermediate routers
  Dropped = 3,    // observed at routers with no route (or malicious drop)
};
inline constexpr std::size_t kFlowDirectionCount = 4;

/// Route-fabric events of Table 4 (Feature Set I).
enum class RouteEventKind : std::uint8_t {
  Add = 0,     // route newly added by route discovery
  Remove = 1,  // stale route being removed
  Find = 2,    // route found in cache, no re-discovery needed
  Notice = 3,  // route eavesdropped / learned from overheard traffic
  Repair = 4,  // broken route currently under repair
};
inline constexpr std::size_t kRouteEventKindCount = 5;

const char* to_string(AuditPacketType type);
const char* to_string(FlowDirection dir);
const char* to_string(RouteEventKind kind);

/// Where a node's local observations go. A node holds a non-owning pointer
/// to one of these (null = auditing off, the default — a 10^4-second run
/// generates tens of millions of observations network-wide, so the scenario
/// runner attaches a sink on the monitored node only, matching the paper's
/// "collected on one node only" evaluation).
class AuditSink {
 public:
  virtual ~AuditSink() = default;

  /// One packet observation. Callers report the specific control type
  /// (e.g. RouteRequest); implementations may maintain aggregates.
  virtual void record_packet(SimTime t, AuditPacketType type,
                             FlowDirection dir) = 0;

  /// One route-fabric event.
  virtual void record_route_event(SimTime t, RouteEventKind kind) = 0;
};

}  // namespace xfa
