// Experiment pipeline: the glue every bench and example shares.
//
// gather_experiment() produces the paper's trace inventory for one scenario
// (one normal training trace, several normal evaluation traces, several
// attack traces); train_detector() runs Algorithm 1 + threshold selection;
// score helpers apply Algorithms 2/3 to whole traces.
#pragma once

#include <string>
#include <vector>

#include "cfa/model.h"
#include "common/status.h"
#include "cfa/threshold.h"
#include "features/discretize.h"
#include "features/schema.h"
#include "scenario/runner.h"

namespace xfa {

struct ExperimentOptions {
  std::size_t normal_eval_traces = 3;
  std::size_t abnormal_traces = 3;
  /// Attacks injected into the abnormal traces; defaults to the paper's
  /// mixed black hole @2500 s + selective dropping @5000 s.
  std::vector<AttackSpec> attacks = mixed_attacks();
  SimTime duration = 10000;
  std::uint64_t base_seed = 1000;
  LabelPolicy label_policy = LabelPolicy::OnsetOnwards;
  /// Fast mode divides duration and all schedule times by 4 (keeps onset
  /// proportions). Enabled when XFA_FAST=1, see fast_mode_enabled().
  bool fast = false;
};

/// True when the environment requests scaled-down experiments (XFA_FAST=1).
bool fast_mode_enabled();

/// Canonical options for the paper's mixed-intrusion evaluation (Figures
/// 1-4): 10^4-second traces, black hole @2500 s + selective dropping
/// @5000 s, 3 normal evaluation traces, 3 attack traces. Every bench uses
/// exactly these so the trace cache is shared.
ExperimentOptions paper_mixed_options();

/// Canonical options for the per-attack evaluation (Figures 5-6): one attack
/// type, three 100-second sessions at 2500/5000/7500 s.
ExperimentOptions paper_single_attack_options(AttackKind kind);

/// Applies the x0.25 fast scaling to a spec's duration and schedules.
ExperimentOptions scaled(ExperimentOptions options);

struct ExperimentData {
  ScenarioConfig base_config;  // the training-trace config
  RawTrace train_normal;
  std::vector<RawTrace> normal_eval;
  std::vector<RawTrace> abnormal;
  std::vector<ScenarioSummary> summaries;  // train, then eval, then abnormal
};

/// Simulates (or loads) the full trace inventory for one scenario,
/// propagating any scenario failure (after the runner's bounded retries)
/// instead of aborting. All trace simulations run concurrently on the
/// shared execution pool (src/exec) — results are assembled by slot, so
/// the inventory is byte-identical for any pool size — and the first hard
/// failure cancels the simulations that have not started yet.
Result<ExperimentData> gather_experiment_checked(
    RoutingKind routing, TransportKind transport,
    const ExperimentOptions& options);

/// Abort-on-failure wrapper over gather_experiment_checked.
ExperimentData gather_experiment(RoutingKind routing, TransportKind transport,
                                 const ExperimentOptions& options);

/// A trained cross-feature detector: discretizer + L sub-models + the two
/// thresholds (one per combination rule), selected on the training trace at
/// the given confidence level.
struct Detector {
  FeatureSchema schema = FeatureSchema::standard();
  EqualFrequencyDiscretizer discretizer;
  CrossFeatureModel model;
  double threshold_match = 0;
  double threshold_probability = 0;

  double threshold(ScoreKind kind) const {
    return kind == ScoreKind::MatchCount ? threshold_match
                                         : threshold_probability;
  }

  /// Discretizes and scores a raw trace.
  std::vector<EventScore> score_trace(const RawTrace& trace) const;
};

struct DetectorOptions {
  int buckets = 5;                 // paper: "we choose the bucket number to be 5"
  double min_relative_gap = 0.25;  // discretizer cut-separation guard
  double false_alarm_rate = 0.02;  // confidence level = 1 - FAR
  std::size_t threads = 0;         // 0 = hardware concurrency
  /// Sampling periods to keep (ablation B); empty = the standard {5,60,900}.
  std::vector<SimTime> periods;
};

/// Algorithm 1 + threshold selection. Thresholds are the FAR-quantile of
/// scores on `threshold_normal` when given (a held-out normal trace — the
/// paper's "computing [score] values on all normal events"), otherwise of
/// the in-sample training scores.
///
/// Degrades gracefully with the cross-feature model: degenerate feature
/// columns are skipped (detector.model.skipped_columns()) and the ensemble
/// renormalizes over the survivors; an unusable training trace surfaces as
/// kDegenerateData / kTrainFailed instead of aborting.
Result<Detector> train_detector_checked(
    const RawTrace& train_normal, const ClassifierFactory& factory,
    const DetectorOptions& options = {},
    const RawTrace* threshold_normal = nullptr);

/// Abort-on-failure wrapper over train_detector_checked.
Detector train_detector(const RawTrace& train_normal,
                        const ClassifierFactory& factory,
                        const DetectorOptions& options = {},
                        const RawTrace* threshold_normal = nullptr);

/// Converts a discretized trace into the classifier Dataset format.
Dataset to_dataset(const DiscreteTrace& trace,
                   const FeatureSchema* schema = nullptr);

/// Projects one score kind out of per-event scores.
std::vector<double> project(const std::vector<EventScore>& scores,
                            ScoreKind kind);

/// Standard classifier factories used across the evaluation.
ClassifierFactory make_c45_factory();
ClassifierFactory make_ripper_factory();
ClassifierFactory make_nbc_factory();

struct NamedFactory {
  std::string name;
  ClassifierFactory factory;
};
/// The paper's three classifiers, in presentation order.
std::vector<NamedFactory> paper_classifiers();

/// The paper's four scenario combinations, in presentation order.
struct ScenarioCombo {
  RoutingKind routing;
  TransportKind transport;
  std::string name;  // e.g. "AODV/TCP"
};
std::vector<ScenarioCombo> paper_scenarios();

}  // namespace xfa
