#include "scenario/pipeline.h"

#include <algorithm>

#include "common/check.h"
#include "common/env.h"
#include "exec/task_group.h"
#include "ml/c45.h"
#include "ml/naive_bayes.h"
#include "ml/ripper.h"

namespace xfa {

bool fast_mode_enabled() { return env().fast; }

ExperimentOptions scaled(ExperimentOptions options) {
  constexpr double kFactor = 0.25;
  options.duration *= kFactor;
  for (AttackSpec& attack : options.attacks) {
    ScheduleSpec& schedule = attack.schedule;
    schedule.start *= kFactor;
    schedule.duration *= kFactor;
    for (auto& [start, duration] : schedule.sessions) {
      start *= kFactor;
      duration *= kFactor;
    }
  }
  return options;
}

ExperimentOptions paper_mixed_options() {
  ExperimentOptions options;  // defaults are already the paper's
  return options;
}

ExperimentOptions paper_single_attack_options(AttackKind kind) {
  ExperimentOptions options;
  options.attacks = single_attack_sessions(kind);
  return options;
}

Result<ExperimentData> gather_experiment_checked(
    RoutingKind routing, TransportKind transport,
    const ExperimentOptions& raw_options) {
  const ExperimentOptions options =
      (raw_options.fast || fast_mode_enabled()) ? scaled(raw_options)
                                                : raw_options;

  ScenarioConfig base;
  base.routing = routing;
  base.transport = transport;
  base.duration = options.duration;

  ExperimentData data;
  data.base_config = base;

  // The full inventory, in presentation order: the training trace, the
  // normal evaluation traces, then the attack traces.
  std::vector<ScenarioConfig> configs;
  configs.reserve(1 + options.normal_eval_traces + options.abnormal_traces);
  {
    ScenarioConfig config = base;
    config.seed = options.base_seed;
    configs.push_back(config);
  }
  for (std::size_t i = 0; i < options.normal_eval_traces; ++i) {
    ScenarioConfig config = base;
    config.seed = options.base_seed + 1 + i;
    configs.push_back(config);
  }
  for (std::size_t i = 0; i < options.abnormal_traces; ++i) {
    ScenarioConfig config = base;
    config.seed = options.base_seed + 100 + i;
    config.attacks = options.attacks;
    configs.push_back(config);
  }

  // Every trace simulation is an isolated world (see run_scenario_checked),
  // so the whole inventory is schedulable work: submit it all to the shared
  // pool and assemble results by slot index — the output is identical to
  // the old serial loop for any pool size. The first failure cancels the
  // not-yet-started simulations.
  std::vector<Result<ScenarioResult>> results(
      configs.size(), Status{StatusCode::kRetryable, "cancelled"});
  {
    TaskGroup group(shared_pool());
    for (std::size_t i = 0; i < configs.size(); ++i) {
      group.submit([&configs, &results, &options, i] {
        results[i] = run_scenario_checked(configs[i], options.label_policy);
        return results[i].ok() ? Status::Ok() : results[i].status();
      });
    }
    if (Status status = group.wait(); !status.ok()) return status;
  }

  for (std::size_t i = 0; i < results.size(); ++i) {
    Result<ScenarioResult>& result = results[i];
    if (!result.ok()) return result.status();
    data.summaries.push_back(result->summary);
    if (i == 0) {
      data.train_normal = std::move(result->trace);
    } else if (i <= options.normal_eval_traces) {
      data.normal_eval.push_back(std::move(result->trace));
    } else {
      data.abnormal.push_back(std::move(result->trace));
    }
  }
  return data;
}

ExperimentData gather_experiment(RoutingKind routing, TransportKind transport,
                                 const ExperimentOptions& options) {
  auto data = gather_experiment_checked(routing, transport, options);
  XFA_CHECK(data.ok()) << data.status().to_string();
  return std::move(data.value());
}

Dataset to_dataset(const DiscreteTrace& trace, const FeatureSchema* schema) {
  Dataset data;
  data.rows = trace.rows;
  data.cardinality = trace.cardinality;
  if (schema != nullptr) data.names = schema->names();
  return data;
}

std::vector<double> project(const std::vector<EventScore>& scores,
                            ScoreKind kind) {
  std::vector<double> values;
  values.reserve(scores.size());
  for (const EventScore& score : scores) values.push_back(pick(score, kind));
  return values;
}

std::vector<EventScore> Detector::score_trace(const RawTrace& trace) const {
  const DiscreteTrace discrete = discretizer.transform(trace);
  return model.score_all(discrete.rows);
}

Result<Detector> train_detector_checked(const RawTrace& train_normal,
                                        const ClassifierFactory& factory,
                                        const DetectorOptions& options,
                                        const RawTrace* threshold_normal) {
  if (train_normal.rows.empty())
    return Status{StatusCode::kDegenerateData, "empty training trace"};
  Detector detector;
  detector.discretizer =
      EqualFrequencyDiscretizer(options.buckets, options.min_relative_gap);
  // "A pre-filtering process using a small random subset of normal vectors"
  // learns the frequency distribution; 500 samples are ample for 5 buckets.
  detector.discretizer.fit(train_normal.rows, /*max_fit_rows=*/500);
  const DiscreteTrace discrete = detector.discretizer.transform(train_normal);
  const Dataset dataset = to_dataset(discrete, &detector.schema);

  // Label columns: everything classifiable, optionally restricted to the
  // requested sampling periods (Set I topology features always stay).
  std::vector<std::size_t> label_columns;
  if (options.periods.empty()) {
    label_columns = detector.schema.classifiable_columns();
  } else {
    for (std::size_t c = 1; c < detector.schema.traffic_base_column(); ++c)
      label_columns.push_back(c);
    const auto& specs = detector.schema.traffic_specs();
    for (std::size_t i = 0; i < specs.size(); ++i) {
      if (std::find(options.periods.begin(), options.periods.end(),
                    specs[i].period) != options.periods.end())
        label_columns.push_back(detector.schema.traffic_base_column() + i);
    }
  }

  const Status trained =
      detector.model.train(dataset, label_columns, factory, options.threads);
  if (!trained.ok()) return trained;

  const std::vector<EventScore> calibration_scores =
      threshold_normal != nullptr
          ? detector.score_trace(*threshold_normal)
          : detector.model.score_all(discrete.rows);
  detector.threshold_match =
      select_threshold(project(calibration_scores, ScoreKind::MatchCount),
                       options.false_alarm_rate);
  detector.threshold_probability =
      select_threshold(project(calibration_scores, ScoreKind::Probability),
                       options.false_alarm_rate);
  return detector;
}

Detector train_detector(const RawTrace& train_normal,
                        const ClassifierFactory& factory,
                        const DetectorOptions& options,
                        const RawTrace* threshold_normal) {
  auto detector =
      train_detector_checked(train_normal, factory, options, threshold_normal);
  XFA_CHECK(detector.ok()) << detector.status().to_string();
  return std::move(detector.value());
}

ClassifierFactory make_c45_factory() {
  return [] {
    // Slightly larger leaves than the library default: the cross-feature
    // sub-models need *calibrated* leaf probabilities (Algorithm 3 averages
    // them), and 2000-row traces overfit at tiny leaf sizes.
    C45Config config;
    config.min_split_samples = 16;
    return std::make_unique<C45>(config);
  };
}

ClassifierFactory make_ripper_factory() {
  return [] { return std::make_unique<Ripper>(); };
}

ClassifierFactory make_nbc_factory() {
  return [] { return std::make_unique<NaiveBayes>(); };
}

std::vector<NamedFactory> paper_classifiers() {
  return {
      {"C4.5", make_c45_factory()},
      {"RIPPER", make_ripper_factory()},
      {"NBC", make_nbc_factory()},
  };
}

std::vector<ScenarioCombo> paper_scenarios() {
  return {
      {RoutingKind::Aodv, TransportKind::Tcp, "AODV/TCP"},
      {RoutingKind::Aodv, TransportKind::Udp, "AODV/UDP"},
      {RoutingKind::Dsr, TransportKind::Tcp, "DSR/TCP"},
      {RoutingKind::Dsr, TransportKind::Udp, "DSR/UDP"},
  };
}

}  // namespace xfa
