#include "scenario/cache.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "common/crc64.h"
#include "common/env.h"

namespace xfa {
namespace {

// Format (XFATRC3): magic, payload size, CRC64 of the payload, payload.
// The payload holds key, times, rows and summary; every count inside it is
// validated against the actual payload size before any allocation.
constexpr char kMagic[] = "XFATRC3";
constexpr std::size_t kMagicSize = sizeof(kMagic) - 1;
constexpr std::size_t kHeaderSize = kMagicSize + 2 * sizeof(std::uint64_t);

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

template <typename T>
void append_pod(std::string& buffer, const T& value) {
  buffer.append(reinterpret_cast<const char*>(&value), sizeof(T));
}

void append_doubles(std::string& buffer, const std::vector<double>& values) {
  append_pod(buffer, static_cast<std::uint64_t>(values.size()));
  if (!values.empty())
    buffer.append(reinterpret_cast<const char*>(values.data()),
                  values.size() * sizeof(double));
}

/// Bounds-checked cursor over the in-memory payload. Every read fails soft
/// when the remaining bytes cannot satisfy it, so hostile counts never drive
/// an allocation or an out-of-bounds read.
class PayloadReader {
 public:
  explicit PayloadReader(const std::string& buffer) : buffer_(buffer) {}

  std::size_t remaining() const { return buffer_.size() - pos_; }

  bool read_bytes(void* out, std::size_t size) {
    if (size > remaining()) return false;
    // `out` may be a null vector::data() when size == 0; memcpy forbids it.
    if (size != 0) std::memcpy(out, buffer_.data() + pos_, size);
    pos_ += size;
    return true;
  }

  template <typename T>
  bool read_pod(T& value) {
    return read_bytes(&value, sizeof(T));
  }

  bool read_string(std::string& out) {
    std::uint64_t size = 0;
    if (!read_pod(size) || size > remaining()) return false;
    out.assign(buffer_.data() + pos_, static_cast<std::size_t>(size));
    pos_ += static_cast<std::size_t>(size);
    return true;
  }

  bool read_doubles(std::vector<double>& out) {
    std::uint64_t count = 0;
    if (!read_pod(count)) return false;
    if (count > remaining() / sizeof(double)) return false;
    out.resize(static_cast<std::size_t>(count));
    return read_bytes(out.data(),
                      static_cast<std::size_t>(count) * sizeof(double));
  }

 private:
  const std::string& buffer_;
  std::size_t pos_ = 0;
};

/// Moves a failed artifact aside so the next run regenerates it while the
/// bad bytes stay available for post-mortems. Never throws; if even removal
/// fails we still report corruption — the caller regenerates and store()'s
/// atomic rename will overwrite the bad file.
void quarantine(const std::string& path) {
  const std::string corrupt = path + ".corrupt";
  std::error_code ec;
  std::filesystem::remove(corrupt, ec);
  std::filesystem::rename(path, corrupt, ec);
  if (ec) std::filesystem::remove(path, ec);
}

Status corrupt_artifact(const std::string& path, const std::string& what) {
  quarantine(path);
  return {StatusCode::kCorruptArtifact,
          path + ": " + what + " (quarantined to " + path + ".corrupt)"};
}

bool parse_payload(const std::string& payload, const std::string& key,
                   bool& key_mismatch, ScenarioResult& result) {
  PayloadReader reader(payload);
  std::string stored_key;
  if (!reader.read_string(stored_key)) return false;
  if (stored_key != key) {  // fnv1a hash collision: valid file, other key
    key_mismatch = true;
    return false;
  }
  if (!reader.read_doubles(result.trace.times)) return false;
  std::uint64_t rows = 0, columns = 0;
  if (!reader.read_pod(rows) || !reader.read_pod(columns)) return false;
  // Each row carries columns*8 bytes; empty rows still must not exceed the
  // payload itself, bounding resize() under any hostile count.
  if (columns > reader.remaining() / sizeof(double)) return false;
  if (columns == 0 ? rows > reader.remaining()
                   : rows > reader.remaining() / (columns * sizeof(double)))
    return false;
  result.trace.rows.resize(static_cast<std::size_t>(rows));
  for (auto& row : result.trace.rows) {
    row.resize(static_cast<std::size_t>(columns));
    if (!reader.read_bytes(row.data(),
                           static_cast<std::size_t>(columns) * sizeof(double)))
      return false;
  }
  ScenarioSummary& summary = result.summary;
  if (!reader.read_pod(summary.data_originated) ||
      !reader.read_pod(summary.data_delivered) ||
      !reader.read_pod(summary.packet_delivery_ratio) ||
      !reader.read_pod(summary.scheduler_events) ||
      !reader.read_pod(summary.channel) ||
      !reader.read_pod(summary.monitor_routing) ||
      !reader.read_pod(summary.monitor_audit_packets) ||
      !reader.read_pod(summary.monitor_audit_route_events))
    return false;
  return reader.remaining() == 0;  // trailing bytes => damaged artifact
}

}  // namespace

TraceCache::TraceCache(std::string directory) : directory_(std::move(directory)) {
  // Environment reads go through the immutable process snapshot
  // (common/env.h) so concurrent pool workers never race on getenv.
  if (env().no_cache) {
    enabled_ = false;
    return;
  }
  if (directory_.empty()) directory_ = env().cache_dir;
}

std::string TraceCache::artifact_path(const std::string& key) const {
  char name[32];
  std::snprintf(name, sizeof(name), "%016llx.trc",
                static_cast<unsigned long long>(fnv1a(key)));
  return directory_ + "/" + name;
}

Result<ScenarioResult> TraceCache::load(const std::string& key) const {
  if (!enabled_) return Status{StatusCode::kNotFound, "cache disabled"};
  const std::string path = artifact_path(key);
  std::ifstream is(path, std::ios::binary);
  if (!is) return Status{StatusCode::kNotFound, path};

  char header[kHeaderSize] = {};
  is.read(header, static_cast<std::streamsize>(kHeaderSize));
  if (!is || std::memcmp(header, kMagic, kMagicSize) != 0)
    return corrupt_artifact(path, "bad or truncated header");

  // Old format revisions (XFATRC2) fail the magic check above and heal the
  // same way every other invalid file does: quarantine + regenerate.
  std::uint64_t payload_size = 0, stored_crc = 0;
  std::memcpy(&payload_size, header + kMagicSize, sizeof(payload_size));
  std::memcpy(&stored_crc, header + kMagicSize + sizeof(payload_size),
              sizeof(stored_crc));

  // The declared size must match the bytes actually present, which both
  // rejects truncation and caps the read at the real file size — a hostile
  // length field never drives the allocation.
  std::error_code ec;
  const std::uintmax_t file_size = std::filesystem::file_size(path, ec);
  if (ec) return Status{StatusCode::kIoError, path + ": " + ec.message()};
  if (file_size < kHeaderSize ||
      payload_size != file_size - kHeaderSize)
    return corrupt_artifact(path, "payload size disagrees with file size");

  std::string payload(static_cast<std::size_t>(payload_size), '\0');
  is.read(payload.data(), static_cast<std::streamsize>(payload.size()));
  if (!is) return corrupt_artifact(path, "short payload read");

  if (crc64(payload.data(), payload.size()) != stored_crc)
    return corrupt_artifact(path, "payload checksum mismatch");

  ScenarioResult result;
  bool key_mismatch = false;
  if (!parse_payload(payload, key, key_mismatch, result)) {
    if (key_mismatch)  // healthy artifact for a colliding key; leave it be
      return Status{StatusCode::kNotFound, path + ": key collision"};
    return corrupt_artifact(path, "malformed payload");
  }
  return result;
}

Status TraceCache::store(const std::string& key,
                         const ScenarioResult& result) const {
  if (!enabled_) return Status::Ok();

  const std::uint64_t columns =
      result.trace.rows.empty() ? 0 : result.trace.rows.front().size();
  for (const auto& row : result.trace.rows)
    if (row.size() != columns)
      return {StatusCode::kInvalidArgument, "ragged trace rows"};

  std::string payload;
  append_pod(payload, static_cast<std::uint64_t>(key.size()));
  payload += key;
  append_doubles(payload, result.trace.times);
  append_pod(payload, static_cast<std::uint64_t>(result.trace.rows.size()));
  append_pod(payload, columns);
  for (const auto& row : result.trace.rows)
    if (columns != 0)
      payload.append(reinterpret_cast<const char*>(row.data()),
                     static_cast<std::size_t>(columns) * sizeof(double));
  const ScenarioSummary& summary = result.summary;
  append_pod(payload, summary.data_originated);
  append_pod(payload, summary.data_delivered);
  append_pod(payload, summary.packet_delivery_ratio);
  append_pod(payload, summary.scheduler_events);
  append_pod(payload, summary.channel);
  append_pod(payload, summary.monitor_routing);
  append_pod(payload, summary.monitor_audit_packets);
  append_pod(payload, summary.monitor_audit_route_events);

  std::error_code ec;
  std::filesystem::create_directories(directory_, ec);
  if (ec && !std::filesystem::is_directory(directory_))
    return {StatusCode::kIoError, directory_ + ": " + ec.message()};
  const std::string path = artifact_path(key);
  // The temp name must be unique per writer: a shared `path + ".tmp"` lets
  // two concurrent stores interleave writes into one file and publish the
  // mixture. pid disambiguates processes, the atomic counter disambiguates
  // threads within one.
  static std::atomic<std::uint64_t> temp_sequence{0};
#if defined(__unix__) || defined(__APPLE__)
  const unsigned long long pid = static_cast<unsigned long long>(getpid());
#else
  const unsigned long long pid = 0;
#endif
  const std::string tmp = path + "." + std::to_string(pid) + "." +
                          std::to_string(temp_sequence.fetch_add(1)) + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) return {StatusCode::kIoError, tmp + ": cannot open"};
    os.write(kMagic, static_cast<std::streamsize>(kMagicSize));
    const auto payload_size = static_cast<std::uint64_t>(payload.size());
    os.write(reinterpret_cast<const char*>(&payload_size),
             sizeof(payload_size));
    const std::uint64_t crc = crc64(payload.data(), payload.size());
    os.write(reinterpret_cast<const char*>(&crc), sizeof(crc));
    os.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    os.close();
    // A partially-written artifact must never be published: on any stream
    // failure drop the temp file instead of renaming it into place.
    if (!os) {
      std::filesystem::remove(tmp, ec);
      return {StatusCode::kIoError, tmp + ": write failed"};
    }
  }
  std::filesystem::rename(tmp, path, ec);  // atomic publish
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return {StatusCode::kIoError, path + ": rename failed"};
  }
  remove_stale_temps();
  return Status::Ok();
}

void TraceCache::remove_stale_temps() const {
  // A writer that crashed between open and rename leaves its unique temp
  // file behind forever. Sweep the directory for *.tmp entries old enough
  // that no live writer can still own them (a store lasts milliseconds; the
  // hour-scale threshold makes deleting a concurrent writer's live temp
  // impossible in practice).
  namespace fs = std::filesystem;
  constexpr auto kStaleAge = std::chrono::hours(1);
  std::error_code ec;
  fs::directory_iterator it(directory_, ec);
  if (ec) return;
  const auto now = fs::file_time_type::clock::now();
  for (const auto& entry : it) {
    if (!entry.is_regular_file(ec)) continue;
    const fs::path& p = entry.path();
    if (p.extension() != ".tmp") continue;
    const auto written = fs::last_write_time(p, ec);
    if (ec) continue;
    if (now - written > kStaleAge) fs::remove(p, ec);
  }
}

}  // namespace xfa
