#include "scenario/cache.h"

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <vector>

namespace xfa {
namespace {

constexpr char kMagic[] = "XFATRC2";

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

template <typename T>
void write_pod(std::ostream& os, const T& value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool read_pod(std::istream& is, T& value) {
  is.read(reinterpret_cast<char*>(&value), sizeof(T));
  return static_cast<bool>(is);
}

void write_doubles(std::ostream& os, const std::vector<double>& values) {
  write_pod(os, static_cast<std::uint64_t>(values.size()));
  os.write(reinterpret_cast<const char*>(values.data()),
           static_cast<std::streamsize>(values.size() * sizeof(double)));
}

bool read_doubles(std::istream& is, std::vector<double>& values) {
  std::uint64_t count = 0;
  if (!read_pod(is, count)) return false;
  values.resize(count);
  is.read(reinterpret_cast<char*>(values.data()),
          static_cast<std::streamsize>(count * sizeof(double)));
  return static_cast<bool>(is);
}

}  // namespace

TraceCache::TraceCache(std::string directory) : directory_(std::move(directory)) {
  if (const char* env = std::getenv("XFA_NO_CACHE");
      env != nullptr && env[0] == '1') {
    enabled_ = false;
    return;
  }
  if (directory_.empty()) {
    const char* env = std::getenv("XFA_CACHE_DIR");
    directory_ = env != nullptr ? env : "xfa_cache";
  }
}

std::string TraceCache::path_for(const std::string& key) const {
  char name[32];
  std::snprintf(name, sizeof(name), "%016llx.trc",
                static_cast<unsigned long long>(fnv1a(key)));
  return directory_ + "/" + name;
}

std::optional<ScenarioResult> TraceCache::load(const std::string& key) const {
  if (!enabled_) return std::nullopt;
  std::ifstream is(path_for(key), std::ios::binary);
  if (!is) return std::nullopt;

  char magic[sizeof(kMagic)] = {};
  is.read(magic, sizeof(kMagic) - 1);
  if (!is || std::string_view(magic) != kMagic) return std::nullopt;

  std::uint64_t key_size = 0;
  if (!read_pod(is, key_size)) return std::nullopt;
  std::string stored_key(key_size, '\0');
  is.read(stored_key.data(), static_cast<std::streamsize>(key_size));
  if (!is || stored_key != key) return std::nullopt;  // hash collision

  ScenarioResult result;
  if (!read_doubles(is, result.trace.times)) return std::nullopt;
  std::uint64_t rows = 0, columns = 0;
  if (!read_pod(is, rows) || !read_pod(is, columns)) return std::nullopt;
  result.trace.rows.resize(rows);
  for (auto& row : result.trace.rows) {
    row.resize(columns);
    is.read(reinterpret_cast<char*>(row.data()),
            static_cast<std::streamsize>(columns * sizeof(double)));
    if (!is) return std::nullopt;
  }
  ScenarioSummary& summary = result.summary;
  if (!read_pod(is, summary.data_originated) ||
      !read_pod(is, summary.data_delivered) ||
      !read_pod(is, summary.packet_delivery_ratio) ||
      !read_pod(is, summary.scheduler_events) ||
      !read_pod(is, summary.channel) ||
      !read_pod(is, summary.monitor_routing) ||
      !read_pod(is, summary.monitor_audit_packets) ||
      !read_pod(is, summary.monitor_audit_route_events))
    return std::nullopt;
  return result;
}

void TraceCache::store(const std::string& key,
                       const ScenarioResult& result) const {
  if (!enabled_) return;
  std::error_code ec;
  std::filesystem::create_directories(directory_, ec);
  const std::string path = path_for(key);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) return;
    os.write(kMagic, sizeof(kMagic) - 1);
    write_pod(os, static_cast<std::uint64_t>(key.size()));
    os.write(key.data(), static_cast<std::streamsize>(key.size()));
    write_doubles(os, result.trace.times);
    write_pod(os, static_cast<std::uint64_t>(result.trace.rows.size()));
    const std::uint64_t columns =
        result.trace.rows.empty() ? 0 : result.trace.rows.front().size();
    write_pod(os, columns);
    for (const auto& row : result.trace.rows)
      os.write(reinterpret_cast<const char*>(row.data()),
               static_cast<std::streamsize>(columns * sizeof(double)));
    const ScenarioSummary& summary = result.summary;
    write_pod(os, summary.data_originated);
    write_pod(os, summary.data_delivered);
    write_pod(os, summary.packet_delivery_ratio);
    write_pod(os, summary.scheduler_events);
    write_pod(os, summary.channel);
    write_pod(os, summary.monitor_routing);
    write_pod(os, summary.monitor_audit_packets);
    write_pod(os, summary.monitor_audit_route_events);
  }
  std::filesystem::rename(tmp, path, ec);  // atomic publish
}

}  // namespace xfa
