#include "scenario/config.h"

#include <sstream>

namespace xfa {
namespace {

void append_number(std::string& key, double value) {
  std::ostringstream os;
  os.precision(12);
  os << value << ';';
  key += os.str();
}

}  // namespace

const char* to_string(RoutingKind kind) {
  return kind == RoutingKind::Aodv ? "AODV" : "DSR";
}

const char* to_string(TransportKind kind) {
  return kind == TransportKind::Udp ? "UDP" : "TCP";
}

const char* to_string(AttackKind kind) {
  switch (kind) {
    case AttackKind::Blackhole: return "blackhole";
    case AttackKind::SelectiveDrop: return "selective-drop";
    case AttackKind::UpdateStorm: return "update-storm";
    case AttackKind::RandomDrop: return "random-drop";
  }
  return "?";
}

ScheduleSpec ScheduleSpec::periodic_from(SimTime start, SimTime duration) {
  ScheduleSpec spec;
  spec.periodic = true;
  spec.start = start;
  spec.duration = duration;
  return spec;
}

ScheduleSpec ScheduleSpec::session_list(
    std::vector<std::pair<SimTime, SimTime>> sessions) {
  ScheduleSpec spec;
  spec.periodic = false;
  spec.sessions = std::move(sessions);
  return spec;
}

IntrusionSchedule ScheduleSpec::build() const {
  if (periodic) return IntrusionSchedule::periodic(start, duration);
  return IntrusionSchedule::sessions(sessions);
}

void ScheduleSpec::append_key(std::string& key) const {
  key += periodic ? "P:" : "S:";
  if (periodic) {
    append_number(key, start);
    append_number(key, duration);
  } else {
    for (const auto& [s, d] : sessions) {
      append_number(key, s);
      append_number(key, d);
    }
  }
}

void AttackSpec::append_key(std::string& key) const {
  key += to_string(kind);
  // Attack-script revision: bump to invalidate cached traces when a script's
  // behaviour changes (r2: black hole floods via phantom destinations).
  if (kind == AttackKind::Blackhole) key += ":r2";
  key += ':';
  append_number(key, attacker);
  append_number(key, drop_target);
  // Key-relevant only where it changes behaviour, so adding attack kinds
  // never invalidates existing cached traces.
  if (kind == AttackKind::RandomDrop) append_number(key, drop_probability);
  schedule.append_key(key);
}

std::string ScenarioConfig::cache_key() const {
  std::string key = "xfa-trace-v1;";
  key += to_string(routing);
  // Protocol implementation revision: bump to invalidate cached traces when
  // an agent's behaviour changes.
  key += routing == RoutingKind::Dsr ? ":r2;" : ":r1;";
  key += to_string(transport);
  key += ';';
  append_number(key, static_cast<double>(node_count));
  append_number(key, duration);
  append_number(key, sample_interval);
  append_number(key, static_cast<double>(seed));
  append_number(key, static_cast<double>(traffic_seed));
  append_number(key, static_cast<double>(mobility_seed));
  append_number(key, monitor_node);
  append_number(key, mobility.field_width);
  append_number(key, mobility.field_height);
  append_number(key, mobility.max_speed);
  append_number(key, mobility.min_speed);
  append_number(key, mobility.pause_time);
  append_number(key, channel.range_m);
  append_number(key, channel.bandwidth_bps);
  append_number(key, channel.loss_rate);
  append_number(key, channel.max_jitter_s);
  key += channel.promiscuous_taps ? "T;" : "F;";
  append_number(key, static_cast<double>(traffic.max_connections));
  append_number(key, traffic.rate_pps);
  append_number(key, static_cast<double>(traffic.packet_bytes));
  append_number(key, traffic.start_window);
  for (const AttackSpec& attack : attacks) attack.append_key(key);
  // Keyed only when enabled, so fault-free configs keep their existing
  // cached traces.
  if (faults.enabled()) faults.append_key(key);
  return key;
}

std::vector<AttackSpec> mixed_attacks(SimTime session,
                                      NodeId blackhole_attacker,
                                      NodeId drop_attacker) {
  AttackSpec blackhole;
  blackhole.kind = AttackKind::Blackhole;
  blackhole.attacker = blackhole_attacker;
  blackhole.schedule = ScheduleSpec::periodic_from(2500, session);

  AttackSpec dropper;
  dropper.kind = AttackKind::SelectiveDrop;
  dropper.attacker = drop_attacker;
  dropper.drop_target = kInvalidNode;  // auto-pick a trafficked destination
  dropper.schedule = ScheduleSpec::periodic_from(5000, session);

  return {blackhole, dropper};
}

std::vector<AttackSpec> single_attack_sessions(AttackKind kind,
                                               NodeId attacker) {
  AttackSpec attack;
  attack.kind = kind;
  attack.attacker = attacker;
  attack.drop_target = kInvalidNode;
  attack.schedule = ScheduleSpec::session_list(
      {{2500, 100}, {5000, 100}, {7500, 100}});
  return {attack};
}

}  // namespace xfa
