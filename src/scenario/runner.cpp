#include "scenario/runner.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "attacks/blackhole.h"
#include "audit/audit.h"
#include "attacks/drop_variants.h"
#include "attacks/dropper.h"
#include "attacks/storm.h"
#include "common/check.h"
#include "common/env.h"
#include "exec/single_flight.h"
#include "faults/injector.h"
#include "net/node.h"
#include "routing/aodv/aodv.h"
#include "routing/dsr/dsr.h"
#include "scenario/cache.h"
#include "sim/simulator.h"
#include "transport/cbr.h"
#include "transport/tcp.h"

namespace xfa {
namespace {

/// Resolves an "auto" selective-drop target: the destination of the first
/// generated flow whose endpoint is not the attacker itself, so the attack
/// actually intersects traffic. Deterministic given the seed.
NodeId resolve_drop_target(const std::vector<Flow>& flows, NodeId attacker,
                           std::size_t node_count) {
  for (const Flow& flow : flows)
    if (flow.dst != attacker) return flow.dst;
  return static_cast<NodeId>((attacker + 1) % node_count);
}

ScenarioResult simulate(const ScenarioConfig& config) {
  XFA_CHECK_GE(config.node_count, 2);
  XFA_CHECK(config.monitor_node >= 0 &&
            static_cast<std::size_t>(config.monitor_node) <
                config.node_count);

  Simulator sim(config.seed);
  // The mobility scenario has its own seed (shared across an experiment's
  // traces, like a reused setdest file).
  RandomWaypointMobility mobility(config.node_count, config.mobility,
                                  Rng(config.mobility_seed));

  ChannelConfig channel_config = config.channel;
  // AODV never consumes promiscuous taps; skip generating them.
  channel_config.promiscuous_taps = config.routing == RoutingKind::Dsr;
  // Random-waypoint speeds are bounded, so the channel can run its spatial
  // neighbor grid (exact pruning; trace-identical to the linear scan).
  channel_config.max_node_speed = config.mobility.max_speed;
  Channel channel(sim, mobility, channel_config);

  // Benign chaos, scheduled before any traffic exists so the fault timeline
  // is a pure function of the plan. Disabled plans leave the channel (and
  // every RNG stream) exactly as a pre-fault build had them.
  std::unique_ptr<FaultInjector> injector;
  if (config.has_faults()) {
    injector = std::make_unique<FaultInjector>(sim, config.faults,
                                               config.node_count,
                                               config.monitor_node,
                                               config.duration);
    channel.set_fault_model(injector.get());
  }

  std::vector<std::unique_ptr<Node>> nodes;
  nodes.reserve(config.node_count);
  for (std::size_t i = 0; i < config.node_count; ++i) {
    nodes.push_back(
        std::make_unique<Node>(sim, channel, static_cast<NodeId>(i)));
    channel.register_node(*nodes.back());
    if (config.routing == RoutingKind::Aodv) {
      nodes.back()->set_routing(std::make_unique<Aodv>(*nodes.back()));
    } else {
      nodes.back()->set_routing(std::make_unique<Dsr>(*nodes.back()));
    }
  }
  // The runner owns the audit storage; the node only holds the sink
  // pointer (net/ cannot depend on audit/ under the layering DAG).
  AuditLog monitor_audit;
  nodes[static_cast<std::size_t>(config.monitor_node)]->attach_audit(
      &monitor_audit);
  for (auto& node : nodes) node->routing().start();

  // --- Traffic -----------------------------------------------------------
  // Drawn from its own seed so the connection pattern is shared by every
  // trace of a scenario (the reused-cbrgen-file convention); per-run
  // variation comes from mobility and channel jitter.
  Rng traffic_rng(config.traffic_seed);
  const std::vector<Flow> flows =
      generate_connection_pattern(config.node_count, config.traffic,
                                  traffic_rng);
  std::vector<std::unique_ptr<CbrSource>> cbr_sources;
  std::vector<std::unique_ptr<CbrSink>> cbr_sinks;
  std::vector<std::unique_ptr<TcpSource>> tcp_sources;
  std::vector<std::unique_ptr<TcpSink>> tcp_sinks;
  for (const Flow& flow : flows) {
    Node& src = *nodes[static_cast<std::size_t>(flow.src)];
    Node& dst = *nodes[static_cast<std::size_t>(flow.dst)];
    if (config.transport == TransportKind::Udp) {
      cbr_sinks.push_back(std::make_unique<CbrSink>(dst, flow.flow_id));
      cbr_sources.push_back(std::make_unique<CbrSource>(
          src, flow.dst, flow.flow_id, config.traffic.rate_pps,
          config.traffic.packet_bytes, flow.start, config.duration));
    } else {
      TcpConfig tcp_config;
      tcp_config.segment_bytes = config.traffic.packet_bytes;
      tcp_config.app_rate_pps = config.traffic.rate_pps;
      tcp_sinks.push_back(
          std::make_unique<TcpSink>(dst, flow.flow_id, flow.src, tcp_config));
      tcp_sources.push_back(std::make_unique<TcpSource>(
          src, flow.dst, flow.flow_id, flow.start, tcp_config));
    }
  }

  // --- Attacks -----------------------------------------------------------
  std::vector<std::unique_ptr<BlackholeAttack>> blackholes;
  std::vector<std::unique_ptr<SelectiveDropAttack>> droppers;
  std::vector<std::unique_ptr<UpdateStormAttack>> storms;
  std::vector<std::unique_ptr<DropAttack>> drop_variants;
  for (const AttackSpec& spec : config.attacks) {
    Node& attacker = *nodes[static_cast<std::size_t>(spec.attacker)];
    switch (spec.kind) {
      case AttackKind::Blackhole:
        blackholes.push_back(std::make_unique<BlackholeAttack>(
            attacker, spec.schedule.build()));
        blackholes.back()->start();
        break;
      case AttackKind::SelectiveDrop: {
        const NodeId target =
            spec.drop_target != kInvalidNode
                ? spec.drop_target
                : resolve_drop_target(flows, spec.attacker,
                                      config.node_count);
        droppers.push_back(std::make_unique<SelectiveDropAttack>(
            attacker, target, spec.schedule.build()));
        droppers.back()->start();
        break;
      }
      case AttackKind::UpdateStorm:
        storms.push_back(std::make_unique<UpdateStormAttack>(
            attacker, spec.schedule.build()));
        storms.back()->start();
        break;
      case AttackKind::RandomDrop: {
        DropSpec drop_spec;
        drop_spec.mode = DropMode::Random;
        drop_spec.probability = spec.drop_probability;
        drop_variants.push_back(std::make_unique<DropAttack>(
            attacker, drop_spec, spec.schedule.build()));
        drop_variants.back()->start();
        break;
      }
    }
  }

  // --- Per-sample monitored-node state ------------------------------------
  Node& monitor = *nodes[static_cast<std::size_t>(config.monitor_node)];
  SampledNodeState state;
  const std::size_t samples = static_cast<std::size_t>(
      config.duration / config.sample_interval + 1e-9);
  state.velocity.reserve(samples);
  state.average_route_len.reserve(samples);
  for (std::size_t i = 0; i < samples; ++i) {
    const SimTime t = config.sample_interval * static_cast<double>(i + 1);
    sim.at(t, [&state, &mobility, &monitor, &config, t] {
      state.velocity.push_back(mobility.speed(config.monitor_node, t));
      state.average_route_len.push_back(
          monitor.routing().average_route_length());
    });
  }

  sim.run_until(config.duration);

  // --- Extraction ---------------------------------------------------------
  const FeatureSchema schema = FeatureSchema::standard();
  FeatureExtractor extractor(schema, config.sample_interval);
  ScenarioResult result;
  result.trace = extractor.extract(monitor_audit, state, config.duration);

  ScenarioSummary& summary = result.summary;
  for (const auto& node : nodes) {
    summary.data_originated += node->data_originated();
    summary.data_delivered += node->data_delivered();
  }
  summary.packet_delivery_ratio =
      summary.data_originated == 0
          ? 0.0
          : static_cast<double>(summary.data_delivered) /
                static_cast<double>(summary.data_originated);
  summary.scheduler_events = sim.scheduler().dispatched();
  summary.channel = channel.stats();
  if (const auto* aodv = dynamic_cast<const Aodv*>(&monitor.routing())) {
    summary.monitor_routing = aodv->stats();
  } else if (const auto* dsr = dynamic_cast<const Dsr*>(&monitor.routing())) {
    summary.monitor_routing = dsr->stats();
  }
  summary.monitor_audit_packets = monitor_audit.total_packet_records();
  summary.monitor_audit_route_events = monitor_audit.total_route_events();
  return result;
}

}  // namespace

void apply_labels(RawTrace& trace, const ScenarioConfig& config,
                  LabelPolicy policy) {
  trace.labels.assign(trace.size(), 0);
  if (!config.has_attacks()) return;

  std::vector<IntrusionSchedule> schedules;
  schedules.reserve(config.attacks.size());
  SimTime first_onset = kNever;
  for (const AttackSpec& spec : config.attacks) {
    schedules.push_back(spec.schedule.build());
    first_onset = std::min(first_onset, schedules.back().first_start());
  }

  for (std::size_t i = 0; i < trace.size(); ++i) {
    const SimTime t = trace.times[i];
    if (policy == LabelPolicy::OnsetOnwards) {
      trace.labels[i] = t > first_onset ? 1 : 0;
    } else {
      const SimTime window_start = t - config.sample_interval;
      for (const IntrusionSchedule& schedule : schedules) {
        if (schedule.active_in(window_start, t)) {
          trace.labels[i] = 1;
          break;
        }
      }
    }
  }
}

Status validate_scenario_result(const ScenarioResult& result) {
  if (result.trace.rows.empty())
    return {StatusCode::kDegenerateData, "trace has no samples"};
  if (result.trace.times.size() != result.trace.rows.size())
    return {StatusCode::kDegenerateData, "times/rows length mismatch"};
  const std::size_t width = result.trace.rows.front().size();
  if (width == 0) return {StatusCode::kDegenerateData, "zero-width rows"};
  for (const auto& row : result.trace.rows) {
    if (row.size() != width)
      return {StatusCode::kDegenerateData, "ragged trace rows"};
    for (const double value : row)
      if (!std::isfinite(value))
        return {StatusCode::kDegenerateData, "non-finite feature value"};
  }
  if (result.summary.monitor_audit_packets == 0)
    return {StatusCode::kDegenerateData, "monitor node observed no packets"};
  return Status::Ok();
}

namespace {

/// SplitMix64-style mix so retry seeds land in unrelated streams while
/// staying a pure function of (seed, attempt).
std::uint64_t derive_retry_seed(std::uint64_t seed, int attempt) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL *
                               static_cast<std::uint64_t>(attempt);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Cache-load-or-simulate for one config, labels not yet applied. This is
/// the section the single-flight guard protects: everything in here is a
/// pure function of the config (retries included), so one execution serves
/// every concurrent requester of the same key.
Result<ScenarioResult> load_or_simulate(const ScenarioConfig& config,
                                        const std::string& key) {
  // Constructed per call (cheap: reads of the env snapshot) so tests can
  // toggle XFA_NO_CACHE between scenarios via refresh_env_for_testing().
  const TraceCache cache;
  if (Result<ScenarioResult> cached = cache.load(key); cached.ok()) {
    // A checksum-valid artifact can still be semantically degenerate (stored
    // by an older build with laxer validation); treat it like a miss.
    if (validate_scenario_result(*cached).ok()) return std::move(*cached);
  }
  // kNotFound falls through to simulation; kCorruptArtifact additionally
  // quarantined the bad file inside load() — regeneration is the self-heal.
  const int retries = env().scenario_retries;
  Status last;
  ScenarioConfig attempt = config;
  for (int i = 0; i <= retries; ++i) {
    attempt.seed = i == 0 ? config.seed : derive_retry_seed(config.seed, i);
    ScenarioResult result = simulate(attempt);
    last = validate_scenario_result(result);
    if (last.ok()) {
      // Keyed on the *original* config: the retry sequence is deterministic,
      // so the key still maps to exactly one trace. A failed store only
      // costs the next caller a re-simulation.
      cache.store(key, result);
      return result;
    }
  }
  return Status{last.code(),
                "scenario stayed degenerate after " +
                    std::to_string(retries + 1) + " attempt(s): " +
                    last.message()};
}

/// In-flight dedup across pool workers: two tasks asking for the same trace
/// key simulate once. Each run_scenario_checked call owns an isolated
/// Simulator/Channel/FaultInjector world (all state lives inside
/// simulate()), so the *only* cross-task coupling is this keyed rendezvous
/// plus the cache files it guards.
SingleFlight<Result<ScenarioResult>>& scenario_single_flight() {
  static SingleFlight<Result<ScenarioResult>> flights;
  return flights;
}

}  // namespace

Result<ScenarioResult> run_scenario_checked(const ScenarioConfig& config,
                                            LabelPolicy policy) {
  const std::string key = config.cache_key();
  Result<ScenarioResult> result = scenario_single_flight().run(
      key, [&config, &key] { return load_or_simulate(config, key); });
  if (!result.ok()) return result.status();
  // Labels depend on the caller's policy (not part of the key), so they are
  // applied to this caller's copy after the shared flight resolves.
  apply_labels(result->trace, config, policy);
  return std::move(*result);
}

ScenarioResult run_scenario(const ScenarioConfig& config, LabelPolicy policy) {
  Result<ScenarioResult> result = run_scenario_checked(config, policy);
  XFA_CHECK(result.ok()) << result.status().to_string();
  return std::move(*result);
}

}  // namespace xfa
