#include "scenario/runner.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "attacks/blackhole.h"
#include "attacks/drop_variants.h"
#include "attacks/dropper.h"
#include "attacks/storm.h"
#include "common/check.h"
#include "net/node.h"
#include "routing/aodv/aodv.h"
#include "routing/dsr/dsr.h"
#include "scenario/cache.h"
#include "sim/simulator.h"
#include "transport/cbr.h"
#include "transport/tcp.h"

namespace xfa {
namespace {

/// Resolves an "auto" selective-drop target: the destination of the first
/// generated flow whose endpoint is not the attacker itself, so the attack
/// actually intersects traffic. Deterministic given the seed.
NodeId resolve_drop_target(const std::vector<Flow>& flows, NodeId attacker,
                           std::size_t node_count) {
  for (const Flow& flow : flows)
    if (flow.dst != attacker) return flow.dst;
  return static_cast<NodeId>((attacker + 1) % node_count);
}

ScenarioResult simulate(const ScenarioConfig& config) {
  XFA_CHECK_GE(config.node_count, 2);
  XFA_CHECK(config.monitor_node >= 0 &&
            static_cast<std::size_t>(config.monitor_node) <
                config.node_count);

  Simulator sim(config.seed);
  // The mobility scenario has its own seed (shared across an experiment's
  // traces, like a reused setdest file).
  RandomWaypointMobility mobility(config.node_count, config.mobility,
                                  Rng(config.mobility_seed));

  ChannelConfig channel_config = config.channel;
  // AODV never consumes promiscuous taps; skip generating them.
  channel_config.promiscuous_taps = config.routing == RoutingKind::Dsr;
  Channel channel(sim, mobility, channel_config);

  std::vector<std::unique_ptr<Node>> nodes;
  nodes.reserve(config.node_count);
  for (std::size_t i = 0; i < config.node_count; ++i) {
    nodes.push_back(
        std::make_unique<Node>(sim, channel, static_cast<NodeId>(i)));
    channel.register_node(*nodes.back());
    if (config.routing == RoutingKind::Aodv) {
      nodes.back()->set_routing(std::make_unique<Aodv>(*nodes.back()));
    } else {
      nodes.back()->set_routing(std::make_unique<Dsr>(*nodes.back()));
    }
  }
  nodes[static_cast<std::size_t>(config.monitor_node)]->enable_audit(true);
  for (auto& node : nodes) node->routing().start();

  // --- Traffic -----------------------------------------------------------
  // Drawn from its own seed so the connection pattern is shared by every
  // trace of a scenario (the reused-cbrgen-file convention); per-run
  // variation comes from mobility and channel jitter.
  Rng traffic_rng(config.traffic_seed);
  const std::vector<Flow> flows =
      generate_connection_pattern(config.node_count, config.traffic,
                                  traffic_rng);
  std::vector<std::unique_ptr<CbrSource>> cbr_sources;
  std::vector<std::unique_ptr<CbrSink>> cbr_sinks;
  std::vector<std::unique_ptr<TcpSource>> tcp_sources;
  std::vector<std::unique_ptr<TcpSink>> tcp_sinks;
  for (const Flow& flow : flows) {
    Node& src = *nodes[static_cast<std::size_t>(flow.src)];
    Node& dst = *nodes[static_cast<std::size_t>(flow.dst)];
    if (config.transport == TransportKind::Udp) {
      cbr_sinks.push_back(std::make_unique<CbrSink>(dst, flow.flow_id));
      cbr_sources.push_back(std::make_unique<CbrSource>(
          src, flow.dst, flow.flow_id, config.traffic.rate_pps,
          config.traffic.packet_bytes, flow.start, config.duration));
    } else {
      TcpConfig tcp_config;
      tcp_config.segment_bytes = config.traffic.packet_bytes;
      tcp_config.app_rate_pps = config.traffic.rate_pps;
      tcp_sinks.push_back(
          std::make_unique<TcpSink>(dst, flow.flow_id, flow.src, tcp_config));
      tcp_sources.push_back(std::make_unique<TcpSource>(
          src, flow.dst, flow.flow_id, flow.start, tcp_config));
    }
  }

  // --- Attacks -----------------------------------------------------------
  std::vector<std::unique_ptr<BlackholeAttack>> blackholes;
  std::vector<std::unique_ptr<SelectiveDropAttack>> droppers;
  std::vector<std::unique_ptr<UpdateStormAttack>> storms;
  std::vector<std::unique_ptr<DropAttack>> drop_variants;
  for (const AttackSpec& spec : config.attacks) {
    Node& attacker = *nodes[static_cast<std::size_t>(spec.attacker)];
    switch (spec.kind) {
      case AttackKind::Blackhole:
        blackholes.push_back(std::make_unique<BlackholeAttack>(
            attacker, spec.schedule.build()));
        blackholes.back()->start();
        break;
      case AttackKind::SelectiveDrop: {
        const NodeId target =
            spec.drop_target != kInvalidNode
                ? spec.drop_target
                : resolve_drop_target(flows, spec.attacker,
                                      config.node_count);
        droppers.push_back(std::make_unique<SelectiveDropAttack>(
            attacker, target, spec.schedule.build()));
        droppers.back()->start();
        break;
      }
      case AttackKind::UpdateStorm:
        storms.push_back(std::make_unique<UpdateStormAttack>(
            attacker, spec.schedule.build()));
        storms.back()->start();
        break;
      case AttackKind::RandomDrop: {
        DropSpec drop_spec;
        drop_spec.mode = DropMode::Random;
        drop_spec.probability = spec.drop_probability;
        drop_variants.push_back(std::make_unique<DropAttack>(
            attacker, drop_spec, spec.schedule.build()));
        drop_variants.back()->start();
        break;
      }
    }
  }

  // --- Per-sample monitored-node state ------------------------------------
  Node& monitor = *nodes[static_cast<std::size_t>(config.monitor_node)];
  SampledNodeState state;
  const std::size_t samples = static_cast<std::size_t>(
      config.duration / config.sample_interval + 1e-9);
  state.velocity.reserve(samples);
  state.average_route_len.reserve(samples);
  for (std::size_t i = 0; i < samples; ++i) {
    const SimTime t = config.sample_interval * static_cast<double>(i + 1);
    sim.at(t, [&state, &mobility, &monitor, &config, t] {
      state.velocity.push_back(mobility.speed(config.monitor_node, t));
      state.average_route_len.push_back(
          monitor.routing().average_route_length());
    });
  }

  sim.run_until(config.duration);

  // --- Extraction ---------------------------------------------------------
  const FeatureSchema schema = FeatureSchema::standard();
  FeatureExtractor extractor(schema, config.sample_interval);
  ScenarioResult result;
  result.trace = extractor.extract(monitor.audit(), state, config.duration);

  ScenarioSummary& summary = result.summary;
  for (const auto& node : nodes) {
    summary.data_originated += node->data_originated();
    summary.data_delivered += node->data_delivered();
  }
  summary.packet_delivery_ratio =
      summary.data_originated == 0
          ? 0.0
          : static_cast<double>(summary.data_delivered) /
                static_cast<double>(summary.data_originated);
  summary.scheduler_events = sim.scheduler().dispatched();
  summary.channel = channel.stats();
  if (const auto* aodv = dynamic_cast<const Aodv*>(&monitor.routing())) {
    summary.monitor_routing = aodv->stats();
  } else if (const auto* dsr = dynamic_cast<const Dsr*>(&monitor.routing())) {
    summary.monitor_routing = dsr->stats();
  }
  summary.monitor_audit_packets = monitor.audit().total_packet_records();
  summary.monitor_audit_route_events = monitor.audit().total_route_events();
  return result;
}

}  // namespace

void apply_labels(RawTrace& trace, const ScenarioConfig& config,
                  LabelPolicy policy) {
  trace.labels.assign(trace.size(), 0);
  if (!config.has_attacks()) return;

  std::vector<IntrusionSchedule> schedules;
  schedules.reserve(config.attacks.size());
  SimTime first_onset = kNever;
  for (const AttackSpec& spec : config.attacks) {
    schedules.push_back(spec.schedule.build());
    first_onset = std::min(first_onset, schedules.back().first_start());
  }

  for (std::size_t i = 0; i < trace.size(); ++i) {
    const SimTime t = trace.times[i];
    if (policy == LabelPolicy::OnsetOnwards) {
      trace.labels[i] = t > first_onset ? 1 : 0;
    } else {
      const SimTime window_start = t - config.sample_interval;
      for (const IntrusionSchedule& schedule : schedules) {
        if (schedule.active_in(window_start, t)) {
          trace.labels[i] = 1;
          break;
        }
      }
    }
  }
}

ScenarioResult run_scenario(const ScenarioConfig& config, LabelPolicy policy) {
  // Constructed per call (cheap: two getenv lookups) so tests can toggle
  // XFA_NO_CACHE at runtime.
  const TraceCache cache;
  const std::string key = config.cache_key();
  if (auto cached = cache.load(key)) {
    apply_labels(cached->trace, config, policy);
    return std::move(*cached);
  }
  ScenarioResult result = simulate(config);
  cache.store(key, result);
  apply_labels(result.trace, config, policy);
  return result;
}

}  // namespace xfa
