// On-disk trace cache: a 10^4-second simulation takes seconds, and every
// bench binary wants the same traces, so runs are persisted keyed on the
// scenario's canonical config string.
#pragma once

#include <optional>
#include <string>

#include "scenario/runner.h"

namespace xfa {

class TraceCache {
 public:
  /// `directory` empty => resolve from $XFA_CACHE_DIR, default "xfa_cache".
  explicit TraceCache(std::string directory = {});

  /// Disabled caches load nothing and store nothing (XFA_NO_CACHE=1).
  bool enabled() const { return enabled_; }

  std::optional<ScenarioResult> load(const std::string& key) const;
  void store(const std::string& key, const ScenarioResult& result) const;

  const std::string& directory() const { return directory_; }

 private:
  std::string path_for(const std::string& key) const;

  std::string directory_;
  bool enabled_ = true;
};

}  // namespace xfa
