// On-disk trace cache: a 10^4-second simulation takes seconds, and every
// bench binary wants the same traces, so runs are persisted keyed on the
// scenario's canonical config string.
//
// The store is self-healing. Artifacts use the XFATRC3 format — a CRC64
// checksum covers the whole payload and every length field is validated
// against the file size before any allocation, so no on-disk bytes (truncated,
// bit-flipped, or hostile) can crash or abort the process. A file that fails
// validation is quarantined to `<name>.trc.corrupt` and load() reports
// kCorruptArtifact; the scenario runner then transparently regenerates it.
#pragma once

#include <string>

#include "common/status.h"
#include "scenario/runner.h"

namespace xfa {

class TraceCache {
 public:
  /// `directory` empty => resolve from $XFA_CACHE_DIR, default "xfa_cache".
  explicit TraceCache(std::string directory = {});

  /// Disabled caches load nothing and store nothing (XFA_NO_CACHE=1).
  bool enabled() const { return enabled_; }

  /// Loads the artifact for `key`. Failure statuses:
  ///   kNotFound         miss (no file, cache disabled, or a hash-collision
  ///                     file holding a different key — left untouched);
  ///   kCorruptArtifact  the file failed validation and was quarantined to
  ///                     `<path>.corrupt`.
  Result<ScenarioResult> load(const std::string& key) const;

  /// Atomically publishes the artifact for `key`: the payload is serialized
  /// and checksummed in memory, written to a per-writer-unique temp file
  /// (`<path>.<pid>.<seq>.tmp`, so concurrent stores — threads or processes
  /// — never interleave) whose stream state is verified after every write,
  /// then renamed into place. On failure the temp file is deleted and
  /// nothing is published (kIoError). Successful stores also sweep temp
  /// files abandoned by crashed writers (older than an hour).
  Status store(const std::string& key, const ScenarioResult& result) const;

  const std::string& directory() const { return directory_; }

  /// On-disk path an artifact for `key` would use (tests, tooling).
  std::string artifact_path(const std::string& key) const;

 private:
  /// Deletes *.tmp leftovers from crashed writers (age > 1 h); best-effort.
  void remove_stale_temps() const;

  std::string directory_;
  bool enabled_ = true;
};

}  // namespace xfa
