// End-to-end scenario execution: simulate a MANET trace and extract the
// monitored node's feature matrix (the ns-2 run + trace post-processing).
#pragma once

#include "common/status.h"
#include "features/extract.h"
#include "net/channel.h"
#include "routing/route_events.h"
#include "scenario/config.h"

namespace xfa {

/// Ground-truth labelling for attack traces.
///
/// The paper observes that the implemented intrusions do not self-heal
/// ("there is no way to figure out exactly when the intrusion actions have
/// ended and the observed anomalies are just the lasting damages"), so the
/// default treats everything from the first intrusion onset onward as
/// abnormal — this matches the flat-vs-oscillating split in Figure 3.
/// ActiveSessions labels only samples that overlap an on-phase (ablation).
enum class LabelPolicy { OnsetOnwards, ActiveSessions };

/// Network-level health counters for one run (tests, examples, sanity).
struct ScenarioSummary {
  std::uint64_t data_originated = 0;
  std::uint64_t data_delivered = 0;
  double packet_delivery_ratio = 0;
  std::uint64_t scheduler_events = 0;
  ChannelStats channel;
  RoutingStats monitor_routing;
  std::uint64_t monitor_audit_packets = 0;
  std::uint64_t monitor_audit_route_events = 0;
};

struct ScenarioResult {
  RawTrace trace;  // labelled per the requested policy
  ScenarioSummary summary;
};

/// Usability check on a finished run: non-empty, rectangular, finite feature
/// rows and a monitor node that actually observed traffic. Anything else is
/// kDegenerateData — the kind of trace heavy benign faults can produce.
Status validate_scenario_result(const ScenarioResult& result);

/// Runs (or loads from the trace cache) one scenario. Caching is keyed on
/// ScenarioConfig::cache_key(); labels are recomputed per call so the policy
/// is not part of the key. Set XFA_NO_CACHE=1 to force re-simulation;
/// XFA_CACHE_DIR overrides the cache directory (default ./xfa_cache); both
/// are read from the process env snapshot (common/env.h).
///
/// Concurrency-safe: every call owns an isolated simulation world, and an
/// in-flight single-flight guard keyed on the cache key makes concurrent
/// requests for the same trace simulate exactly once — each caller then
/// labels its own copy per its policy.
///
/// Recovery path: a corrupt cache artifact is quarantined and the trace
/// regenerated; a degenerate run is retried up to XFA_SCENARIO_RETRIES
/// (default 2) times with seeds derived deterministically from config.seed,
/// so the whole procedure — retries included — is a pure function of the
/// config. Returns kDegenerateData when every attempt stayed degenerate.
Result<ScenarioResult> run_scenario_checked(
    const ScenarioConfig& config, LabelPolicy policy = LabelPolicy::OnsetOnwards);

/// Abort-on-failure wrapper over run_scenario_checked for callers with no
/// recovery of their own (benches, examples).
ScenarioResult run_scenario(const ScenarioConfig& config,
                            LabelPolicy policy = LabelPolicy::OnsetOnwards);

/// Labels a trace in place according to the config's attack schedules.
void apply_labels(RawTrace& trace, const ScenarioConfig& config,
                  LabelPolicy policy);

}  // namespace xfa
