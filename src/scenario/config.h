// Scenario configuration: everything that defines one simulated trace, with
// a canonical string form used as the trace-cache key.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "attacks/onoff.h"
#include "faults/plan.h"
#include "mobility/waypoint.h"
#include "net/channel.h"
#include "transport/traffic.h"

namespace xfa {

enum class RoutingKind : std::uint8_t { Aodv, Dsr };
enum class TransportKind : std::uint8_t { Udp, Tcp };
enum class AttackKind : std::uint8_t {
  Blackhole,      // paper's evaluated route-logic attack
  SelectiveDrop,  // paper's evaluated traffic-distortion attack
  UpdateStorm,    // §2.3 route-logic: meaningless discovery flooding
  RandomDrop,     // §2.3 dropping variant (probability parameter)
};

const char* to_string(RoutingKind kind);
const char* to_string(TransportKind kind);
const char* to_string(AttackKind kind);

/// Serializable description of an IntrusionSchedule.
struct ScheduleSpec {
  bool periodic = true;
  SimTime start = 2500;     // periodic form
  SimTime duration = 200;   // session length == gap length (paper's model)
  std::vector<std::pair<SimTime, SimTime>> sessions;  // explicit form

  static ScheduleSpec periodic_from(SimTime start, SimTime duration);
  static ScheduleSpec session_list(
      std::vector<std::pair<SimTime, SimTime>> sessions);

  IntrusionSchedule build() const;
  void append_key(std::string& key) const;
};

struct AttackSpec {
  AttackKind kind = AttackKind::Blackhole;
  NodeId attacker = 1;
  /// SelectiveDrop target; kInvalidNode = "auto": the runner picks the
  /// destination of the first generated flow that is neither the attacker
  /// nor the monitored node (deterministic given the seed).
  NodeId drop_target = kInvalidNode;
  double drop_probability = 0.5;  // RandomDrop
  ScheduleSpec schedule;

  void append_key(std::string& key) const;
};

struct ScenarioConfig {
  RoutingKind routing = RoutingKind::Aodv;
  TransportKind transport = TransportKind::Udp;
  std::size_t node_count = 50;
  SimTime duration = 10000;      // paper: "a run time of 10000 seconds"
  SimTime sample_interval = 5;   // paper: "logged every 5 seconds"
  /// Per-run seed: channel jitter, protocol timer staggering, CBR phase
  /// jitter — everything ns-2's internal RNG would vary between runs.
  std::uint64_t seed = 1;
  /// Seed for the connection pattern alone. ns-2 methodology (and the
  /// paper's setup) generates one cbrgen traffic file and reuses it across
  /// the runs of an experiment.
  std::uint64_t traffic_seed = 777;
  /// Seed for the mobility scenario alone (the setdest file equivalent),
  /// likewise shared across the traces of one experiment. Varying it per
  /// trace is the "cross-scenario generalization" ablation.
  std::uint64_t mobility_seed = 4242;
  NodeId monitor_node = 0;       // paper: "results ... on one node only"

  MobilityConfig mobility;       // paper defaults baked into MobilityConfig
  ChannelConfig channel;
  TrafficConfig traffic;         // max 100 connections, rate 0.25

  std::vector<AttackSpec> attacks;

  /// Benign network chaos injected alongside (or without) attacks; disabled
  /// by default. See faults/plan.h.
  FaultPlan faults;

  bool has_attacks() const { return !attacks.empty(); }
  bool has_faults() const { return faults.enabled(); }

  /// Canonical key covering every behaviour-relevant field; identical keys
  /// imply identical traces.
  std::string cache_key() const;
};

/// The paper's mixed-intrusion trace: "traces composed with black hole and
/// packet dropping attacks, started at 2500s and 5000s respectively".
/// Both follow the periodic on-off model with `session` seconds per phase.
std::vector<AttackSpec> mixed_attacks(SimTime session = 200,
                                      NodeId blackhole_attacker = 1,
                                      NodeId drop_attacker = 2);

/// The Figure-5 traces: a single attack type with "three intrusions started
/// on 2500s, 5000s and 7500s respectively, all lasting for 100 seconds".
std::vector<AttackSpec> single_attack_sessions(AttackKind kind,
                                               NodeId attacker = 1);

}  // namespace xfa
