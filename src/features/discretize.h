// Equal-frequency ("frequency bucket") discretization, paper §4.1:
// "We divide the value space of a continuous feature into a fixed number of
// continuous ranges (buckets), so that the frequencies of occurrences of
// feature values dropped in all buckets are equal... In our experiments, we
// choose the bucket number to be 5."
#pragma once

#include <cstddef>
#include <vector>

#include "features/extract.h"

namespace xfa {

/// Discrete event matrix ready for the classifiers: every cell is a bucket
/// index in [0, cardinality(column)).
struct DiscreteTrace {
  std::vector<SimTime> times;
  std::vector<std::vector<int>> rows;
  std::vector<int> labels;
  std::vector<int> cardinality;  // per column

  std::size_t size() const { return rows.size(); }
  std::size_t columns() const { return cardinality.size(); }
};

class EqualFrequencyDiscretizer {
 public:
  /// `min_relative_gap`: a cut point is kept only if it exceeds the previous
  /// one by this relative margin. Quantile cuts through a tightly clustered
  /// value mass (e.g. an inter-packet stddev that is near-constant up to
  /// per-run jitter) otherwise turn measurement noise into bucket noise;
  /// collapsing such cuts makes those features coarse-but-stable, which is
  /// what cross-trace generalization needs. 0 disables the guard.
  explicit EqualFrequencyDiscretizer(int buckets = 5,
                                     double min_relative_gap = 0.25)
      : buckets_(buckets), min_relative_gap_(min_relative_gap) {}

  /// Learns per-column bucket boundaries from (a random subset of) normal
  /// training rows. `max_fit_rows` implements the paper's "pre-filtering
  /// process using a small random subset" (0 = use everything).
  void fit(const std::vector<std::vector<double>>& rows,
           std::size_t max_fit_rows = 0, std::uint64_t seed = 7);

  bool fitted() const { return !boundaries_.empty(); }

  /// Maps a value of `column` to its bucket index.
  int transform_value(std::size_t column, double value) const;

  /// Applies the fitted mapping to a whole trace.
  DiscreteTrace transform(const RawTrace& trace) const;

  /// Effective number of buckets for a column (ties can merge buckets).
  int cardinality(std::size_t column) const {
    return static_cast<int>(boundaries_[column].size()) + 1;
  }

  int requested_buckets() const { return buckets_; }
  double min_relative_gap() const { return min_relative_gap_; }

 private:
  int buckets_;
  double min_relative_gap_;
  // boundaries_[c] holds ascending cut points; value <= cut[i] -> bucket i.
  std::vector<std::vector<double>> boundaries_;
};

}  // namespace xfa
