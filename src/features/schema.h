// Feature schema: Feature Set I (topology/route, Table 4) + Feature Set II
// (traffic, Table 5).
//
// Set II is generated from the four dimensions of Table 5:
//   packet type x flow direction x sampling period x statistics measure,
// excluding data x {forwarded, dropped}, giving (6*4-2)*3*2 = 132 features.
// Set I contributes time (reference only, excluded from classification),
// absolute velocity, five route-event counters, total route change and
// average route length.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "audit/audit.h"
#include "sim/types.h"

namespace xfa {

/// The two statistics measures of Table 5.
enum class TrafficStat : std::uint8_t {
  Count = 0,         // packet count in the sampling period
  IatStdDev = 1,     // standard deviation of inter-packet intervals
};
inline constexpr std::size_t kTrafficStatCount = 2;

const char* to_string(TrafficStat stat);

/// One generated Set-II feature: a <packet type, flow direction, sampling
/// period, statistics measure> tuple (the paper's 4-dimensional encoding).
struct TrafficFeatureSpec {
  AuditPacketType type = AuditPacketType::Data;
  FlowDirection dir = FlowDirection::Received;
  SimTime period = 5.0;
  TrafficStat stat = TrafficStat::Count;

  std::string name() const;
  /// The paper's vector encoding, e.g. <2,0,0,1> for "stddev of inter-packet
  /// intervals of received RREQs every 5 seconds".
  std::string encode() const;
};

/// Column layout of a feature vector.
class FeatureSchema {
 public:
  /// The paper's exact feature set: sampling periods {5, 60, 900} s.
  static FeatureSchema standard();

  /// Feature set restricted to a subset of sampling periods (ablation B).
  static FeatureSchema with_periods(const std::vector<SimTime>& periods);

  std::size_t size() const { return names_.size(); }
  const std::vector<std::string>& names() const { return names_; }
  const std::string& name(std::size_t column) const { return names_[column]; }

  // --- Set I column indices -------------------------------------------
  std::size_t time_column() const { return 0; }
  std::size_t velocity_column() const { return 1; }
  /// Column of the counter for one route-event kind.
  std::size_t route_event_column(RouteEventKind kind) const {
    return 2 + static_cast<std::size_t>(kind);
  }
  std::size_t total_route_change_column() const { return 7; }
  std::size_t average_route_length_column() const { return 8; }

  // --- Set II -----------------------------------------------------------
  std::size_t traffic_base_column() const { return 9; }
  const std::vector<TrafficFeatureSpec>& traffic_specs() const {
    return traffic_;
  }

  /// Columns usable as classifier features/labels (everything except time).
  std::vector<std::size_t> classifiable_columns() const;

 private:
  FeatureSchema() = default;

  std::vector<std::string> names_;
  std::vector<TrafficFeatureSpec> traffic_;
};

}  // namespace xfa
