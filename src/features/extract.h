// Feature extraction: turns a node's audit log into the paper's per-5-second
// feature vectors ("route statistics logged every 5 seconds").
#pragma once

#include <cstddef>
#include <vector>

#include "audit/audit.h"
#include "features/schema.h"
#include "sim/types.h"

namespace xfa {

/// A continuous (pre-discretization) feature matrix: one row per sampling
/// instant, columns per FeatureSchema.
struct RawTrace {
  std::vector<SimTime> times;         // sampling instants
  std::vector<std::vector<double>> rows;
  std::vector<int> labels;            // 0 = normal, 1 = intrusion (ground truth)

  std::size_t size() const { return rows.size(); }
};

/// Per-sample quantities only the live simulation can provide; the scenario
/// runner records them while the run executes.
struct SampledNodeState {
  std::vector<double> velocity;           // m/s at each sampling instant
  std::vector<double> average_route_len;  // over the route table / cache
};

class FeatureExtractor {
 public:
  FeatureExtractor(const FeatureSchema& schema, SimTime sample_interval = 5.0);

  /// Builds the feature matrix for one node over [first_sample, duration].
  /// `state.velocity/average_route_len` must have one entry per sampling
  /// instant. Labels are left empty (filled by the caller).
  RawTrace extract(const AuditLog& audit, const SampledNodeState& state,
                   SimTime duration) const;

  SimTime sample_interval() const { return interval_; }
  const FeatureSchema& schema() const { return schema_; }

  /// Number of sampling instants for a run of `duration` seconds: samples at
  /// interval, 2*interval, ..., duration.
  std::size_t sample_count(SimTime duration) const;

 private:
  const FeatureSchema& schema_;
  SimTime interval_;
};

/// Standalone helpers (exposed for unit testing).

/// Number of events with timestamp in (t - period, t].
std::size_t count_in_window(const std::vector<SimTime>& times, SimTime t,
                            SimTime period);

/// Population standard deviation of the inter-event intervals among events
/// with timestamps in (t - period, t]. Zero when fewer than two intervals.
double iat_stddev_in_window(const std::vector<SimTime>& times, SimTime t,
                            SimTime period);

}  // namespace xfa
