#include "features/discretize.h"

#include <algorithm>

#include "common/check.h"
#include "sim/rng.h"

namespace xfa {

void EqualFrequencyDiscretizer::fit(
    const std::vector<std::vector<double>>& rows, std::size_t max_fit_rows,
    std::uint64_t seed) {
  XFA_CHECK(!rows.empty());
  XFA_CHECK_GE(buckets_, 2);

  // Optional pre-filtering subset.
  std::vector<const std::vector<double>*> sample;
  sample.reserve(rows.size());
  for (const auto& row : rows) sample.push_back(&row);
  if (max_fit_rows != 0 && sample.size() > max_fit_rows) {
    Rng rng(seed);
    for (std::size_t i = 0; i < max_fit_rows; ++i) {
      const std::size_t j =
          i + static_cast<std::size_t>(rng.uniform_int(sample.size() - i));
      std::swap(sample[i], sample[j]);
    }
    sample.resize(max_fit_rows);
  }

  const std::size_t columns = rows.front().size();
  boundaries_.assign(columns, {});
  std::vector<double> values(sample.size());
  for (std::size_t c = 0; c < columns; ++c) {
    for (std::size_t r = 0; r < sample.size(); ++r)
      values[r] = (*sample[r])[c];
    std::sort(values.begin(), values.end());

    // Cut points at the 1/b, 2/b, ... quantiles; duplicates merge (a column
    // dominated by one value, e.g. all zeros, ends up with fewer buckets).
    std::vector<double>& cuts = boundaries_[c];
    for (int b = 1; b < buckets_; ++b) {
      const std::size_t idx =
          std::min(values.size() - 1,
                   static_cast<std::size_t>(values.size() *
                                            static_cast<double>(b) /
                                            static_cast<double>(buckets_)));
      const double cut = values[idx];
      // The first cut is always kept (even a cut at the minimum separates
      // "minimum" from "above minimum" — important for mostly-zero count
      // features whose bursts are the attack signal). Later cuts must clear
      // the relative-gap guard.
      const double required_gap =
          cuts.empty() ? 0.0
                       : min_relative_gap_ * std::max(std::abs(cut),
                                                      std::abs(cuts.back()));
      if (cuts.empty() || cut > cuts.back() + required_gap)
        cuts.push_back(cut);
    }
    // A cut at the column maximum adds no information; drop it so constant
    // columns yield a single bucket.
    if (!cuts.empty() && cuts.back() >= values.back()) cuts.pop_back();
    // Postcondition: strictly increasing cuts, and never more buckets than
    // requested — transform_value depends on both.
    XFA_CHECK(std::is_sorted(cuts.begin(), cuts.end()));
    XFA_CHECK_LT(static_cast<int>(cuts.size()), buckets_);
  }
}

int EqualFrequencyDiscretizer::transform_value(std::size_t column,
                                               double value) const {
  XFA_CHECK_LT(column, boundaries_.size());
  const std::vector<double>& cuts = boundaries_[column];
  const auto it = std::lower_bound(cuts.begin(), cuts.end(), value);
  const int bucket = static_cast<int>(it - cuts.begin());
  XFA_DCHECK(bucket >= 0 && bucket < cardinality(column));
  return bucket;
}

DiscreteTrace EqualFrequencyDiscretizer::transform(
    const RawTrace& trace) const {
  XFA_CHECK(fitted());
  DiscreteTrace out;
  out.times = trace.times;
  out.labels = trace.labels;
  out.cardinality.resize(boundaries_.size());
  for (std::size_t c = 0; c < boundaries_.size(); ++c)
    out.cardinality[c] = cardinality(c);
  out.rows.reserve(trace.rows.size());
  for (const auto& row : trace.rows) {
    XFA_CHECK_EQ(row.size(), boundaries_.size());
    std::vector<int> discrete(row.size());
    for (std::size_t c = 0; c < row.size(); ++c)
      discrete[c] = transform_value(c, row[c]);
    out.rows.push_back(std::move(discrete));
  }
  return out;
}

}  // namespace xfa
