#include "features/extract.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "common/check.h"

namespace xfa {

std::size_t count_in_window(const std::vector<SimTime>& times, SimTime t,
                            SimTime period) {
  const auto lo = std::upper_bound(times.begin(), times.end(), t - period);
  const auto hi = std::upper_bound(times.begin(), times.end(), t);
  return static_cast<std::size_t>(hi - lo);
}

double iat_stddev_in_window(const std::vector<SimTime>& times, SimTime t,
                            SimTime period) {
  const auto lo = std::upper_bound(times.begin(), times.end(), t - period);
  const auto hi = std::upper_bound(times.begin(), times.end(), t);
  const auto n = static_cast<std::size_t>(hi - lo);
  if (n < 3) return 0.0;  // fewer than two intervals
  double sum = 0, sum_sq = 0;
  for (auto it = lo + 1; it != hi; ++it) {
    const double d = *it - *(it - 1);
    sum += d;
    sum_sq += d * d;
  }
  const double m = static_cast<double>(n - 1);
  const double mean = sum / m;
  const double var = std::max(0.0, sum_sq / m - mean * mean);
  return std::sqrt(var);
}

FeatureExtractor::FeatureExtractor(const FeatureSchema& schema,
                                   SimTime sample_interval)
    : schema_(schema), interval_(sample_interval) {
  XFA_CHECK_GT(sample_interval, 0);
}

std::size_t FeatureExtractor::sample_count(SimTime duration) const {
  return static_cast<std::size_t>(duration / interval_ + 1e-9);
}

RawTrace FeatureExtractor::extract(const AuditLog& audit,
                                   const SampledNodeState& state,
                                   SimTime duration) const {
  const std::size_t samples = sample_count(duration);
  XFA_CHECK_GE(state.velocity.size(), samples);
  XFA_CHECK_GE(state.average_route_len.size(), samples);

  RawTrace trace;
  trace.times.reserve(samples);
  trace.rows.reserve(samples);

  // Sliding two-pointer cursors for the route-event counters (all use the
  // sampling interval itself as the window, per Table 4's 5-second logging).
  struct Cursor {
    std::size_t lo = 0, hi = 0;
  };
  std::array<Cursor, kRouteEventKindCount> route_cursors;

  for (std::size_t i = 0; i < samples; ++i) {
    const SimTime t = interval_ * static_cast<double>(i + 1);
    trace.times.push_back(t);
    std::vector<double> row(schema_.size(), 0.0);

    row[schema_.time_column()] = t;
    row[schema_.velocity_column()] = state.velocity[i];
    row[schema_.average_route_length_column()] = state.average_route_len[i];

    double total_change = 0;
    for (std::size_t k = 0; k < kRouteEventKindCount; ++k) {
      const auto kind = static_cast<RouteEventKind>(k);
      const auto& times = audit.route_event_times(kind);
      Cursor& cursor = route_cursors[k];
      while (cursor.hi < times.size() && times[cursor.hi] <= t) ++cursor.hi;
      while (cursor.lo < cursor.hi && times[cursor.lo] <= t - interval_)
        ++cursor.lo;
      const auto count = static_cast<double>(cursor.hi - cursor.lo);
      row[schema_.route_event_column(kind)] = count;
      if (kind == RouteEventKind::Add || kind == RouteEventKind::Remove)
        total_change += count;
    }
    row[schema_.total_route_change_column()] = total_change;

    std::size_t column = schema_.traffic_base_column();
    for (const TrafficFeatureSpec& spec : schema_.traffic_specs()) {
      const auto& times = audit.packet_times(spec.type, spec.dir);
      row[column++] =
          spec.stat == TrafficStat::Count
              ? static_cast<double>(count_in_window(times, t, spec.period))
              : iat_stddev_in_window(times, t, spec.period);
    }
    trace.rows.push_back(std::move(row));
  }
  return trace;
}

}  // namespace xfa
