#include "features/schema.h"

#include <sstream>

namespace xfa {

const char* to_string(TrafficStat stat) {
  switch (stat) {
    case TrafficStat::Count: return "count";
    case TrafficStat::IatStdDev: return "iat_stddev";
  }
  return "?";
}

std::string TrafficFeatureSpec::name() const {
  std::ostringstream os;
  os << to_string(type) << '_' << to_string(dir) << '_'
     << static_cast<long long>(period) << "s_" << to_string(stat);
  return os.str();
}

std::string TrafficFeatureSpec::encode() const {
  // Period index depends on the standard period list {5, 60, 900}.
  int period_index = period == 5.0 ? 0 : period == 60.0 ? 1 : 2;
  std::ostringstream os;
  os << '<' << static_cast<int>(type) << ',' << static_cast<int>(dir) << ','
     << period_index << ',' << static_cast<int>(stat) << '>';
  return os.str();
}

FeatureSchema FeatureSchema::standard() {
  return with_periods({5.0, 60.0, 900.0});
}

FeatureSchema FeatureSchema::with_periods(
    const std::vector<SimTime>& periods) {
  FeatureSchema schema;
  schema.names_ = {
      "time",                 // reference only, never classified
      "absolute_velocity",    // from the mobility trace
      "route_add_count",      // routes newly added by route discovery
      "route_removal_count",  // stale routes being removed
      "route_find_count",     // routes found in cache, no re-discovery
      "route_notice_count",   // routes eavesdropped from somewhere else
      "route_repair_count",   // broken routes currently under repair
      "total_route_change",   // adds + removals
      "average_route_length",
  };
  for (std::size_t t = 0; t < kAuditPacketTypeCount; ++t) {
    for (std::size_t d = 0; d < kFlowDirectionCount; ++d) {
      const auto type = static_cast<AuditPacketType>(t);
      const auto dir = static_cast<FlowDirection>(d);
      // The paper excludes data x {forwarded, dropped}: in-flight data is
      // always wrapped in a route packet.
      if (type == AuditPacketType::Data &&
          (dir == FlowDirection::Forwarded || dir == FlowDirection::Dropped))
        continue;
      for (const SimTime period : periods) {
        for (std::size_t s = 0; s < kTrafficStatCount; ++s) {
          TrafficFeatureSpec spec;
          spec.type = type;
          spec.dir = dir;
          spec.period = period;
          spec.stat = static_cast<TrafficStat>(s);
          schema.names_.push_back(spec.name());
          schema.traffic_.push_back(spec);
        }
      }
    }
  }
  return schema;
}

std::vector<std::size_t> FeatureSchema::classifiable_columns() const {
  std::vector<std::size_t> columns;
  columns.reserve(size() - 1);
  for (std::size_t c = 1; c < size(); ++c) columns.push_back(c);
  return columns;
}

}  // namespace xfa
