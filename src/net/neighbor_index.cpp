#include "net/neighbor_index.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace xfa {

NeighborIndex::NeighborIndex(const MobilityModel& mobility, double range_m,
                             double max_speed)
    : mobility_(mobility),
      range_m_(range_m),
      range2_(range_m * range_m),
      max_speed_(max_speed),
      // One cell per radio range keeps the query to at most a handful of
      // cell lookups while still pruning well over half the field on the
      // paper's 1000x1000m / 250m-range topology.
      cell_size_(range_m),
      // Rebuild once nodes may have drifted a quarter range (3.1 simulated
      // seconds at the paper's 20 m/s): the query disc then never widens
      // beyond 1.25x range, and the O(N) rebuild amortizes over the hundreds
      // of transmissions in between.
      slack_budget_(range_m * 0.25) {
  XFA_CHECK_GT(range_m, 0);
}

std::int32_t NeighborIndex::cell_coord(double v) const {
  return static_cast<std::int32_t>(std::floor(v / cell_size_));
}

void NeighborIndex::rebuild(SimTime t) const {
  cells_.clear();
  for (std::size_t i = 0; i < node_count_; ++i) {
    const auto id = static_cast<NodeId>(i);
    const Vec2 pos = mobility_.position(id, t);
    cells_[cell_key(cell_coord(pos.x), cell_coord(pos.y))].push_back(id);
  }
  built_ = true;
  built_at_ = t;
  indexed_nodes_ = node_count_;
  ++stats_.rebuilds;
}

void NeighborIndex::in_range_of(NodeId self, SimTime t,
                                std::vector<NodeId>& out) const {
  ++stats_.queries;
  const Vec2 center = mobility_.position(self, t);

  if (!enabled()) {
    // Exact linear scan: the pre-grid behavior, kept for mobility models
    // without a speed bound (e.g. teleporting test topologies).
    for (std::size_t i = 0; i < node_count_; ++i) {
      const auto id = static_cast<NodeId>(i);
      if (id == self) continue;
      ++stats_.candidates;
      if (distance2(center, mobility_.position(id, t)) <= range2_) {
        ++stats_.confirmed;
        out.push_back(id);
      }
    }
    return;
  }

  if (!built_ || indexed_nodes_ != node_count_ ||
      (t - built_at_) * max_speed_ > slack_budget_) {
    rebuild(t);
  }
  // Every node is within `slack` of its bucketed position, so the true
  // neighbors of `center` all sit in cells intersecting the widened disc.
  const double reach = range_m_ + (t - built_at_) * max_speed_;
  const std::int32_t cx0 = cell_coord(center.x - reach);
  const std::int32_t cx1 = cell_coord(center.x + reach);
  const std::int32_t cy0 = cell_coord(center.y - reach);
  const std::int32_t cy1 = cell_coord(center.y + reach);
  scratch_.clear();
  for (std::int32_t cy = cy0; cy <= cy1; ++cy) {
    for (std::int32_t cx = cx0; cx <= cx1; ++cx) {
      const auto it = cells_.find(cell_key(cx, cy));
      if (it == cells_.end()) continue;
      scratch_.insert(scratch_.end(), it->second.begin(), it->second.end());
    }
  }
  // Ascending id order is load-bearing: the channel draws per-receiver RNG
  // decisions in this order, so it is part of the byte-identity contract.
  std::sort(scratch_.begin(), scratch_.end());
  for (const NodeId id : scratch_) {
    if (id == self) continue;
    ++stats_.candidates;
    if (distance2(center, mobility_.position(id, t)) <= range2_) {
      ++stats_.confirmed;
      out.push_back(id);
    }
  }
}

}  // namespace xfa
