// Wire-level packet model: common fields plus per-protocol routing headers.
//
// Mirrors ns-2's packet object: a common header (uid, type, size, addressing)
// and a union of protocol headers. Headers are plain data; all behaviour
// lives in the routing agents.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "sim/types.h"

namespace xfa {

/// High-level packet category (the "packet type" feature dimension).
enum class PacketKind : std::uint8_t {
  Data,          // application payload (CBR or TCP segment/ack)
  RouteRequest,  // AODV RREQ / DSR ROUTE REQUEST
  RouteReply,    // AODV RREP / DSR ROUTE REPLY
  RouteError,    // AODV RERR / DSR ROUTE ERROR
  Hello,         // AODV HELLO beacon
};

const char* to_string(PacketKind kind);

/// Sequence numbers in AODV; the maximum value is what the black hole attack
/// forges ("routes with maximum sequence number are always considered the
/// freshest").
using SeqNo = std::uint32_t;
inline constexpr SeqNo kMaxSeqNo = 0xffffffffu;

// ---------------------------------------------------------------------------
// AODV headers (RFC 3561 style, trimmed to what the simulation exercises).
// ---------------------------------------------------------------------------

struct AodvRreqHeader {
  std::uint32_t rreq_id = 0;  // per-originator flood identifier
  NodeId origin = kInvalidNode;
  SeqNo origin_seqno = 0;
  NodeId target = kInvalidNode;
  SeqNo target_seqno = 0;
  bool target_seqno_known = false;
  std::uint16_t hop_count = 0;
};

struct AodvRrepHeader {
  NodeId origin = kInvalidNode;  // who asked (RREP travels back to origin)
  NodeId target = kInvalidNode;  // route destination being answered
  SeqNo target_seqno = 0;
  std::uint16_t hop_count = 0;
  SimTime lifetime = 0;
};

struct AodvRerrHeader {
  // Destinations now unreachable through the sender, with their seqnos.
  std::vector<std::pair<NodeId, SeqNo>> unreachable;
};

struct AodvHelloHeader {
  SeqNo seqno = 0;
};

// ---------------------------------------------------------------------------
// DSR headers (Johnson & Maltz source routing).
// ---------------------------------------------------------------------------

struct DsrRreqHeader {
  std::uint32_t request_id = 0;
  NodeId origin = kInvalidNode;
  NodeId target = kInvalidNode;
  // Route accumulated so far, starting with the origin. The black hole forges
  // this: a fabricated one-hop route [victim-source, attacker].
  std::vector<NodeId> route_so_far;
  // Freshness hint; real DSR has none, but ns-2-era implementations (and the
  // paper's attack) exploit a sequence preference when overhearing.
  SeqNo freshness = 0;
};

struct DsrRrepHeader {
  NodeId origin = kInvalidNode;
  NodeId target = kInvalidNode;
  std::vector<NodeId> route;  // the discovered path origin..target
  SeqNo freshness = 0;
  // Path the reply itself travels (replier back to origin) and the index of
  // the node currently holding it.
  std::vector<NodeId> travel;
  std::size_t travel_cursor = 0;
};

struct DsrRerrHeader {
  NodeId broken_from = kInvalidNode;
  NodeId broken_to = kInvalidNode;
  NodeId origin = kInvalidNode;  // node reporting the failure
  // Path the error report travels (reporter back to the data source).
  std::vector<NodeId> travel;
  std::size_t travel_cursor = 0;
};

/// Source-route carried by DSR data packets.
struct DsrSourceRoute {
  std::vector<NodeId> hops;  // full path, hops.front() == source
  std::size_t cursor = 0;    // index of the node currently holding the packet
};

using RoutingHeader =
    std::variant<std::monostate, AodvRreqHeader, AodvRrepHeader,
                 AodvRerrHeader, AodvHelloHeader, DsrRreqHeader, DsrRrepHeader,
                 DsrRerrHeader, DsrSourceRoute>;

// ---------------------------------------------------------------------------
// The packet.
// ---------------------------------------------------------------------------

struct Packet {
  std::uint64_t uid = 0;  // globally unique, assigned by the channel
  PacketKind kind = PacketKind::Data;

  NodeId src = kInvalidNode;  // end-to-end source
  NodeId dst = kInvalidNode;  // end-to-end destination (kBroadcast for floods)

  std::uint16_t ttl = 64;
  std::uint32_t size_bytes = 64;

  // Application-level identification for transport agents.
  std::uint32_t flow_id = 0;
  std::uint32_t seq = 0;
  bool is_transport_ack = false;

  RoutingHeader header;

  /// Debug rendering, e.g. "RREQ 3->7 ttl=12".
  std::string describe() const;
};

/// Shared immutable packet handle: the channel allocates one const Packet
/// per transmission and every receiver/tap/link-failure lambda shares it
/// (zero-copy fan-out) instead of each deep-copying the vector-bearing
/// routing headers. Receivers copy-on-write only when they mutate (TTL
/// decrement, route accumulation); pure readers — duplicate-flood drops,
/// final delivery, promiscuous taps — never copy.
using PacketPtr = std::shared_ptr<const Packet>;

/// Default packet sizes (bytes), matching typical ns-2 setups.
inline constexpr std::uint32_t kDataPacketBytes = 512;
inline constexpr std::uint32_t kControlPacketBytes = 64;

}  // namespace xfa
