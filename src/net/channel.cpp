#include "net/channel.h"

#include <memory>
#include <utility>

#include "common/check.h"
#include "net/node.h"

namespace xfa {

Channel::Channel(Simulator& sim, const MobilityModel& mobility,
                 const ChannelConfig& config)
    : sim_(sim),
      mobility_(mobility),
      config_(config),
      rng_(sim.fork_rng()),
      index_(mobility, config.range_m, config.max_node_speed) {
  XFA_CHECK(config.range_m > 0 && config.bandwidth_bps > 0);
  XFA_CHECK(config.loss_rate >= 0 && config.loss_rate < 1);
}

void Channel::register_node(Node& node) {
  XFA_CHECK(node.id() == static_cast<NodeId>(nodes_.size()))
      << "nodes must register in id order";
  nodes_.push_back(&node);
  index_.set_node_count(nodes_.size());
}

bool Channel::in_range(NodeId a, NodeId b) const {
  if (a == b) return false;
  const SimTime t = sim_.now();
  return distance2(mobility_.position(a, t), mobility_.position(b, t)) <=
         config_.range_m * config_.range_m;
}

std::vector<NodeId> Channel::neighbors(NodeId node) const {
  std::vector<NodeId> out;
  index_.in_range_of(node, sim_.now(), out);
  return out;
}

SimTime Channel::transmission_delay(const Packet& pkt) const {
  return static_cast<double>(pkt.size_bytes) * 8.0 / config_.bandwidth_bps;
}

void Channel::transmit(NodeId from, Packet pkt, NodeId to) {
  XFA_CHECK(from >= 0 && static_cast<std::size_t>(from) < nodes_.size());
  // Routing agents drop expired packets before handing them down, so a
  // zero-TTL or zero-size packet on the channel is a protocol bug.
  XFA_CHECK_GT(pkt.ttl, 0) << pkt.describe();
  XFA_CHECK_GT(pkt.size_bytes, 0u) << pkt.describe();
  // A crashed sender's pending transmits (timers firing mid-crash) radiate
  // nothing; receivers see the usual symptom, silence.
  if (faults_ != nullptr && faults_->node_down(from)) {
    ++stats_.fault_suppressed_tx;
    return;
  }
  ++stats_.transmissions;
  if (pkt.uid == 0) pkt.uid = next_uid();

  const SimTime delay =
      transmission_delay(pkt) + rng_.uniform(0, config_.max_jitter_s);
  // One immutable packet shared by every receiver/tap/link-failure event
  // scheduled below (zero-copy fan-out): lambdas capture a refcount bump
  // instead of a deep copy of the vector-bearing routing headers.
  const PacketPtr shared = std::make_shared<const Packet>(std::move(pkt));
  // Connectivity is evaluated at transmit time; at these speeds nodes move
  // < 1 mm within the delay, so this matches evaluating at arrival time.
  // The grid-pruned receiver set is exact and in ascending node-id order —
  // the per-receiver RNG draws below must happen in that order to keep
  // traces byte-identical.
  receiver_scratch_.clear();
  index_.in_range_of(from, sim_.now(), receiver_scratch_);
  bool unicast_delivered = false;
  for (const NodeId rid : receiver_scratch_) {
    Node* receiver = nodes_[static_cast<std::size_t>(rid)];
    if (faults_ != nullptr &&
        (faults_->node_down(rid) || faults_->link_down(from, rid))) {
      ++stats_.fault_link_drops;
      continue;
    }
    if (config_.loss_rate > 0 && rng_.chance(config_.loss_rate)) {
      ++stats_.random_losses;
      continue;
    }
    SimTime rx_delay = delay;
    if (faults_ != nullptr) {
      if (faults_->loses_delivery()) {
        ++stats_.fault_burst_losses;
        continue;
      }
      // A corrupted frame fails the receiver CRC: dropped on arrival, and a
      // corrupted unicast leaves unicast_delivered false so the sender gets
      // the same missing-ACK feedback as any other loss.
      if (faults_->corrupts_delivery()) {
        ++stats_.fault_corrupted;
        continue;
      }
      rx_delay += faults_->extra_delay();
    }
    if (to == kBroadcast || rid == to) {
      if (rid == to) unicast_delivered = true;
      ++stats_.deliveries;
      sim_.after(rx_delay, [receiver, shared, from] {
        receiver->deliver(shared, from);
      });
      // MAC retransmission whose ACK was lost: the receiver sees the frame
      // twice, slightly reordered against other traffic.
      if (faults_ != nullptr && faults_->duplicates_delivery()) {
        ++stats_.fault_duplicates;
        ++stats_.deliveries;
        sim_.after(rx_delay + faults_->extra_delay(),
                   [receiver, shared, from] {
                     receiver->deliver(shared, from);
                   });
      }
    } else if (config_.promiscuous_taps) {
      ++stats_.taps;
      sim_.after(rx_delay, [receiver, shared, from, to] {
        receiver->overhear(*shared, from, to);
      });
    }
  }

  if (to != kBroadcast && !unicast_delivered) {
    ++stats_.unicast_failures;
    Node* sender = nodes_[static_cast<std::size_t>(from)];
    // Missing-ACK detection takes roughly one retry round at the MAC.
    sim_.after(delay + 0.01,
               [sender, shared, to] { sender->link_failure(*shared, to); });
  }
}

}  // namespace xfa
