#include "net/node.h"

#include "common/check.h"
#include "net/channel.h"

namespace xfa {

Node::Node(Simulator& sim, Channel& channel, NodeId id)
    : sim_(sim), channel_(channel), id_(id) {}

void Node::set_routing(std::unique_ptr<RoutingProtocol> routing) {
  routing_ = std::move(routing);
}

void Node::send_data(NodeId dst, std::uint32_t flow_id, std::uint32_t seq,
                     std::uint32_t bytes, bool is_ack) {
  XFA_CHECK_NE(routing_, nullptr);
  Packet pkt;
  pkt.kind = PacketKind::Data;
  pkt.src = id_;
  pkt.dst = dst;
  pkt.flow_id = flow_id;
  pkt.seq = seq;
  pkt.size_bytes = bytes;
  pkt.is_transport_ack = is_ack;
  ++data_originated_;
  log_packet(AuditPacketType::Data, FlowDirection::Sent);
  routing_->send_data(std::move(pkt));
}

void Node::deliver(PacketPtr pkt, NodeId from) {
  XFA_CHECK_NE(routing_, nullptr);
  routing_->receive(std::move(pkt), from);
}

void Node::deliver(Packet pkt, NodeId from) {
  deliver(std::make_shared<const Packet>(std::move(pkt)), from);
}

void Node::overhear(const Packet& pkt, NodeId from, NodeId to) {
  if (routing_) routing_->tap(pkt, from, to);
}

void Node::link_failure(const Packet& pkt, NodeId to) {
  if (routing_) routing_->link_failure(pkt, to);
}

void Node::deliver_to_transport(const Packet& pkt) {
  ++data_delivered_;
  log_packet(AuditPacketType::Data, FlowDirection::Received);
  const auto it = sinks_.find(pkt.flow_id);
  if (it != sinks_.end()) it->second->deliver(pkt);
}

void Node::register_sink(std::uint32_t flow_id, TransportSink* sink) {
  XFA_CHECK_NE(sink, nullptr);
  sinks_[flow_id] = sink;
}

void Node::log_packet(AuditPacketType type, FlowDirection dir) {
  if (audit_ != nullptr) audit_->record_packet(sim_.now(), type, dir);
}

void Node::log_route_event(RouteEventKind kind) {
  if (audit_ != nullptr) audit_->record_route_event(sim_.now(), kind);
}

}  // namespace xfa
