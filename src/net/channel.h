// Wireless channel: unit-disc connectivity over the mobility model.
//
// Replaces ns-2's PHY/MAC-802.11 stack with the pieces that matter for
// routing-behaviour features: finite radio range, transmission delay from a
// shared-medium bandwidth, small random access jitter, optional random loss,
// promiscuous overhearing, and missing-ACK feedback for unicast failures.
#pragma once

#include <cstdint>
#include <vector>

#include "mobility/waypoint.h"
#include "net/neighbor_index.h"
#include "net/packet.h"
#include "sim/rng.h"
#include "sim/simulator.h"

namespace xfa {

class Node;

/// Benign-fault hooks the channel consults while transmitting. Implemented
/// by faults/FaultInjector; null means a fault-free medium. The `const`
/// queries read scheduled chaos state (bursts, flaps, crashes); the non-const
/// ones draw from the dedicated fault RNG stream and therefore must be called
/// exactly once per delivery decision to keep traces seed-deterministic.
class FaultModel {
 public:
  virtual ~FaultModel() = default;

  /// Node is crashed: it neither transmits nor receives.
  virtual bool node_down(NodeId node) const = 0;
  /// Link between `a` and `b` is flapped down (symmetric).
  virtual bool link_down(NodeId a, NodeId b) const = 0;
  /// Draw: the delivery is lost to an interference burst.
  virtual bool loses_delivery() = 0;
  /// Draw: the frame arrives corrupted and the receiver's CRC rejects it.
  virtual bool corrupts_delivery() = 0;
  /// Draw: the delivered frame is duplicated at the receiver.
  virtual bool duplicates_delivery() = 0;
  /// Draw: extra queueing/retry delay added to this delivery.
  virtual SimTime extra_delay() = 0;
};

struct ChannelConfig {
  double range_m = 250.0;        // ns-2 default 914MHz WaveLAN range
  double bandwidth_bps = 2e6;    // 2 Mb/s, the classic 802.11 WaveLAN rate
  double loss_rate = 0.0;        // independent per-receiver loss probability
  double max_jitter_s = 0.001;   // uniform medium-access jitter per transmit
  // Deliver promiscuous overhears of unicasts. DSR needs them for its route
  // "notice" mechanism; AODV ignores taps, so runners disable them there to
  // keep the event count down.
  bool promiscuous_taps = true;
  // Upper bound (m/s) on how fast any node's position can change; enables
  // the spatial neighbor grid (see net/neighbor_index.h). Negative (the
  // default) disables the grid and keeps the exact linear scan — required
  // for mobility models without a speed bound, e.g. teleporting
  // StaticPositions::move(). The scenario runner sets this from the
  // waypoint model's configured max speed.
  double max_node_speed = -1.0;
};

/// Channel statistics, global across all nodes (diagnostics and tests).
struct ChannelStats {
  std::uint64_t transmissions = 0;     // transmit() calls
  std::uint64_t deliveries = 0;        // packets handed to a receiving node
  std::uint64_t taps = 0;              // promiscuous overhears delivered
  std::uint64_t random_losses = 0;     // receiver lost packet to loss_rate
  std::uint64_t unicast_failures = 0;  // unicast target out of range / lost
  // Benign-fault activity (all zero without an installed FaultModel).
  std::uint64_t fault_suppressed_tx = 0;  // sender was crashed
  std::uint64_t fault_link_drops = 0;     // receiver crashed / link flapped
  std::uint64_t fault_burst_losses = 0;   // lost to an interference burst
  std::uint64_t fault_corrupted = 0;      // CRC-rejected at the receiver
  std::uint64_t fault_duplicates = 0;     // duplicate deliveries generated
};

class Channel {
 public:
  Channel(Simulator& sim, const MobilityModel& mobility,
          const ChannelConfig& config);

  /// Nodes must register in id order (node id == registration index).
  void register_node(Node& node);

  /// Link-layer transmit from `from`. `to == kBroadcast` reaches every node
  /// in range; a unicast also taps other in-range nodes (promiscuous mode).
  /// A unicast whose target is out of range or suffers loss triggers the
  /// sender's link-failure handler (models a missing 802.11 ACK).
  void transmit(NodeId from, Packet pkt, NodeId to);

  bool in_range(NodeId a, NodeId b) const;
  std::vector<NodeId> neighbors(NodeId node) const;

  /// Grid/pruning diagnostics (microbench, property tests).
  const NeighborIndex& neighbor_index() const { return index_; }

  std::size_t node_count() const { return nodes_.size(); }
  const ChannelStats& stats() const { return stats_; }
  const ChannelConfig& config() const { return config_; }
  const MobilityModel& mobility() const { return mobility_; }

  /// Assigns a fresh uid to a packet being originated.
  std::uint64_t next_uid() { return ++last_uid_; }

  /// Installs (or clears, with nullptr) the benign-fault hooks. The model
  /// must outlive the channel's last transmit.
  void set_fault_model(FaultModel* faults) { faults_ = faults; }

 private:
  SimTime transmission_delay(const Packet& pkt) const;

  Simulator& sim_;
  const MobilityModel& mobility_;
  ChannelConfig config_;
  Rng rng_;
  std::vector<Node*> nodes_;
  ChannelStats stats_;
  std::uint64_t last_uid_ = 0;
  FaultModel* faults_ = nullptr;
  NeighborIndex index_;
  // Reused per transmit: the exact in-range receiver set, ascending ids.
  mutable std::vector<NodeId> receiver_scratch_;
};

}  // namespace xfa
