// Spatial hash grid over node positions: the channel's candidate-pruning
// structure for unit-disc neighbor queries.
//
// The brute-force transmit path costs one position evaluation and one
// distance check against every registered node per transmission. The grid
// buckets node positions into square cells and answers "who might be within
// `range` of this point?" by scanning only the cells intersecting the query
// disc; an exact squared-distance confirmation against *fresh* positions
// then makes the result identical to the brute-force scan (same nodes, same
// ascending-id order), so traces stay byte-for-byte unchanged.
//
// Staleness model: the grid snapshot taken at time t0 stays usable at t >=
// t0 because a node moving at most `max_speed` can have drifted at most
// max_speed * (t - t0) metres from its bucketed position; the query radius
// is widened by exactly that slack. Once the slack exceeds a fixed budget
// the grid is rebuilt (O(N), amortized over the many transmissions in
// between). `max_speed` is therefore a hard correctness bound: the index is
// only enabled when the caller can promise one (max_speed >= 0), and
// teleporting mobility models (StaticPositions::move) must leave it
// disabled — the disabled fallback is the plain exact scan.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "mobility/waypoint.h"
#include "sim/types.h"

namespace xfa {

class NeighborIndex {
 public:
  /// `max_speed` (m/s) bounds how fast any node's position may change;
  /// negative disables the grid (exact linear scan fallback).
  NeighborIndex(const MobilityModel& mobility, double range_m,
                double max_speed);

  bool enabled() const { return max_speed_ >= 0; }

  /// Number of nodes indexed; ids are 0..count-1 (the channel's contract).
  void set_node_count(std::size_t count) { node_count_ = count; }

  /// Appends to `out`, in ascending node-id order, every node other than
  /// `self` whose position at `t` is within `range_m` of `self`'s position
  /// at `t`. Exact: grid pruning is conservative, confirmation evaluates
  /// true positions. Queries must be non-decreasing in `t` (the mobility
  /// model's own contract).
  void in_range_of(NodeId self, SimTime t, std::vector<NodeId>& out) const;

  /// Diagnostic counters (microbench / property tests).
  struct Stats {
    std::uint64_t rebuilds = 0;
    std::uint64_t queries = 0;
    std::uint64_t candidates = 0;  // pruned candidates exactly checked
    std::uint64_t confirmed = 0;   // candidates actually within range
  };
  const Stats& stats() const { return stats_; }

 private:
  static std::int64_t cell_key(std::int32_t cx, std::int32_t cy) {
    return (static_cast<std::int64_t>(cx) << 32) |
           static_cast<std::int64_t>(static_cast<std::uint32_t>(cy));
  }
  std::int32_t cell_coord(double v) const;

  void rebuild(SimTime t) const;

  const MobilityModel& mobility_;
  const double range_m_;
  const double range2_;
  const double max_speed_;
  const double cell_size_;
  const double slack_budget_;
  std::size_t node_count_ = 0;

  mutable bool built_ = false;
  mutable SimTime built_at_ = 0;
  mutable std::size_t indexed_nodes_ = 0;
  mutable std::unordered_map<std::int64_t, std::vector<NodeId>> cells_;
  mutable std::vector<NodeId> scratch_;
  mutable Stats stats_;
};

}  // namespace xfa
