#include "net/packet.h"

#include <sstream>

namespace xfa {

const char* to_string(PacketKind kind) {
  switch (kind) {
    case PacketKind::Data: return "DATA";
    case PacketKind::RouteRequest: return "RREQ";
    case PacketKind::RouteReply: return "RREP";
    case PacketKind::RouteError: return "RERR";
    case PacketKind::Hello: return "HELLO";
  }
  return "?";
}

std::string Packet::describe() const {
  std::ostringstream os;
  os << to_string(kind) << ' ' << src << "->";
  if (dst == kBroadcast)
    os << '*';
  else
    os << dst;
  os << " uid=" << uid << " ttl=" << ttl;
  return os.str();
}

}  // namespace xfa
