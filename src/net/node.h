// Node: a mobile host gluing together routing, transport, audit and attacks.
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "net/packet.h"
#include "sim/observe.h"
#include "sim/simulator.h"

namespace xfa {

class Channel;
class Node;

/// Interface every routing agent (AODV, DSR) implements. The node owns one.
class RoutingProtocol {
 public:
  virtual ~RoutingProtocol() = default;

  /// Called once after the node is fully wired; arms timers (e.g. HELLO).
  virtual void start() {}

  /// Originates an application data packet from this node. The agent finds or
  /// discovers a route and transmits (or buffers) the packet.
  virtual void send_data(Packet&& pkt) = 0;

  /// A packet addressed to this node (unicast to us, or broadcast) arrived.
  /// The handle is shared across the transmission's receivers; copy the
  /// packet (`Packet copy = *pkt;`) before mutating it for a relay.
  virtual void receive(PacketPtr pkt, NodeId from) = 0;

  /// Promiscuous overhear of a unicast between two other nodes.
  virtual void tap(const Packet& pkt, NodeId from, NodeId to) {
    (void)pkt;
    (void)from;
    (void)to;
  }

  /// A unicast we transmitted got no link-layer ACK.
  virtual void link_failure(const Packet& pkt, NodeId to) = 0;

  /// Mean route length over the current route table / cache (Table 4
  /// "average route length"); 0 when empty.
  virtual double average_route_length() const = 0;

  /// Number of usable routes currently known.
  virtual std::size_t route_count() const = 0;

  virtual const char* name() const = 0;
};

/// Receives application data delivered at the final destination.
class TransportSink {
 public:
  virtual ~TransportSink() = default;
  virtual void deliver(const Packet& pkt) = 0;
};

class Node {
 public:
  Node(Simulator& sim, Channel& channel, NodeId id);

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeId id() const { return id_; }
  Simulator& sim() { return sim_; }
  Channel& channel() { return channel_; }

  /// Auditing is off by default (a 10^4-second run generates tens of
  /// millions of observations network-wide); the scenario runner attaches a
  /// sink on the monitored node(s) only — matching the paper, which
  /// evaluates on audit data "collected on one node only". The sink is
  /// non-owning and must outlive the node (or be detached with nullptr).
  void attach_audit(AuditSink* sink) { audit_ = sink; }
  AuditSink* audit_sink() { return audit_; }
  bool audit_enabled() const { return audit_ != nullptr; }

  void set_routing(std::unique_ptr<RoutingProtocol> routing);
  RoutingProtocol& routing() {
    XFA_CHECK_NE(routing_, nullptr);
    return *routing_;
  }
  const RoutingProtocol& routing() const {
    XFA_CHECK_NE(routing_, nullptr);
    return *routing_;
  }
  bool has_routing() const { return routing_ != nullptr; }

  /// Transport entry point: originate a data packet. Logs (data, sent).
  void send_data(NodeId dst, std::uint32_t flow_id, std::uint32_t seq,
                 std::uint32_t bytes, bool is_ack);

  /// Channel delivery entry points. The PacketPtr overload is the zero-copy
  /// fan-out path; the by-value overload wraps for callers (tests) that
  /// originate a fresh packet.
  void deliver(PacketPtr pkt, NodeId from);
  void deliver(Packet pkt, NodeId from);
  void overhear(const Packet& pkt, NodeId from, NodeId to);
  void link_failure(const Packet& pkt, NodeId to);

  /// Called by the routing agent when a data packet reaches its final
  /// destination here. Logs (data, received) and hands off to the sink.
  void deliver_to_transport(const Packet& pkt);

  /// Transport agents register per flow id to receive delivered packets.
  void register_sink(std::uint32_t flow_id, TransportSink* sink);

  /// Attack hook: the routing agent consults these before forwarding and
  /// drops (maliciously) any packet for which a filter returns true. Several
  /// attack scripts may be installed on one compromised node.
  void add_forward_filter(std::function<bool(const Packet&)> filter) {
    forward_filters_.push_back(std::move(filter));
  }
  bool should_maliciously_drop(const Packet& pkt) const {
    for (const auto& filter : forward_filters_)
      if (filter(pkt)) return true;
    return false;
  }

  /// Audit shorthand used by routing agents.
  void log_packet(AuditPacketType type, FlowDirection dir);
  void log_route_event(RouteEventKind kind);

  /// Diagnostic counters.
  std::uint64_t data_originated() const { return data_originated_; }
  std::uint64_t data_delivered() const { return data_delivered_; }

 private:
  Simulator& sim_;
  Channel& channel_;
  NodeId id_;
  AuditSink* audit_ = nullptr;
  std::unique_ptr<RoutingProtocol> routing_;
  std::unordered_map<std::uint32_t, TransportSink*> sinks_;
  std::vector<std::function<bool(const Packet&)>> forward_filters_;
  std::uint64_t data_originated_ = 0;
  std::uint64_t data_delivered_ = 0;
};

}  // namespace xfa
