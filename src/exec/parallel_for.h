// Deterministic data-parallel loop over the shared work queue.
//
// parallel_for(pool, n, body) invokes body(i) exactly once for every
// i in [0, n), partitioned into contiguous blocks. Results must be written
// to per-index locations (slot i of a pre-sized vector) — then the outcome
// is byte-identical for any pool size, including 1. Waits cooperatively, so
// it is safe to call from inside pool tasks (nested parallelism).
#pragma once

#include <cstddef>
#include <functional>

#include "exec/thread_pool.h"

namespace xfa {

void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& body);

}  // namespace xfa
