#include "exec/task_group.h"

#include <chrono>
#include <utility>

namespace xfa {

void TaskGroup::submit(std::function<Status()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (failed_) return;  // cancelled: drop instead of scheduling
    ++pending_;
  }
  pool_.submit([this, task = std::move(task)] {
    bool run = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      run = !failed_;
    }
    // A skipped task reports Ok: its absence of effects is what cancellation
    // means, and the group already carries the causal error.
    const Status status = run ? task() : Status::Ok();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!status.ok() && !failed_) {
        failed_ = true;
        first_error_ = status;
      }
      --pending_;
      // Notify while holding the mutex: the moment we release it a waiter
      // may observe pending_ == 0 and destroy the group, so the condition
      // variable must not be touched after the unlock.
      done_.notify_all();
    }
  });
}

bool TaskGroup::cancelled() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return failed_;
}

Status TaskGroup::wait() {
  for (;;) {
    // Drain the shared queue first: our pending tasks — or tasks blocking
    // the workers that would run them — may be sitting in it.
    while (pool_.run_pending_task()) {
    }
    std::unique_lock<std::mutex> lock(mutex_);
    if (pending_ == 0) {
      const Status result = failed_ ? first_error_ : Status::Ok();
      failed_ = false;
      first_error_ = Status::Ok();
      return result;
    }
    // Timed wait as a progress backstop: completion of our own tasks
    // notifies done_, but a task freshly queued by a sibling is only
    // observable by polling the pool again.
    done_.wait_for(lock, std::chrono::milliseconds(2));
  }
}

}  // namespace xfa
