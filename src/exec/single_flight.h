// Single-flight deduplication: concurrent calls with the same key execute
// the underlying function once; every caller gets a copy of the one result.
//
// The scenario runner uses this so two pool tasks requesting the same trace
// key simulate (and publish to the cache) once. Waiters block rather than
// drain the pool — that is safe here because the leader is, by definition,
// already running on some thread and makes progress independently.
#pragma once

#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

namespace xfa {

template <typename Value>
class SingleFlight {
 public:
  /// Runs `fn` for `key`, unless another thread is already running it — then
  /// blocks until that leader finishes and returns a copy of its result.
  /// Completed calls are forgotten immediately: this deduplicates in-flight
  /// work only, it is not a result cache.
  template <typename Fn>
  Value run(const std::string& key, Fn&& fn) {
    std::shared_ptr<Call> call;
    bool leader = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      std::shared_ptr<Call>& slot = calls_[key];
      if (slot == nullptr) {
        slot = std::make_shared<Call>();
        leader = true;
      }
      call = slot;
    }
    if (leader) {
      Value value = fn();
      {
        std::lock_guard<std::mutex> lock(call->mutex);
        call->value = std::make_shared<Value>(std::move(value));
      }
      {
        // Unpublish before notifying: a caller arriving now starts a fresh
        // flight instead of joining a finished one.
        std::lock_guard<std::mutex> lock(mutex_);
        calls_.erase(key);
      }
      call->done.notify_all();
      return *call->value;
    }
    std::unique_lock<std::mutex> lock(call->mutex);
    call->done.wait(lock, [&call] { return call->value != nullptr; });
    return *call->value;
  }

 private:
  struct Call {
    std::mutex mutex;
    std::condition_variable done;
    std::shared_ptr<Value> value;  // set exactly once, under mutex
  };

  std::mutex mutex_;
  std::unordered_map<std::string, std::shared_ptr<Call>> calls_;
};

}  // namespace xfa
