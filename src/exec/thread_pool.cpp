#include "exec/thread_pool.h"

#include <chrono>

#include "common/check.h"
#include "common/env.h"

#if defined(__unix__) || defined(__APPLE__)
#include <ctime>
#define XFA_HAS_THREAD_CPUTIME 1
#endif

namespace xfa {
namespace {

std::size_t resolve_thread_count(std::size_t requested) {
  if (requested != 0) return requested;
  if (env().threads != 0) return env().threads;
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware != 0 ? hardware : 1;
}

std::uint64_t thread_cpu_ns() {
#ifdef XFA_HAS_THREAD_CPUTIME
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ULL +
           static_cast<std::uint64_t>(ts.tv_nsec);
  }
#endif
  return 0;
}

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t count = resolve_thread_count(threads);
  workers_.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  // Tasks still queued at destruction would reference a dead pool; the
  // owner must drain (TaskGroup joins in its destructor) before teardown.
  XFA_CHECK(queue_.empty()) << "ThreadPool destroyed with queued tasks";
}

void ThreadPool::submit(std::function<void()> task) {
  XFA_CHECK(task != nullptr);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    XFA_CHECK(!stopping_) << "submit on a stopping ThreadPool";
    queue_.push_back(std::move(task));
  }
  ready_.notify_one();
}

bool ThreadPool::run_pending_task() {
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  execute(std::move(task));
  return true;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    execute(std::move(task));
  }
}

void ThreadPool::execute(std::function<void()> task) {
  const auto wall_start = std::chrono::steady_clock::now();
  const std::uint64_t cpu_start = thread_cpu_ns();
  task();
  const std::uint64_t cpu_end = thread_cpu_ns();
  const auto wall_end = std::chrono::steady_clock::now();
  tasks_executed_.fetch_add(1, std::memory_order_relaxed);
  task_wall_ns_.fetch_add(
      static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(wall_end -
                                                               wall_start)
              .count()),
      std::memory_order_relaxed);
  task_cpu_ns_.fetch_add(cpu_end - cpu_start, std::memory_order_relaxed);
}

ExecStats ThreadPool::stats() const {
  ExecStats stats;
  stats.tasks_executed = tasks_executed_.load(std::memory_order_relaxed);
  stats.task_wall_seconds =
      static_cast<double>(task_wall_ns_.load(std::memory_order_relaxed)) *
      1e-9;
  stats.task_cpu_seconds =
      static_cast<double>(task_cpu_ns_.load(std::memory_order_relaxed)) * 1e-9;
  return stats;
}

namespace {

std::unique_ptr<ThreadPool>& shared_pool_slot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}

std::mutex& shared_pool_mutex() {
  static std::mutex mutex;
  return mutex;
}

}  // namespace

ThreadPool& shared_pool() {
  std::lock_guard<std::mutex> lock(shared_pool_mutex());
  std::unique_ptr<ThreadPool>& pool = shared_pool_slot();
  if (pool == nullptr) pool = std::make_unique<ThreadPool>();
  return *pool;
}

void resize_shared_pool(std::size_t threads) {
  std::lock_guard<std::mutex> lock(shared_pool_mutex());
  std::unique_ptr<ThreadPool>& pool = shared_pool_slot();
  if (pool != nullptr && pool->size() == resolve_thread_count(threads)) return;
  pool.reset();  // join the old workers before the new pool spins up
  pool = std::make_unique<ThreadPool>(threads);
}

}  // namespace xfa
