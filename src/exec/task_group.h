// Structured task groups over a ThreadPool.
//
// A TaskGroup owns a batch of Status-returning tasks. The first task that
// returns a hard error cancels the group: tasks not yet started are skipped
// (their callables never run), already-running tasks finish, and wait()
// reports that first error. wait() drains the pool cooperatively, so groups
// nest to any depth without deadlocking — a pool task may open its own group
// and wait on it.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>

#include "common/status.h"
#include "exec/thread_pool.h"

namespace xfa {

class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool& pool) : pool_(pool) {}
  /// Joins outstanding tasks; a group must never outlive work it scheduled.
  ~TaskGroup() { wait(); }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Schedules `task` on the pool. After the group has failed, submissions
  /// are dropped (structured cancellation extends to late submitters).
  void submit(std::function<Status()> task);

  /// True once any task has returned a non-ok Status.
  bool cancelled() const;

  /// Blocks until every scheduled task has finished or been skipped,
  /// cooperatively running queued tasks on the calling thread. Returns the
  /// first hard error (by completion time), or Ok. Resets the group's error
  /// state so the group can be reused for another batch.
  Status wait();

 private:
  ThreadPool& pool_;
  mutable std::mutex mutex_;
  std::condition_variable done_;
  std::size_t pending_ = 0;
  bool failed_ = false;
  Status first_error_;
};

}  // namespace xfa
