// The shared work-queue execution layer (the "ExperimentEngine" substrate).
//
// One fixed set of worker threads drains a FIFO task queue. There is no work
// stealing — determinism comes from *where results land* (callers write into
// pre-sized slots indexed by task id), not from execution order, so a plain
// shared queue is enough and keeps the scheduling model easy to reason
// about.
//
// Nested parallelism is deadlock-free by construction: any thread that has
// to wait for tasks (TaskGroup::wait, parallel_for) cooperatively drains the
// queue via run_pending_task() instead of blocking, so a worker that spawns
// sub-tasks executes them itself when no other worker is free.
//
// Every executed task is timed (wall clock and, on POSIX, per-thread CPU
// time) into the pool's ExecStats counters — the raw material for bench
// drivers reporting scheduling efficiency.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace xfa {

/// Cumulative per-task execution counters (monotone over a pool's life).
struct ExecStats {
  std::uint64_t tasks_executed = 0;
  double task_wall_seconds = 0;  ///< summed wall time across tasks
  double task_cpu_seconds = 0;   ///< summed per-thread CPU time (0 if unsupported)
};

class ThreadPool {
 public:
  /// `threads` = 0 resolves to $XFA_THREADS, then hardware concurrency
  /// (minimum 1). A pool of size 1 still runs tasks on its single worker
  /// (plus any cooperatively-waiting caller).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task. Tasks must not throw (the tree builds without
  /// exception recovery; contract violations abort via XFA_CHECK).
  void submit(std::function<void()> task);

  /// Enqueues a callable and returns a future for its result. Prefer
  /// TaskGroup / parallel_for inside pool tasks: future::get() blocks
  /// without draining the queue and can deadlock a fully-busy pool.
  template <typename F>
  auto async(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    submit([task] { (*task)(); });
    return future;
  }

  /// Runs one queued task on the calling thread, if any is pending.
  /// Returns false when the queue was empty. This is the cooperative-wait
  /// primitive: blocked waiters make progress instead of holding a thread.
  bool run_pending_task();

  /// Snapshot of the cumulative task counters.
  ExecStats stats() const;

 private:
  void worker_loop();
  /// Dequeued-task execution with timing instrumentation.
  void execute(std::function<void()> task);

  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;

  std::atomic<std::uint64_t> tasks_executed_{0};
  std::atomic<std::uint64_t> task_wall_ns_{0};
  std::atomic<std::uint64_t> task_cpu_ns_{0};
};

/// The process-wide pool every subsystem shares (model training, scenario
/// gathering, bench grids). Sized from $XFA_THREADS / hardware concurrency
/// on first use; resize_shared_pool() re-creates it (bench drivers honoring
/// --threads=N; only safe while no tasks are in flight).
ThreadPool& shared_pool();
void resize_shared_pool(std::size_t threads);

}  // namespace xfa
