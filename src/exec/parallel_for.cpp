#include "exec/parallel_for.h"

#include <algorithm>

#include "exec/task_group.h"

namespace xfa {

void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (n == 1) {
    body(0);
    return;
  }
  // A few blocks per worker smooths uneven task costs (sub-model fits vary
  // with column cardinality) without drowning the queue in tiny tasks.
  const std::size_t blocks = std::min(n, std::max<std::size_t>(pool.size(), 1) * 4);
  const std::size_t chunk = (n + blocks - 1) / blocks;
  TaskGroup group(pool);
  for (std::size_t begin = 0; begin < n; begin += chunk) {
    const std::size_t end = std::min(begin + chunk, n);
    group.submit([&body, begin, end] {
      for (std::size_t i = begin; i < end; ++i) body(i);
      return Status::Ok();
    });
  }
  group.wait();  // bodies return no Status; errors abort via XFA_CHECK
}

}  // namespace xfa
