#include "transport/cbr.h"

#include "common/check.h"

namespace xfa {

CbrSink::CbrSink(Node& node, std::uint32_t flow_id) {
  node.register_sink(flow_id, this);
}

void CbrSink::deliver(const Packet& pkt) {
  (void)pkt;
  ++received_;
}

CbrSource::CbrSource(Node& node, NodeId dst, std::uint32_t flow_id,
                     double rate_pps, std::uint32_t packet_bytes,
                     SimTime start, SimTime stop)
    : node_(node),
      dst_(dst),
      flow_id_(flow_id),
      interval_(1.0 / rate_pps),
      packet_bytes_(packet_bytes),
      stop_(stop),
      rng_(node.sim().fork_rng()) {
  XFA_CHECK_GT(rate_pps, 0);
  node_.sim().at(start, [this] { send_next(); });
}

void CbrSource::send_next() {
  if (node_.sim().now() >= stop_) return;
  node_.send_data(dst_, flow_id_, next_seq_++, packet_bytes_,
                  /*is_ack=*/false);
  ++sent_;
  // Small jitter keeps independent sources from phase-locking.
  const SimTime next = interval_ * rng_.uniform(0.98, 1.02);
  node_.sim().after(next, [this] { send_next(); });
}

}  // namespace xfa
