// Simplified TCP (Tahoe/Reno flavour) over the MANET, the ns-2 Agent/TCP +
// FTP equivalent: an infinite bulk transfer with slow start, congestion
// avoidance, fast retransmit on duplicate ACKs and RTO backoff.
//
// Bit-level fidelity (SACK, window scaling, delayed ACK timers) is out of
// scope: what the IDS features see is ACK-clocked bursty traffic that reacts
// to route breakage — which this reproduces.
#pragma once

#include <cstdint>
#include <memory>
#include <set>

#include "net/node.h"
#include "sim/simulator.h"

namespace xfa {

struct TcpConfig {
  std::uint32_t segment_bytes = 512;
  std::uint32_t ack_bytes = 64;
  double initial_cwnd = 1.0;
  double max_cwnd = 8.0;        // keeps event counts civil over 10^4 s runs
  double initial_ssthresh = 8.0;
  SimTime initial_rto = 2.0;
  SimTime max_rto = 60.0;
  int dupack_threshold = 3;
  // Application data becomes available at this rate (telnet-style source).
  // Keeps a 100-connection, 10^4-second scenario tractable while preserving
  // what the IDS features see: ACK-clocked traffic that reacts to route
  // breakage. Matches the paper's "traffic rate is 0.25" per connection.
  double app_rate_pps = 0.25;
};

/// Receiver side: cumulative ACKs, out-of-order buffering.
class TcpSink final : public TransportSink {
 public:
  /// Registers on `node` for `flow_id`; ACKs travel back to `peer`.
  TcpSink(Node& node, std::uint32_t flow_id, NodeId peer,
          const TcpConfig& config = {});

  void deliver(const Packet& pkt) override;

  std::uint32_t next_expected() const { return rcv_next_; }
  std::uint64_t segments_received() const { return received_; }

 private:
  Node& node_;
  std::uint32_t flow_id_;
  NodeId peer_;
  TcpConfig config_;
  std::uint32_t rcv_next_ = 0;
  std::set<std::uint32_t> out_of_order_;
  std::uint64_t received_ = 0;
};

/// Sender side: paced application data, window-based delivery.
class TcpSource final : public TransportSink {
 public:
  TcpSource(Node& node, NodeId dst, std::uint32_t flow_id, SimTime start,
            const TcpConfig& config = {});

  /// ACKs are delivered here (registered on the source's own node).
  void deliver(const Packet& pkt) override;

  std::uint64_t segments_sent() const { return sent_; }
  std::uint32_t snd_una() const { return snd_una_; }
  double cwnd() const { return cwnd_; }

 private:
  void try_send();
  void arm_rto();
  void on_rto(std::uint64_t epoch);
  void retransmit_una();

  Node& node_;
  NodeId dst_;
  std::uint32_t flow_id_;
  TcpConfig config_;

  std::uint32_t snd_una_ = 0;    // oldest unacknowledged segment
  std::uint32_t snd_next_ = 0;   // next new segment to send
  std::uint32_t available_ = 0;  // segments produced by the application
  std::unique_ptr<PeriodicTimer> app_timer_;
  double cwnd_;
  double ssthresh_;
  SimTime rto_;
  int dupacks_ = 0;
  std::uint64_t rto_epoch_ = 0;  // invalidates stale timers
  bool rto_armed_ = false;
  std::uint64_t sent_ = 0;
};

}  // namespace xfa
