#include "transport/tcp.h"

#include <algorithm>

namespace xfa {

TcpSink::TcpSink(Node& node, std::uint32_t flow_id, NodeId peer,
                 const TcpConfig& config)
    : node_(node), flow_id_(flow_id), peer_(peer), config_(config) {
  node_.register_sink(flow_id_, this);
}

void TcpSink::deliver(const Packet& pkt) {
  if (pkt.is_transport_ack) return;  // not expected at the sink
  ++received_;
  if (pkt.seq == rcv_next_) {
    ++rcv_next_;
    // Drain any contiguous out-of-order segments.
    auto it = out_of_order_.begin();
    while (it != out_of_order_.end() && *it == rcv_next_) {
      ++rcv_next_;
      it = out_of_order_.erase(it);
    }
  } else if (pkt.seq > rcv_next_) {
    out_of_order_.insert(pkt.seq);
  }
  // Cumulative ACK carries the next expected sequence number.
  node_.send_data(peer_, flow_id_, rcv_next_, config_.ack_bytes,
                  /*is_ack=*/true);
}

TcpSource::TcpSource(Node& node, NodeId dst, std::uint32_t flow_id,
                     SimTime start, const TcpConfig& config)
    : node_(node),
      dst_(dst),
      flow_id_(flow_id),
      config_(config),
      cwnd_(config.initial_cwnd),
      ssthresh_(config.initial_ssthresh),
      rto_(config.initial_rto) {
  node_.register_sink(flow_id_, this);
  node_.sim().at(start, [this] {
    app_timer_ = std::make_unique<PeriodicTimer>(
        node_.sim(), 1.0 / config_.app_rate_pps, [this] {
          ++available_;
          try_send();
        });
    app_timer_->start(0);
  });
}

void TcpSource::try_send() {
  bool sent_any = false;
  while (snd_next_ < available_ &&
         static_cast<double>(snd_next_ - snd_una_) <
             std::min(cwnd_, config_.max_cwnd)) {
    node_.send_data(dst_, flow_id_, snd_next_++, config_.segment_bytes,
                    /*is_ack=*/false);
    ++sent_;
    sent_any = true;
  }
  if (sent_any && !rto_armed_) arm_rto();
}

void TcpSource::arm_rto() {
  rto_armed_ = true;
  const std::uint64_t epoch = ++rto_epoch_;
  node_.sim().after(rto_, [this, epoch] { on_rto(epoch); });
}

void TcpSource::on_rto(std::uint64_t epoch) {
  if (epoch != rto_epoch_) return;  // stale timer
  rto_armed_ = false;
  if (snd_una_ == snd_next_) return;  // everything acknowledged meanwhile
  // Timeout: multiplicative backoff, shrink to one segment, retransmit.
  ssthresh_ = std::max(cwnd_ / 2.0, 2.0);
  cwnd_ = 1.0;
  rto_ = std::min(rto_ * 2.0, config_.max_rto);
  dupacks_ = 0;
  retransmit_una();
  arm_rto();
}

void TcpSource::retransmit_una() {
  node_.send_data(dst_, flow_id_, snd_una_, config_.segment_bytes,
                  /*is_ack=*/false);
  ++sent_;
}

void TcpSource::deliver(const Packet& pkt) {
  if (!pkt.is_transport_ack) return;  // not expected at the source
  const std::uint32_t ack = pkt.seq;
  if (ack > snd_una_) {
    snd_una_ = ack;
    dupacks_ = 0;
    rto_ = config_.initial_rto;  // fresh progress resets backoff
    if (cwnd_ < ssthresh_) {
      cwnd_ += 1.0;  // slow start
    } else {
      cwnd_ += 1.0 / cwnd_;  // congestion avoidance
    }
    // Re-arm the timer for remaining in-flight data.
    rto_epoch_++;
    rto_armed_ = false;
    if (snd_una_ != snd_next_) arm_rto();
    try_send();
  } else if (ack == snd_una_ && snd_una_ != snd_next_) {
    if (++dupacks_ == config_.dupack_threshold) {
      // Fast retransmit / recovery (Reno-flavoured).
      ssthresh_ = std::max(cwnd_ / 2.0, 2.0);
      cwnd_ = ssthresh_;
      dupacks_ = 0;
      retransmit_una();
    }
  }
}

}  // namespace xfa
