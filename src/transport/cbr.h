// Constant bit rate source/sink over UDP semantics (ns-2's Agent/UDP + CBR).
#pragma once

#include <cstdint>

#include "net/node.h"
#include "sim/rng.h"
#include "sim/simulator.h"

namespace xfa {

/// Counts in-order delivery at the destination.
class CbrSink final : public TransportSink {
 public:
  /// Registers itself on `node` for `flow_id`.
  CbrSink(Node& node, std::uint32_t flow_id);

  void deliver(const Packet& pkt) override;

  std::uint64_t packets_received() const { return received_; }

 private:
  std::uint64_t received_ = 0;
};

/// Fires a fixed-size packet every 1/rate seconds from `start` to `stop`.
class CbrSource {
 public:
  CbrSource(Node& node, NodeId dst, std::uint32_t flow_id, double rate_pps,
            std::uint32_t packet_bytes, SimTime start, SimTime stop);

  std::uint64_t packets_sent() const { return sent_; }

 private:
  void send_next();

  Node& node_;
  NodeId dst_;
  std::uint32_t flow_id_;
  double interval_;
  std::uint32_t packet_bytes_;
  SimTime stop_;
  Rng rng_;
  std::uint32_t next_seq_ = 0;
  std::uint64_t sent_ = 0;
};

}  // namespace xfa
