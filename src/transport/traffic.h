// Connection pattern generation (the cbrgen.tcl equivalent).
//
// Produces the random source/destination pairs and staggered start times the
// paper's setup describes ("the maximum number of connections is set to be
// 100, traffic rate is 0.25").
#pragma once

#include <cstdint>
#include <vector>

#include "sim/rng.h"
#include "sim/types.h"

namespace xfa {

struct Flow {
  std::uint32_t flow_id = 0;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  SimTime start = 0;
};

struct TrafficConfig {
  std::size_t max_connections = 100;
  double rate_pps = 0.25;          // packets per second per connection (CBR)
  std::uint32_t packet_bytes = 512;
  SimTime start_window = 180.0;    // starts staggered uniformly over this
};

/// Draws up to `max_connections` distinct (src, dst) pairs among `node_count`
/// nodes. A node may appear in several flows; src != dst always.
std::vector<Flow> generate_connection_pattern(std::size_t node_count,
                                              const TrafficConfig& config,
                                              Rng& rng);

}  // namespace xfa
