#include "transport/traffic.h"

#include <set>

namespace xfa {

std::vector<Flow> generate_connection_pattern(std::size_t node_count,
                                              const TrafficConfig& config,
                                              Rng& rng) {
  std::vector<Flow> flows;
  if (node_count < 2) return flows;

  // At most one flow per ordered pair; with few nodes the pair space itself
  // bounds the number of connections.
  const std::size_t pair_space = node_count * (node_count - 1);
  const std::size_t target = std::min(config.max_connections, pair_space);

  std::set<std::pair<NodeId, NodeId>> used;
  std::uint32_t next_id = 1;
  while (flows.size() < target) {
    const NodeId src = static_cast<NodeId>(rng.uniform_int(node_count));
    NodeId dst = static_cast<NodeId>(rng.uniform_int(node_count - 1));
    if (dst >= src) ++dst;
    if (!used.emplace(src, dst).second) continue;
    Flow flow;
    flow.flow_id = next_id++;
    flow.src = src;
    flow.dst = dst;
    flow.start = rng.uniform(0, config.start_window);
    flows.push_back(flow);
  }
  return flows;
}

}  // namespace xfa
