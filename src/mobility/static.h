// Static node placement: the mobility model for unit tests and for
// fixed-topology demos (e.g. the paper's 2-node illustrative network).
// Positions can be changed mid-simulation to break or create links
// deterministically.
#pragma once

#include <vector>

#include "common/check.h"
#include "mobility/waypoint.h"

namespace xfa {

class StaticPositions final : public MobilityModel {
 public:
  explicit StaticPositions(std::vector<Vec2> positions)
      : positions_(std::move(positions)) {}

  /// Convenience: n nodes on a horizontal line, `spacing` metres apart.
  static StaticPositions line(std::size_t n, double spacing) {
    std::vector<Vec2> positions;
    positions.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
      positions.push_back({spacing * static_cast<double>(i), 0.0});
    return StaticPositions(std::move(positions));
  }

  Vec2 position(NodeId node, SimTime) const override {
    XFA_CHECK(node >= 0 && static_cast<std::size_t>(node) < positions_.size());
    return positions_[static_cast<std::size_t>(node)];
  }

  double speed(NodeId, SimTime) const override { return 0.0; }

  /// Teleports a node (e.g. out of range, to sever a link).
  void move(NodeId node, Vec2 to) {
    XFA_CHECK(node >= 0 && static_cast<std::size_t>(node) < positions_.size());
    positions_[static_cast<std::size_t>(node)] = to;
  }

 private:
  std::vector<Vec2> positions_;
};

}  // namespace xfa
