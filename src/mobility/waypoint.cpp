#include "mobility/waypoint.h"

#include <algorithm>

#include "common/check.h"

namespace xfa {

RandomWaypointMobility::RandomWaypointMobility(std::size_t node_count,
                                               const MobilityConfig& config,
                                               Rng rng)
    : config_(config), rng_(rng) {
  XFA_CHECK(config.max_speed > 0 && config.min_speed > 0);
  XFA_CHECK_LE(config.min_speed, config.max_speed);
  nodes_.reserve(node_count);
  node_rngs_.reserve(node_count);
  last_query_.resize(node_count);
  for (std::size_t i = 0; i < node_count; ++i) {
    node_rngs_.push_back(rng_.fork());
    Segment s;
    s.start_time = 0;
    s.start = {node_rngs_.back().uniform(0, config_.field_width),
               node_rngs_.back().uniform(0, config_.field_height)};
    s.dest = s.start;
    s.speed = 0;
    s.end_time = config_.pause_time;  // initial pause, then start moving
    nodes_.push_back(s);
  }
}

RandomWaypointMobility::Segment RandomWaypointMobility::next_segment(
    std::size_t node, const Segment& prev) const {
  Rng& rng = node_rngs_[node];
  Segment s;
  s.start_time = prev.end_time;
  s.start = prev.dest;
  if (prev.speed > 0) {
    // Just arrived: pause in place.
    s.dest = s.start;
    s.speed = 0;
    s.end_time = s.start_time + config_.pause_time;
  } else {
    // Pick a new waypoint and travel there.
    s.dest = {rng.uniform(0, config_.field_width),
              rng.uniform(0, config_.field_height)};
    s.speed = rng.uniform(config_.min_speed, config_.max_speed);
    s.length = distance(s.start, s.dest);
    s.end_time = s.start_time + (s.length > 0 ? s.length / s.speed : 0);
  }
  return s;
}

void RandomWaypointMobility::advance(std::size_t node, SimTime t) const {
  Segment& s = nodes_[node];
  while (s.end_time < t) s = next_segment(node, s);
}

Vec2 RandomWaypointMobility::position(NodeId node, SimTime t) const {
  XFA_CHECK(node >= 0 && static_cast<std::size_t>(node) < nodes_.size());
  const auto index = static_cast<std::size_t>(node);
  CachedQuery& cached = last_query_[index];
  if (cached.t == t) return cached.position;
  advance(index, t);
  const Segment& s = nodes_[index];
  // Queries are expected to be (per node) non-decreasing in time; a query
  // earlier than the current segment is clamped to the segment start.
  const SimTime ct = std::clamp(t, s.start_time, s.end_time);
  Vec2 pos = s.start;
  if (s.speed != 0) {
    const double total = s.length;
    if (total != 0) {
      const double frac = s.speed * (ct - s.start_time) / total;
      pos = s.start + (s.dest - s.start) * std::min(frac, 1.0);
    }
  }
  cached = CachedQuery{t, pos};
  return pos;
}

double RandomWaypointMobility::speed(NodeId node, SimTime t) const {
  XFA_CHECK(node >= 0 && static_cast<std::size_t>(node) < nodes_.size());
  advance(static_cast<std::size_t>(node), t);
  return nodes_[static_cast<std::size_t>(node)].speed;
}

}  // namespace xfa
