// Minimal 2-D vector math for node positions on the simulation field.
#pragma once

#include <cmath>

namespace xfa {

struct Vec2 {
  double x = 0;
  double y = 0;

  friend Vec2 operator+(Vec2 a, Vec2 b) { return {a.x + b.x, a.y + b.y}; }
  friend Vec2 operator-(Vec2 a, Vec2 b) { return {a.x - b.x, a.y - b.y}; }
  friend Vec2 operator*(Vec2 a, double s) { return {a.x * s, a.y * s}; }
  friend Vec2 operator*(double s, Vec2 a) { return a * s; }
  friend bool operator==(Vec2 a, Vec2 b) { return a.x == b.x && a.y == b.y; }

  double norm() const { return std::hypot(x, y); }

  /// Squared length; the hot paths compare squared distances against a
  /// squared radius to avoid the hypot/sqrt.
  double norm2() const { return x * x + y * y; }
};

inline double distance(Vec2 a, Vec2 b) { return (a - b).norm(); }

inline double distance2(Vec2 a, Vec2 b) { return (a - b).norm2(); }

}  // namespace xfa
