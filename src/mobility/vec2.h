// Minimal 2-D vector math for node positions on the simulation field.
#pragma once

#include <cmath>

namespace xfa {

struct Vec2 {
  double x = 0;
  double y = 0;

  friend Vec2 operator+(Vec2 a, Vec2 b) { return {a.x + b.x, a.y + b.y}; }
  friend Vec2 operator-(Vec2 a, Vec2 b) { return {a.x - b.x, a.y - b.y}; }
  friend Vec2 operator*(Vec2 a, double s) { return {a.x * s, a.y * s}; }
  friend Vec2 operator*(double s, Vec2 a) { return a * s; }
  friend bool operator==(Vec2 a, Vec2 b) { return a.x == b.x && a.y == b.y; }

  double norm() const { return std::hypot(x, y); }
};

inline double distance(Vec2 a, Vec2 b) { return (a - b).norm(); }

}  // namespace xfa
