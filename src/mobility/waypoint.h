// Random waypoint mobility model (the ns-2 "setdest" equivalent).
//
// Each node repeatedly: picks a uniform random destination inside the field,
// moves toward it in a straight line at a uniform random speed in
// (0, max_speed], then pauses for `pause_time` seconds. Positions are
// evaluated lazily from the current motion segment, so queries at arbitrary
// times are exact and O(1).
#pragma once

#include <cstddef>
#include <vector>

#include "mobility/vec2.h"
#include "sim/rng.h"
#include "sim/types.h"

namespace xfa {

/// Position/velocity source for the channel. Implementations must tolerate
/// (per node) non-decreasing time queries.
class MobilityModel {
 public:
  virtual ~MobilityModel() = default;
  virtual Vec2 position(NodeId node, SimTime t) const = 0;
  virtual double speed(NodeId node, SimTime t) const = 0;
};

struct MobilityConfig {
  double field_width = 1000.0;   // metres (paper: 1000 x 1000 topology)
  double field_height = 1000.0;  // metres
  double max_speed = 20.0;       // m/s (paper: 20.0 m/s)
  double min_speed = 0.1;        // m/s; avoids the RWP zero-speed pathologies
  SimTime pause_time = 10.0;     // s   (paper: 10 s)
};

/// Mobility state for the whole network. Owns every node's motion.
class RandomWaypointMobility final : public MobilityModel {
 public:
  RandomWaypointMobility(std::size_t node_count, const MobilityConfig& config,
                         Rng rng);

  std::size_t node_count() const { return nodes_.size(); }

  /// Position of `node` at time `t`. `t` must be monotonically reasonable
  /// (any t >= 0 works; segments are advanced on demand).
  Vec2 position(NodeId node, SimTime t) const override;

  /// Instantaneous speed (absolute velocity, m/s) of `node` at time `t`.
  /// Zero while pausing.
  double speed(NodeId node, SimTime t) const override;

  const MobilityConfig& config() const { return config_; }

 private:
  struct Segment {
    SimTime start_time = 0;
    Vec2 start;
    Vec2 dest;
    double speed = 0;        // m/s; 0 == pausing
    SimTime end_time = 0;    // when this segment completes
    // distance(start, dest), computed once at segment creation so the
    // per-query interpolation needs no hypot. Same double value as the
    // removed recomputation, so interpolated positions are bit-identical.
    double length = 0;
  };
  // Memoized last position query. Valid because per-node queries are
  // non-decreasing in time: a repeat of the cached time cannot have been
  // preceded by a later query, so the cached value is still the trajectory's
  // value at that time. The channel hits this cache hard — one transmit
  // evaluates the sender plus every candidate receiver at the same instant,
  // and the neighbor grid re-confirms candidates it just positioned.
  struct CachedQuery {
    SimTime t = -1;  // sentinel: queries are at t >= 0
    Vec2 position;
  };

  // Advances the node's segment chain up to time t (const-lazy: mutable).
  void advance(std::size_t node, SimTime t) const;
  Segment next_segment(std::size_t node, const Segment& prev) const;

  MobilityConfig config_;
  mutable Rng rng_;
  // One RNG per node so each node's trajectory is independent of the order in
  // which other nodes' positions are queried.
  mutable std::vector<Rng> node_rngs_;
  mutable std::vector<Segment> nodes_;
  mutable std::vector<CachedQuery> last_query_;
};

}  // namespace xfa
