// Per-node audit trail: the MANET IDS's only data source.
//
// The observation vocabulary (packet types, flow directions, route events)
// and the AuditSink interface live in sim/observe.h so the network layer can
// emit observations without depending on this module. AuditLog is the
// concrete sink: append-only, time-stamped streams consumed post-run by the
// feature extractor — mirroring how an ns-2 trace file is protocol-agnostic
// text.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "sim/observe.h"
#include "sim/types.h"

namespace xfa {

/// Append-only, per-node audit log. Timestamps within each stream are
/// non-decreasing because the simulation clock is monotonic.
class AuditLog final : public AuditSink {
 public:
  /// Records one packet observation. Callers log the specific control type
  /// (e.g. RouteRequest); the RouteAll aggregate is maintained automatically
  /// for control packets. Pass RouteAll directly for encapsulated data at
  /// intermediate hops.
  void record_packet(SimTime t, AuditPacketType type,
                     FlowDirection dir) override;

  /// Records a route-fabric event.
  void record_route_event(SimTime t, RouteEventKind kind) override;

  /// Timestamps of all packets observed for one (type, direction) stream.
  const std::vector<SimTime>& packet_times(AuditPacketType type,
                                           FlowDirection dir) const;

  /// Timestamps of all route events of one kind.
  const std::vector<SimTime>& route_event_times(RouteEventKind kind) const;

  std::size_t total_packet_records() const { return total_packets_; }
  std::size_t total_route_events() const { return total_route_events_; }

  void clear();

 private:
  std::array<std::array<std::vector<SimTime>, kFlowDirectionCount>,
             kAuditPacketTypeCount>
      packets_;
  std::array<std::vector<SimTime>, kRouteEventKindCount> route_events_;
  std::size_t total_packets_ = 0;
  std::size_t total_route_events_ = 0;
};

}  // namespace xfa
