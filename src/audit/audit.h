// Per-node audit trail: the MANET IDS's only data source.
//
// The paper's premise is that a MANET node can observe only local activity:
// packets it sends/receives/forwards/drops, and its own routing-fabric events
// (route add/removal/find/notice/repair). The AuditLog records exactly that,
// time-stamped, and is consumed post-run by the feature extractor.
//
// This module deliberately has no dependency on the packet/routing code: the
// node maps its wire-level packet kinds onto these audit categories, mirroring
// how an ns-2 trace file is protocol-agnostic text.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "sim/types.h"

namespace xfa {

/// Packet-type dimension of Table 5. `RouteAll` aggregates every packet that
/// carries a routing header: all control messages plus encapsulated data at
/// intermediate hops (the paper: "all activities (including forwarding and
/// dropping) during the transmission process only involve 'route' packets").
enum class AuditPacketType : std::uint8_t {
  Data = 0,
  RouteAll = 1,
  RouteRequest = 2,
  RouteReply = 3,
  RouteError = 4,
  Hello = 5,
};
inline constexpr std::size_t kAuditPacketTypeCount = 6;

/// Flow-direction dimension of Table 5.
enum class FlowDirection : std::uint8_t {
  Received = 0,   // observed at destinations
  Sent = 1,       // observed at sources
  Forwarded = 2,  // observed at intermediate routers
  Dropped = 3,    // observed at routers with no route (or malicious drop)
};
inline constexpr std::size_t kFlowDirectionCount = 4;

/// Route-fabric events of Table 4 (Feature Set I).
enum class RouteEventKind : std::uint8_t {
  Add = 0,     // route newly added by route discovery
  Remove = 1,  // stale route being removed
  Find = 2,    // route found in cache, no re-discovery needed
  Notice = 3,  // route eavesdropped / learned from overheard traffic
  Repair = 4,  // broken route currently under repair
};
inline constexpr std::size_t kRouteEventKindCount = 5;

const char* to_string(AuditPacketType type);
const char* to_string(FlowDirection dir);
const char* to_string(RouteEventKind kind);

/// Append-only, per-node audit log. Timestamps within each stream are
/// non-decreasing because the simulation clock is monotonic.
class AuditLog {
 public:
  /// Records one packet observation. Callers log the specific control type
  /// (e.g. RouteRequest); the RouteAll aggregate is maintained automatically
  /// for control packets. Pass RouteAll directly for encapsulated data at
  /// intermediate hops.
  void record_packet(SimTime t, AuditPacketType type, FlowDirection dir);

  /// Records a route-fabric event.
  void record_route_event(SimTime t, RouteEventKind kind);

  /// Timestamps of all packets observed for one (type, direction) stream.
  const std::vector<SimTime>& packet_times(AuditPacketType type,
                                           FlowDirection dir) const;

  /// Timestamps of all route events of one kind.
  const std::vector<SimTime>& route_event_times(RouteEventKind kind) const;

  std::size_t total_packet_records() const { return total_packets_; }
  std::size_t total_route_events() const { return total_route_events_; }

  void clear();

 private:
  std::array<std::array<std::vector<SimTime>, kFlowDirectionCount>,
             kAuditPacketTypeCount>
      packets_;
  std::array<std::vector<SimTime>, kRouteEventKindCount> route_events_;
  std::size_t total_packets_ = 0;
  std::size_t total_route_events_ = 0;
};

}  // namespace xfa
