#include "audit/audit.h"

#include "common/check.h"

namespace xfa {

void AuditLog::record_packet(SimTime t, AuditPacketType type,
                             FlowDirection dir) {
  // The paper's feature set excludes data x {forwarded, dropped}: data in
  // flight at intermediate hops is always encapsulated in a route packet.
  XFA_CHECK(!(type == AuditPacketType::Data &&
              (dir == FlowDirection::Forwarded ||
               dir == FlowDirection::Dropped)));
  auto& stream =
      packets_[static_cast<std::size_t>(type)][static_cast<std::size_t>(dir)];
  XFA_CHECK(stream.empty() || stream.back() <= t);
  stream.push_back(t);
  ++total_packets_;
  // Maintain the route(all) aggregate for specific control types.
  if (type != AuditPacketType::Data && type != AuditPacketType::RouteAll) {
    record_packet(t, AuditPacketType::RouteAll, dir);
    --total_packets_;  // count the physical observation once
  }
}

void AuditLog::record_route_event(SimTime t, RouteEventKind kind) {
  auto& stream = route_events_[static_cast<std::size_t>(kind)];
  XFA_CHECK(stream.empty() || stream.back() <= t);
  stream.push_back(t);
  ++total_route_events_;
}

const std::vector<SimTime>& AuditLog::packet_times(AuditPacketType type,
                                                   FlowDirection dir) const {
  return packets_[static_cast<std::size_t>(type)]
                 [static_cast<std::size_t>(dir)];
}

const std::vector<SimTime>& AuditLog::route_event_times(
    RouteEventKind kind) const {
  return route_events_[static_cast<std::size_t>(kind)];
}

void AuditLog::clear() {
  for (auto& by_dir : packets_)
    for (auto& stream : by_dir) stream.clear();
  for (auto& stream : route_events_) stream.clear();
  total_packets_ = 0;
  total_route_events_ = 0;
}

}  // namespace xfa
