#include "routing/aodv/aodv.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "common/check.h"

namespace xfa {

Aodv::Aodv(Node& node, const AodvConfig& config)
    : node_(node), config_(config), rng_(node.sim().fork_rng()) {}

void Aodv::start() {
  hello_timer_ = std::make_unique<PeriodicTimer>(
      node_.sim(), config_.hello_interval, [this] {
        Packet hello;
        hello.kind = PacketKind::Hello;
        hello.src = node_.id();
        hello.dst = kBroadcast;
        hello.ttl = 1;
        hello.size_bytes = kControlPacketBytes;
        hello.header = AodvHelloHeader{++hello_seqno_};
        node_.log_packet(AuditPacketType::Hello, FlowDirection::Sent);
        ++stats_.control_originated;
        node_.channel().transmit(node_.id(), std::move(hello), kBroadcast);
      });
  // Stagger beacons across nodes to avoid synchronized bursts.
  hello_timer_->start(rng_.uniform(0, config_.hello_interval));

  purge_timer_ = std::make_unique<PeriodicTimer>(
      node_.sim(), config_.purge_interval, [this] { purge_tick(); });
  purge_timer_->start(rng_.uniform(0, config_.purge_interval));
}

void Aodv::log_route_update(RouteUpdate update, bool learned_passively) {
  if (update == RouteUpdate::Added) {
    node_.log_route_event(learned_passively ? RouteEventKind::Notice
                                            : RouteEventKind::Add);
  }
}

double Aodv::average_route_length() const {
  return table_.average_hop_count(node_.sim().now());
}

std::size_t Aodv::route_count() const {
  return table_.valid_route_count(node_.sim().now());
}

void Aodv::send_data(Packet&& pkt) {
  const SimTime now = node_.sim().now();
  if (const AodvRouteEntry* route = table_.lookup(pkt.dst, now)) {
    node_.log_route_event(RouteEventKind::Find);
    forward_data(std::move(pkt), *route);
    return;
  }
  const NodeId dst = pkt.dst;
  buffer_.push(std::move(pkt));
  if (!pending_discovery_.contains(dst))
    start_discovery(dst, config_.max_rreq_retries, next_attempt_id_++);
}

void Aodv::start_discovery(NodeId dst, int retries_left,
                           std::uint32_t attempt_id) {
  pending_discovery_[dst] = attempt_id;
  ++stats_.discoveries_started;
  ++my_seqno_;

  Packet rreq;
  rreq.kind = PacketKind::RouteRequest;
  rreq.src = node_.id();
  rreq.dst = kBroadcast;
  rreq.ttl = config_.net_diameter_ttl;
  rreq.size_bytes = kControlPacketBytes;
  AodvRreqHeader header;
  header.rreq_id = next_rreq_id_++;
  header.origin = node_.id();
  header.origin_seqno = my_seqno_;
  header.target = dst;
  const AodvRouteEntry* stale = table_.lookup_any(dst);
  header.target_seqno_known = stale != nullptr && stale->seqno_valid;
  header.target_seqno = header.target_seqno_known ? stale->seqno : 0;
  header.hop_count = 0;
  rreq.header = header;
  // Suppress handling our own flood when it is relayed back to us.
  rreq_seen_.seen_before(node_.id(), header.rreq_id, node_.sim().now());

  node_.log_packet(AuditPacketType::RouteRequest, FlowDirection::Sent);
  ++stats_.control_originated;
  node_.channel().transmit(node_.id(), std::move(rreq), kBroadcast);

  const SimTime timeout =
      config_.rreq_retry_timeout *
      static_cast<double>(1 << (config_.max_rreq_retries - retries_left));
  node_.sim().after(timeout, [this, dst, retries_left, attempt_id] {
    const auto it = pending_discovery_.find(dst);
    if (it == pending_discovery_.end() || it->second != attempt_id)
      return;  // answered or superseded
    if (retries_left > 0) {
      start_discovery(dst, retries_left - 1, attempt_id);
      return;
    }
    // Give up: drop everything buffered for this destination.
    pending_discovery_.erase(it);
    ++stats_.discoveries_failed;
    for ([[maybe_unused]] Packet& dropped : buffer_.take(dst)) {
      ++stats_.data_dropped_no_route;
      node_.log_packet(AuditPacketType::RouteAll, FlowDirection::Dropped);
    }
  });
}

void Aodv::receive(PacketPtr pkt, NodeId from) {
  switch (pkt->kind) {
    case PacketKind::RouteRequest:
      node_.log_packet(AuditPacketType::RouteRequest, FlowDirection::Received);
      handle_rreq(*pkt, from);
      break;
    case PacketKind::RouteReply:
      node_.log_packet(AuditPacketType::RouteReply, FlowDirection::Received);
      handle_rrep(*pkt, from);
      break;
    case PacketKind::RouteError:
      node_.log_packet(AuditPacketType::RouteError, FlowDirection::Received);
      handle_rerr(*pkt, from);
      break;
    case PacketKind::Hello:
      node_.log_packet(AuditPacketType::Hello, FlowDirection::Received);
      handle_hello(*pkt, from);
      break;
    case PacketKind::Data:
      handle_data(*pkt, from);
      break;
  }
}

void Aodv::handle_rreq(const Packet& pkt, NodeId from) {
  const SimTime now = node_.sim().now();
  const auto& header = std::get<AodvRreqHeader>(pkt.header);

  // Install/refresh the reverse route to the originator through the sender.
  // This is the state the black hole poisons with a forged max seqno.
  if (header.origin != node_.id()) {
    const RouteUpdate update = table_.update(
        header.origin, from, static_cast<std::uint16_t>(header.hop_count + 1),
        header.origin_seqno, true, now + config_.active_route_timeout, now);
    log_route_update(update, /*learned_passively=*/true);
  }
  neighbor_last_heard_[from] = now;

  if (rreq_seen_.seen_before(header.origin, header.rreq_id, now)) return;
  if (header.origin == node_.id()) return;

  if (header.target == node_.id()) {
    // We are the destination: answer with our own (incremented) seqno.
    if (header.target_seqno_known && header.target_seqno > my_seqno_)
      my_seqno_ = header.target_seqno;
    ++my_seqno_;
    send_rrep(header, from, /*from_cache=*/false, now);
    return;
  }

  // Intermediate reply when we have a fresh-enough valid route.
  const AodvRouteEntry* route = table_.lookup(header.target, now);
  if (route != nullptr && route->seqno_valid &&
      (!header.target_seqno_known || route->seqno >= header.target_seqno)) {
    node_.log_route_event(RouteEventKind::Find);
    send_rrep(header, from, /*from_cache=*/true, now);
    return;
  }

  // Otherwise relay the flood. Copy-on-write: the shared packet stays
  // untouched for the other receivers of this broadcast.
  if (pkt.ttl <= 1) {
    node_.log_packet(AuditPacketType::RouteRequest, FlowDirection::Dropped);
    return;
  }
  Packet relay = pkt;
  --relay.ttl;
  ++std::get<AodvRreqHeader>(relay.header).hop_count;
  node_.log_packet(AuditPacketType::RouteRequest, FlowDirection::Forwarded);
  ++stats_.control_forwarded;
  node_.sim().after(rng_.uniform(0, config_.forward_jitter_s),
                    [this, relay = std::move(relay)]() mutable {
                      node_.channel().transmit(node_.id(), std::move(relay),
                                               kBroadcast);
                    });
}

void Aodv::send_rrep(const AodvRreqHeader& rreq, NodeId reply_to,
                     bool from_cache, SimTime now) {
  AodvRrepHeader reply;
  reply.origin = rreq.origin;
  reply.target = rreq.target;
  if (from_cache) {
    const AodvRouteEntry* route = table_.lookup(rreq.target, now);
    XFA_CHECK_NE(route, nullptr);
    reply.target_seqno = route->seqno;
    reply.hop_count = static_cast<std::uint16_t>(route->hop_count);
    reply.lifetime = route->expiry - now;
  } else {
    reply.target_seqno = my_seqno_;
    reply.hop_count = 0;
    reply.lifetime = config_.active_route_timeout;
  }

  Packet pkt;
  pkt.kind = PacketKind::RouteReply;
  pkt.src = node_.id();
  pkt.dst = rreq.origin;
  pkt.ttl = config_.net_diameter_ttl;
  pkt.size_bytes = kControlPacketBytes;
  pkt.header = reply;
  node_.log_packet(AuditPacketType::RouteReply, FlowDirection::Sent);
  ++stats_.control_originated;
  node_.channel().transmit(node_.id(), std::move(pkt), reply_to);
}

void Aodv::handle_rrep(const Packet& pkt, NodeId from) {
  const SimTime now = node_.sim().now();
  const auto& header = std::get<AodvRrepHeader>(pkt.header);
  neighbor_last_heard_[from] = now;

  // Install/refresh the forward route to the target through the sender.
  const RouteUpdate update = table_.update(
      header.target, from, static_cast<std::uint16_t>(header.hop_count + 1),
      header.target_seqno, true, now + std::max(header.lifetime, 1.0), now);
  log_route_update(update, /*learned_passively=*/false);

  if (header.origin == node_.id()) {
    // Discovery complete.
    if (pending_discovery_.erase(header.target) > 0)
      ++stats_.discoveries_succeeded;
    flush_buffer(header.target);
    return;
  }

  // Relay toward the originator along the reverse route (copy-on-write).
  const AodvRouteEntry* back = table_.lookup(header.origin, now);
  if (back == nullptr || pkt.ttl <= 1) {
    node_.log_packet(AuditPacketType::RouteReply, FlowDirection::Dropped);
    return;
  }
  Packet relay = pkt;
  --relay.ttl;
  ++std::get<AodvRrepHeader>(relay.header).hop_count;
  node_.log_packet(AuditPacketType::RouteReply, FlowDirection::Forwarded);
  ++stats_.control_forwarded;
  node_.channel().transmit(node_.id(), std::move(relay), back->next_hop);
}

void Aodv::handle_rerr(const Packet& pkt, NodeId from) {
  const SimTime now = node_.sim().now();
  const auto& header = std::get<AodvRerrHeader>(pkt.header);

  // Invalidate affected routes that go through the RERR sender and collect
  // the ones we must in turn report upstream.
  std::vector<std::pair<NodeId, SeqNo>> to_propagate;
  for (const auto& [dst, seqno] : header.unreachable) {
    const AodvRouteEntry* route = table_.lookup(dst, now);
    if (route != nullptr && route->next_hop == from) {
      table_.invalidate(dst, now);
      node_.log_route_event(RouteEventKind::Remove);
      to_propagate.emplace_back(dst, seqno);
    }
  }
  if (!to_propagate.empty()) {
    node_.log_packet(AuditPacketType::RouteError, FlowDirection::Forwarded);
    ++stats_.control_forwarded;
    Packet relay;
    relay.kind = PacketKind::RouteError;
    relay.src = node_.id();
    relay.dst = kBroadcast;
    relay.ttl = 1;
    relay.size_bytes = kControlPacketBytes;
    relay.header = AodvRerrHeader{std::move(to_propagate)};
    node_.channel().transmit(node_.id(), std::move(relay), kBroadcast);
  }
}

void Aodv::handle_hello(const Packet& pkt, NodeId from) {
  const SimTime now = node_.sim().now();
  const auto& header = std::get<AodvHelloHeader>(pkt.header);
  neighbor_last_heard_[from] = now;
  const SimTime lifetime =
      config_.allowed_hello_loss * config_.hello_interval;
  const RouteUpdate update =
      table_.update(from, from, 1, header.seqno, true, now + lifetime, now);
  log_route_update(update, /*learned_passively=*/true);
}

void Aodv::handle_data(const Packet& pkt, NodeId from) {
  (void)from;
  const SimTime now = node_.sim().now();
  if (pkt.dst == node_.id()) {
    node_.deliver_to_transport(pkt);
    return;
  }
  // Intermediate hop: the packet is travelling inside routing encapsulation.
  if (node_.should_maliciously_drop(pkt)) {
    ++stats_.data_dropped_malicious;
    node_.log_packet(AuditPacketType::RouteAll, FlowDirection::Dropped);
    return;
  }
  const AodvRouteEntry* route = table_.lookup(pkt.dst, now);
  if (route == nullptr) {
    ++stats_.data_dropped_no_route;
    node_.log_packet(AuditPacketType::RouteAll, FlowDirection::Dropped);
    const AodvRouteEntry* stale = table_.lookup_any(pkt.dst);
    send_rerr({{pkt.dst, stale != nullptr ? stale->seqno : 0}});
    return;
  }
  if (pkt.ttl <= 1) {
    // Routing loop or over-long path: discard.
    ++stats_.data_dropped_no_route;
    node_.log_packet(AuditPacketType::RouteAll, FlowDirection::Dropped);
    return;
  }
  Packet relay = pkt;  // copy-on-write off the shared broadcast handle
  --relay.ttl;
  node_.log_packet(AuditPacketType::RouteAll, FlowDirection::Forwarded);
  ++stats_.data_forwarded;
  forward_data(std::move(relay), *route);
}

void Aodv::forward_data(Packet&& pkt, const AodvRouteEntry& route) {
  table_.refresh_lifetime(route.dst,
                          node_.sim().now() + config_.active_route_timeout);
  node_.channel().transmit(node_.id(), std::move(pkt), route.next_hop);
}

void Aodv::send_rerr(std::vector<std::pair<NodeId, SeqNo>> unreachable) {
  if (unreachable.empty()) return;
  Packet pkt;
  pkt.kind = PacketKind::RouteError;
  pkt.src = node_.id();
  pkt.dst = kBroadcast;
  pkt.ttl = 1;
  pkt.size_bytes = kControlPacketBytes;
  pkt.header = AodvRerrHeader{std::move(unreachable)};
  node_.log_packet(AuditPacketType::RouteError, FlowDirection::Sent);
  ++stats_.control_originated;
  ++stats_.rerr_sent;
  node_.channel().transmit(node_.id(), std::move(pkt), kBroadcast);
}

void Aodv::link_failure(const Packet& pkt, NodeId to) {
  const SimTime now = node_.sim().now();
  neighbor_last_heard_.erase(to);
  auto broken = table_.invalidate_via(to, now);
  for (std::size_t i = 0; i < broken.size(); ++i)
    node_.log_route_event(RouteEventKind::Remove);

  if (pkt.kind == PacketKind::Data) {
    // Attempt repair: re-discover the destination and retry the packet.
    node_.log_route_event(RouteEventKind::Repair);
    Packet retry = pkt;
    const NodeId dst = retry.dst;
    buffer_.push(std::move(retry));
    if (!pending_discovery_.contains(dst))
      start_discovery(dst, config_.max_rreq_retries, next_attempt_id_++);
  }
  send_rerr(std::move(broken));
}

void Aodv::flush_buffer(NodeId dst) {
  const SimTime now = node_.sim().now();
  for (Packet& pkt : buffer_.take(dst)) {
    const AodvRouteEntry* route = table_.lookup(dst, now);
    if (route == nullptr) {
      ++stats_.data_dropped_no_route;
      node_.log_packet(AuditPacketType::RouteAll, FlowDirection::Dropped);
      continue;
    }
    forward_data(std::move(pkt), *route);
  }
}

void Aodv::purge_tick() {
  const SimTime now = node_.sim().now();
  const std::size_t purged = table_.purge_expired(now);
  for (std::size_t i = 0; i < purged; ++i)
    node_.log_route_event(RouteEventKind::Remove);

  // Expire silent neighbors (missing HELLOs) and the routes through them.
  const SimTime deadline =
      now - config_.allowed_hello_loss * config_.hello_interval;
  for (auto it = neighbor_last_heard_.begin();
       it != neighbor_last_heard_.end();) {
    if (it->second < deadline) {
      auto broken = table_.invalidate_via(it->first, now);
      for (std::size_t i = 0; i < broken.size(); ++i)
        node_.log_route_event(RouteEventKind::Remove);
      send_rerr(std::move(broken));
      it = neighbor_last_heard_.erase(it);
    } else {
      ++it;
    }
  }
}

void Aodv::inject_bogus_route_advert(NodeId victim) {
  // Paper §4.1: forge a RREQ whose origin (and target) is the victim, with
  // the maximum allowed sequence number and hop count 0, so every receiver
  // installs "victim, one hop, via attacker" and prefers it forever.
  Packet pkt;
  pkt.kind = PacketKind::RouteRequest;
  pkt.src = node_.id();
  pkt.dst = kBroadcast;
  pkt.ttl = config_.net_diameter_ttl;
  pkt.size_bytes = kControlPacketBytes;
  AodvRreqHeader header;
  // High-range id: must not collide with the victim's genuine RREQ ids in
  // the network's duplicate-suppression caches.
  header.rreq_id = 0x80000000u | next_rreq_id_++;
  header.origin = victim;
  header.origin_seqno = kMaxSeqNo;
  header.target = victim;
  header.target_seqno_known = false;
  header.hop_count = 0;
  pkt.header = header;
  node_.log_packet(AuditPacketType::RouteRequest, FlowDirection::Sent);
  ++stats_.control_originated;
  node_.channel().transmit(node_.id(), std::move(pkt), kBroadcast);
}

}  // namespace xfa
