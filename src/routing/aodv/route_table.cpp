#include "routing/aodv/route_table.h"

#include <algorithm>

namespace xfa {

const AodvRouteEntry* AodvRouteTable::lookup(NodeId dst, SimTime now) const {
  const auto it = entries_.find(dst);
  if (it == entries_.end()) return nullptr;
  const AodvRouteEntry& entry = it->second;
  if (!entry.valid || entry.expiry < now) return nullptr;
  return &entry;
}

const AodvRouteEntry* AodvRouteTable::lookup_any(NodeId dst) const {
  const auto it = entries_.find(dst);
  return it == entries_.end() ? nullptr : &it->second;
}

RouteUpdate AodvRouteTable::update(NodeId dst, NodeId next_hop,
                                   std::uint16_t hop_count, SeqNo seqno,
                                   bool seqno_valid, SimTime expiry,
                                   SimTime now) {
  auto [it, inserted] = entries_.try_emplace(dst);
  AodvRouteEntry& entry = it->second;
  const bool usable = !inserted && entry.valid && entry.expiry >= now;

  bool accept;
  if (!usable) {
    accept = true;
  } else if (seqno_valid && entry.seqno_valid) {
    // Signed comparison per RFC 3561 is overkill here; the attack forges the
    // absolute maximum, which dominates under plain unsigned comparison and
    // reproduces the paper's "never rectified" persistence.
    accept = seqno > entry.seqno ||
             (seqno == entry.seqno && hop_count < entry.hop_count);
  } else if (seqno_valid) {
    accept = true;  // fresher information than a seqno-less entry
  } else {
    accept = hop_count < entry.hop_count;
  }

  if (!accept) return RouteUpdate::Rejected;

  const bool was_usable = usable;
  entry.dst = dst;
  entry.next_hop = next_hop;
  entry.hop_count = hop_count;
  if (seqno_valid) {
    entry.seqno = seqno;
    entry.seqno_valid = true;
  }
  entry.expiry = std::max(entry.expiry, expiry);
  entry.valid = true;
  return was_usable ? RouteUpdate::Refreshed : RouteUpdate::Added;
}

bool AodvRouteTable::invalidate(NodeId dst, SimTime now) {
  const auto it = entries_.find(dst);
  if (it == entries_.end() || !it->second.valid) return false;
  it->second.valid = false;
  it->second.expiry = now;
  // Incrementing the destination seqno on invalidation (RFC 3561 §6.11)
  // lets future discoveries supersede the dead route.
  if (it->second.seqno_valid && it->second.seqno != kMaxSeqNo)
    ++it->second.seqno;
  return true;
}

std::vector<std::pair<NodeId, SeqNo>> AodvRouteTable::invalidate_via(
    NodeId hop, SimTime now) {
  std::vector<std::pair<NodeId, SeqNo>> broken;
  for (auto& [dst, entry] : entries_) {
    if (entry.valid && entry.next_hop == hop) {
      invalidate(dst, now);
      broken.emplace_back(dst, entry.seqno);
    }
  }
  return broken;
}

std::size_t AodvRouteTable::purge_expired(SimTime now) {
  std::size_t purged = 0;
  for (auto& [dst, entry] : entries_) {
    if (entry.valid && entry.expiry < now) {
      entry.valid = false;
      ++purged;
    }
  }
  return purged;
}

void AodvRouteTable::refresh_lifetime(NodeId dst, SimTime expiry) {
  const auto it = entries_.find(dst);
  if (it != entries_.end() && it->second.valid)
    it->second.expiry = std::max(it->second.expiry, expiry);
}

std::size_t AodvRouteTable::valid_route_count(SimTime now) const {
  std::size_t count = 0;
  for (const auto& [dst, entry] : entries_)
    if (entry.valid && entry.expiry >= now) ++count;
  return count;
}

double AodvRouteTable::average_hop_count(SimTime now) const {
  std::size_t count = 0;
  double total = 0;
  for (const auto& [dst, entry] : entries_) {
    if (entry.valid && entry.expiry >= now) {
      ++count;
      total += entry.hop_count;
    }
  }
  return count == 0 ? 0.0 : total / static_cast<double>(count);
}

}  // namespace xfa
