// AODV routing agent (Perkins & Royer), the ns-2 AODV agent equivalent.
//
// Implements: on-demand route discovery (flooded RREQ answered by RREP from
// the target or a fresh intermediate route), hop-by-hop data forwarding via a
// sequence-numbered route table, RERR propagation on link failure, HELLO
// neighbor beacons, discovery retry with binary backoff, and a bounded send
// buffer. Audit events follow Table 4/5 of the paper (add / remove / find /
// notice / repair; per-type packet observations).
#pragma once

#include <cstdint>
#include <unordered_map>

#include "net/channel.h"
#include "net/node.h"
#include "routing/aodv/route_table.h"
#include "routing/route_events.h"
#include "sim/rng.h"

namespace xfa {

struct AodvConfig {
  SimTime active_route_timeout = 10.0;  // route lifetime extension on use
  SimTime hello_interval = 1.0;
  double allowed_hello_loss = 2.5;      // neighbor dead after this many misses
  SimTime rreq_retry_timeout = 1.0;     // doubled per retry
  int max_rreq_retries = 2;
  std::uint16_t net_diameter_ttl = 32;
  SimTime purge_interval = 1.0;
  double forward_jitter_s = 0.002;      // de-synchronizes flood rebroadcasts
};

class Aodv final : public RoutingProtocol {
 public:
  Aodv(Node& node, const AodvConfig& config = {});

  void start() override;
  void send_data(Packet&& pkt) override;
  void receive(PacketPtr pkt, NodeId from) override;
  void link_failure(const Packet& pkt, NodeId to) override;
  double average_route_length() const override;
  std::size_t route_count() const override;
  const char* name() const override { return "AODV"; }

  const AodvRouteTable& table() const { return table_; }
  const RoutingStats& stats() const { return stats_; }

  /// Attack surface used by the black hole script: broadcasts a forged RREQ
  /// that makes every overhearing neighbor install "victim is one hop away,
  /// via me" with the maximum sequence number.
  void inject_bogus_route_advert(NodeId victim);

 private:
  void start_discovery(NodeId dst, int retries_left, std::uint32_t attempt_id);
  // Handlers read the shared (zero-copy fan-out) packet through a const ref
  // and deep-copy only on the relay paths that mutate ttl / hop counts.
  void handle_rreq(const Packet& pkt, NodeId from);
  void handle_rrep(const Packet& pkt, NodeId from);
  void handle_rerr(const Packet& pkt, NodeId from);
  void handle_hello(const Packet& pkt, NodeId from);
  void handle_data(const Packet& pkt, NodeId from);
  void send_rrep(const AodvRreqHeader& rreq, NodeId reply_to, bool from_cache,
                 SimTime now);
  void send_rerr(std::vector<std::pair<NodeId, SeqNo>> unreachable);
  void flush_buffer(NodeId dst);
  void forward_data(Packet&& pkt, const AodvRouteEntry& route);
  void purge_tick();
  void log_route_update(RouteUpdate update, bool learned_passively);

  Node& node_;
  AodvConfig config_;
  Rng rng_;
  AodvRouteTable table_;
  SendBuffer buffer_;
  FloodIdCache rreq_seen_;
  RoutingStats stats_;

  SeqNo my_seqno_ = 1;
  std::uint32_t next_rreq_id_ = 1;
  SeqNo hello_seqno_ = 0;
  // Destinations with a discovery in flight -> current attempt id (guards
  // stale retry timers).
  std::unordered_map<NodeId, std::uint32_t> pending_discovery_;
  std::uint32_t next_attempt_id_ = 1;
  std::unordered_map<NodeId, SimTime> neighbor_last_heard_;

  std::unique_ptr<PeriodicTimer> hello_timer_;
  std::unique_ptr<PeriodicTimer> purge_timer_;
};

}  // namespace xfa
