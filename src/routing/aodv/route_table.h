// AODV route table (RFC 3561 §6 semantics, trimmed).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/packet.h"
#include "sim/types.h"

namespace xfa {

struct AodvRouteEntry {
  NodeId dst = kInvalidNode;
  NodeId next_hop = kInvalidNode;
  std::uint16_t hop_count = 0;
  SeqNo seqno = 0;
  bool seqno_valid = false;
  SimTime expiry = 0;
  bool valid = false;
};

/// Outcome of an update attempt, so the agent can log the right audit event.
enum class RouteUpdate {
  Added,      // no usable entry existed before
  Refreshed,  // entry replaced/extended per the AODV freshness rules
  Rejected,   // existing entry is fresher/better; no change
};

class AodvRouteTable {
 public:
  /// Looks up a currently valid, unexpired route. Returns nullptr otherwise.
  const AodvRouteEntry* lookup(NodeId dst, SimTime now) const;

  /// Looks up regardless of validity (for seqno bookkeeping in RERR/repair).
  const AodvRouteEntry* lookup_any(NodeId dst) const;

  /// Applies the AODV update rule: accept when there is no valid entry, the
  /// new seqno is fresher, or seqno ties but the hop count improves.
  RouteUpdate update(NodeId dst, NodeId next_hop, std::uint16_t hop_count,
                     SeqNo seqno, bool seqno_valid, SimTime expiry,
                     SimTime now);

  /// Marks the route to `dst` invalid (keeps seqno memory). Returns true if a
  /// valid entry was invalidated.
  bool invalidate(NodeId dst, SimTime now);

  /// Invalidates every valid route whose next hop is `hop`; returns the
  /// affected destinations (for the RERR payload).
  std::vector<std::pair<NodeId, SeqNo>> invalidate_via(NodeId hop,
                                                       SimTime now);

  /// Invalidates valid entries whose expiry has passed; returns how many.
  std::size_t purge_expired(SimTime now);

  /// Extends the lifetime of an active route (called on every use).
  void refresh_lifetime(NodeId dst, SimTime expiry);

  std::size_t valid_route_count(SimTime now) const;
  double average_hop_count(SimTime now) const;

 private:
  std::unordered_map<NodeId, AodvRouteEntry> entries_;
};

}  // namespace xfa
