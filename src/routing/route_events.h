// Shared helpers for routing agents: per-agent diagnostic counters and the
// common send-buffer used while route discovery is in flight.
#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <unordered_map>
#include <vector>

#include "net/packet.h"
#include "sim/types.h"

namespace xfa {

/// Diagnostic counters every routing agent maintains. These are *not* the
/// IDS features (those come from the AuditLog); they exist for tests,
/// examples and protocol-health reporting.
struct RoutingStats {
  std::uint64_t discoveries_started = 0;
  std::uint64_t discoveries_succeeded = 0;
  std::uint64_t discoveries_failed = 0;
  std::uint64_t data_forwarded = 0;
  std::uint64_t data_dropped_no_route = 0;
  std::uint64_t data_dropped_malicious = 0;
  std::uint64_t control_originated = 0;
  std::uint64_t control_forwarded = 0;
  std::uint64_t rerr_sent = 0;
};

std::ostream& operator<<(std::ostream& os, const RoutingStats& stats);

/// Packets buffered at the source while a route is being discovered.
/// Bounded per destination; overflow drops the oldest packet.
class SendBuffer {
 public:
  explicit SendBuffer(std::size_t max_per_dst = 64)
      : max_per_dst_(max_per_dst) {}

  /// Buffers a packet; returns false (and drops the oldest) on overflow.
  bool push(Packet&& pkt);

  /// Removes and returns every packet waiting for `dst`.
  std::vector<Packet> take(NodeId dst);

  bool has_packets_for(NodeId dst) const;
  std::size_t size_for(NodeId dst) const;

 private:
  std::size_t max_per_dst_;
  std::unordered_map<NodeId, std::deque<Packet>> by_dst_;
};

/// Duplicate-flood suppression: remembers (origin, id) pairs with expiry.
class FloodIdCache {
 public:
  explicit FloodIdCache(SimTime ttl = 30.0) : ttl_(ttl) {}

  /// Returns true if this (origin, id) was already seen (and refreshes it).
  bool seen_before(NodeId origin, std::uint32_t id, SimTime now);

 private:
  SimTime ttl_;
  std::unordered_map<std::uint64_t, SimTime> entries_;
};

}  // namespace xfa
