#include "routing/route_events.h"

#include <ostream>
#include <utility>

namespace xfa {

std::ostream& operator<<(std::ostream& os, const RoutingStats& stats) {
  os << "discoveries=" << stats.discoveries_started << "/"
     << stats.discoveries_succeeded << " fwd=" << stats.data_forwarded
     << " drop(no-route)=" << stats.data_dropped_no_route
     << " drop(malicious)=" << stats.data_dropped_malicious
     << " ctl=" << stats.control_originated << "+" << stats.control_forwarded
     << " rerr=" << stats.rerr_sent;
  return os;
}

bool SendBuffer::push(Packet&& pkt) {
  auto& queue = by_dst_[pkt.dst];
  bool overflow = false;
  if (queue.size() >= max_per_dst_) {
    queue.pop_front();
    overflow = true;
  }
  queue.push_back(std::move(pkt));
  return !overflow;
}

std::vector<Packet> SendBuffer::take(NodeId dst) {
  std::vector<Packet> out;
  const auto it = by_dst_.find(dst);
  if (it == by_dst_.end()) return out;
  out.assign(std::make_move_iterator(it->second.begin()),
             std::make_move_iterator(it->second.end()));
  by_dst_.erase(it);
  return out;
}

bool SendBuffer::has_packets_for(NodeId dst) const {
  const auto it = by_dst_.find(dst);
  return it != by_dst_.end() && !it->second.empty();
}

std::size_t SendBuffer::size_for(NodeId dst) const {
  const auto it = by_dst_.find(dst);
  return it == by_dst_.end() ? 0 : it->second.size();
}

bool FloodIdCache::seen_before(NodeId origin, std::uint32_t id, SimTime now) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(origin)) << 32) |
      id;
  const auto [it, inserted] = entries_.emplace(key, now + ttl_);
  if (inserted) return false;
  if (it->second < now) {
    it->second = now + ttl_;
    return false;  // previous sighting expired
  }
  it->second = now + ttl_;
  return true;
}

}  // namespace xfa
