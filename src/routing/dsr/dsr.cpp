#include "routing/dsr/dsr.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace xfa {
namespace {

bool contains(const std::vector<NodeId>& route, NodeId node) {
  return std::find(route.begin(), route.end(), node) != route.end();
}

}  // namespace

Dsr::Dsr(Node& node, const DsrConfig& config)
    : node_(node),
      config_(config),
      rng_(node.sim().fork_rng()),
      cache_(config.max_paths_per_dst, config.path_lifetime) {}

void Dsr::start() {
  purge_timer_ = std::make_unique<PeriodicTimer>(
      node_.sim(), config_.purge_interval, [this] { purge_tick(); });
  purge_timer_->start(rng_.uniform(0, config_.purge_interval));
}

double Dsr::average_route_length() const {
  return cache_.average_path_length(node_.sim().now());
}

std::size_t Dsr::route_count() const {
  return cache_.path_count(node_.sim().now());
}

void Dsr::learn_path(std::vector<NodeId> hops, SeqNo freshness,
                     PathOrigin origin) {
  if (hops.empty() || hops.back() == node_.id()) return;
  if (contains(hops, node_.id())) return;  // would self-loop
  if (cache_.add_path(std::move(hops), freshness, node_.sim().now())) {
    node_.log_route_event(origin == PathOrigin::Discovery
                              ? RouteEventKind::Add
                              : RouteEventKind::Notice);
  }
}

void Dsr::learn_from_route(const std::vector<NodeId>& route,
                           std::size_t self_index, SeqNo freshness,
                           PathOrigin origin) {
  XFA_CHECK(self_index < route.size() && route[self_index] == node_.id());
  // Downstream sub-paths: self -> route[j] for j > self_index.
  for (std::size_t j = self_index + 1; j < route.size(); ++j) {
    learn_path(std::vector<NodeId>(route.begin() + self_index + 1,
                                   route.begin() + j + 1),
               freshness, origin);
  }
  // Upstream sub-paths (links assumed bidirectional, as in DSR).
  for (std::size_t j = 0; j < self_index; ++j) {
    std::vector<NodeId> hops(route.rend() - self_index, route.rend() - j);
    learn_path(std::move(hops), freshness, origin);
  }
}

bool Dsr::source_route_and_send(Packet&& pkt) {
  const SimTime now = node_.sim().now();
  const DsrCachePath* path = cache_.best_path(pkt.dst, now);
  if (path == nullptr) return false;
  DsrSourceRoute route;
  route.hops.reserve(path->hops.size() + 1);
  route.hops.push_back(node_.id());
  route.hops.insert(route.hops.end(), path->hops.begin(), path->hops.end());
  route.cursor = 1;  // index of the next holder
  const NodeId next = route.hops[1];
  pkt.header = std::move(route);
  node_.channel().transmit(node_.id(), std::move(pkt), next);
  return true;
}

void Dsr::send_data(Packet&& pkt) {
  const SimTime now = node_.sim().now();
  if (cache_.best_path(pkt.dst, now) != nullptr) {
    node_.log_route_event(RouteEventKind::Find);
    source_route_and_send(std::move(pkt));
    return;
  }
  const NodeId dst = pkt.dst;
  buffer_.push(std::move(pkt));
  if (!pending_discovery_.contains(dst))
    start_discovery(dst, config_.max_rreq_retries, next_attempt_id_++);
}

void Dsr::start_discovery(NodeId dst, int retries_left,
                          std::uint32_t attempt_id) {
  pending_discovery_[dst] = attempt_id;
  ++stats_.discoveries_started;

  Packet rreq;
  rreq.kind = PacketKind::RouteRequest;
  rreq.src = node_.id();
  rreq.dst = kBroadcast;
  rreq.ttl = config_.net_diameter_ttl;
  rreq.size_bytes = kControlPacketBytes;
  DsrRreqHeader header;
  header.request_id = next_request_id_++;
  header.origin = node_.id();
  header.target = dst;
  header.route_so_far = {node_.id()};
  rreq.header = header;
  rreq_seen_.seen_before(node_.id(), header.request_id, node_.sim().now());

  node_.log_packet(AuditPacketType::RouteRequest, FlowDirection::Sent);
  ++stats_.control_originated;
  node_.channel().transmit(node_.id(), std::move(rreq), kBroadcast);

  const SimTime timeout =
      config_.rreq_retry_timeout *
      static_cast<double>(1 << (config_.max_rreq_retries - retries_left));
  node_.sim().after(timeout, [this, dst, retries_left, attempt_id] {
    const auto it = pending_discovery_.find(dst);
    if (it == pending_discovery_.end() || it->second != attempt_id) return;
    if (retries_left > 0) {
      start_discovery(dst, retries_left - 1, attempt_id);
      return;
    }
    pending_discovery_.erase(it);
    ++stats_.discoveries_failed;
    for ([[maybe_unused]] Packet& dropped : buffer_.take(dst)) {
      ++stats_.data_dropped_no_route;
      node_.log_packet(AuditPacketType::RouteAll, FlowDirection::Dropped);
    }
  });
}

void Dsr::receive(PacketPtr pkt, NodeId from) {
  switch (pkt->kind) {
    case PacketKind::RouteRequest:
      node_.log_packet(AuditPacketType::RouteRequest, FlowDirection::Received);
      handle_rreq(*pkt, from);
      break;
    case PacketKind::RouteReply:
      node_.log_packet(AuditPacketType::RouteReply, FlowDirection::Received);
      handle_rrep(*pkt, from);
      break;
    case PacketKind::RouteError:
      node_.log_packet(AuditPacketType::RouteError, FlowDirection::Received);
      handle_rerr(*pkt, from);
      break;
    case PacketKind::Hello:
      // DSR has no HELLO beacons; ignore stray ones.
      node_.log_packet(AuditPacketType::Hello, FlowDirection::Received);
      break;
    case PacketKind::Data:
      handle_data(*pkt, from);
      break;
  }
}

void Dsr::handle_rreq(const Packet& pkt, NodeId from) {
  (void)from;
  const SimTime now = node_.sim().now();
  const auto& header = std::get<DsrRreqHeader>(pkt.header);
  if (header.origin == node_.id()) return;
  if (contains(header.route_so_far, node_.id())) return;

  // Learn the reverse of the accumulated route. A forged one-hop
  // route_so_far [victim, attacker] with max freshness poisons this cache:
  // "victim is one hop away, through the attacker".
  {
    std::vector<NodeId> reversed(header.route_so_far.rbegin(),
                                 header.route_so_far.rend());
    for (std::size_t j = 0; j < reversed.size(); ++j) {
      learn_path(
          std::vector<NodeId>(reversed.begin(), reversed.begin() + j + 1),
          header.freshness, PathOrigin::Relay);
    }
  }

  if (rreq_seen_.seen_before(header.origin, header.request_id, now)) return;

  if (header.target == node_.id()) {
    // We are the target: reply with the complete accumulated route.
    std::vector<NodeId> full = header.route_so_far;
    full.push_back(node_.id());
    DsrRrepHeader reply;
    reply.origin = header.origin;
    reply.target = node_.id();
    reply.route = full;
    reply.travel.assign(full.rbegin(), full.rend());
    reply.travel_cursor = 1;  // index of the node about to hold the reply

    Packet out;
    out.kind = PacketKind::RouteReply;
    out.src = node_.id();
    out.dst = header.origin;
    out.ttl = config_.net_diameter_ttl;
    out.size_bytes = kControlPacketBytes;
    const NodeId next = reply.travel.size() > 1 ? reply.travel[1] : kInvalidNode;
    out.header = std::move(reply);
    node_.log_packet(AuditPacketType::RouteReply, FlowDirection::Sent);
    ++stats_.control_originated;
    if (next != kInvalidNode)
      node_.channel().transmit(node_.id(), std::move(out), next);
    return;
  }

  if (config_.intermediate_cache_replies) {
    if (const DsrCachePath* cached = cache_.best_path(header.target, now)) {
      // Splice request path + our cached path, provided it stays loop-free.
      bool loop_free = !contains(cached->hops, header.origin);
      for (const NodeId hop : header.route_so_far)
        if (contains(cached->hops, hop)) loop_free = false;
      if (loop_free) {
        node_.log_route_event(RouteEventKind::Find);
        std::vector<NodeId> full = header.route_so_far;
        full.push_back(node_.id());
        full.insert(full.end(), cached->hops.begin(), cached->hops.end());
        DsrRrepHeader reply;
        reply.origin = header.origin;
        reply.target = header.target;
        reply.route = full;
        reply.freshness = cached->freshness;
        // Travel back along the request path only (we are its last hop).
        reply.travel = {node_.id()};
        reply.travel.insert(reply.travel.end(), header.route_so_far.rbegin(),
                            header.route_so_far.rend());
        reply.travel_cursor = 1;

        Packet out;
        out.kind = PacketKind::RouteReply;
        out.src = node_.id();
        out.dst = header.origin;
        out.ttl = config_.net_diameter_ttl;
        out.size_bytes = kControlPacketBytes;
        const NodeId next = reply.travel[1];
        out.header = std::move(reply);
        node_.log_packet(AuditPacketType::RouteReply, FlowDirection::Sent);
        ++stats_.control_originated;
        node_.channel().transmit(node_.id(), std::move(out), next);
        return;
      }
    }
  }

  // Relay the flood, appending ourselves to the accumulated route.
  // Copy-on-write: the shared broadcast handle stays untouched for the
  // other receivers of this transmission.
  if (pkt.ttl <= 1) {
    node_.log_packet(AuditPacketType::RouteRequest, FlowDirection::Dropped);
    return;
  }
  Packet relay = pkt;
  --relay.ttl;
  std::get<DsrRreqHeader>(relay.header).route_so_far.push_back(node_.id());
  node_.log_packet(AuditPacketType::RouteRequest, FlowDirection::Forwarded);
  ++stats_.control_forwarded;
  node_.sim().after(rng_.uniform(0, config_.forward_jitter_s),
                    [this, relay = std::move(relay)]() mutable {
                      node_.channel().transmit(node_.id(), std::move(relay),
                                               kBroadcast);
                    });
}

void Dsr::handle_rrep(const Packet& pkt, NodeId from) {
  (void)from;
  const auto& header = std::get<DsrRrepHeader>(pkt.header);

  // Learn from the discovered route.
  const auto self_it =
      std::find(header.route.begin(), header.route.end(), node_.id());
  const bool is_origin = header.origin == node_.id();
  if (self_it != header.route.end()) {
    learn_from_route(header.route,
                     static_cast<std::size_t>(self_it - header.route.begin()),
                     header.freshness,
                     is_origin ? PathOrigin::Discovery : PathOrigin::Relay);
  }

  if (is_origin) {
    if (pending_discovery_.erase(header.target) > 0)
      ++stats_.discoveries_succeeded;
    flush_buffer(header.target);
    return;
  }

  // Relay along the travel path: we must be the current holder and there
  // must be a next hop. Copy-on-write before advancing the cursor.
  if (header.travel_cursor + 1 >= header.travel.size() ||
      header.travel[header.travel_cursor] != node_.id()) {
    node_.log_packet(AuditPacketType::RouteReply, FlowDirection::Dropped);
    return;
  }
  Packet relay = pkt;
  auto& relay_header = std::get<DsrRrepHeader>(relay.header);
  const NodeId next = relay_header.travel[++relay_header.travel_cursor];
  node_.log_packet(AuditPacketType::RouteReply, FlowDirection::Forwarded);
  ++stats_.control_forwarded;
  node_.channel().transmit(node_.id(), std::move(relay), next);
}

void Dsr::handle_rerr(const Packet& pkt, NodeId from) {
  (void)from;
  const auto& header = std::get<DsrRerrHeader>(pkt.header);
  const std::size_t removed = cache_.remove_link(
      header.broken_from, header.broken_to, node_.id());
  for (std::size_t i = 0; i < removed; ++i)
    node_.log_route_event(RouteEventKind::Remove);

  if (pkt.dst == node_.id()) return;
  if (header.travel_cursor + 1 >= header.travel.size() ||
      header.travel[header.travel_cursor] != node_.id()) {
    node_.log_packet(AuditPacketType::RouteError, FlowDirection::Dropped);
    return;
  }
  Packet relay = pkt;  // copy-on-write before advancing the cursor
  auto& relay_header = std::get<DsrRerrHeader>(relay.header);
  const NodeId next = relay_header.travel[++relay_header.travel_cursor];
  node_.log_packet(AuditPacketType::RouteError, FlowDirection::Forwarded);
  ++stats_.control_forwarded;
  node_.channel().transmit(node_.id(), std::move(relay), next);
}

void Dsr::handle_data(const Packet& pkt, NodeId from) {
  (void)from;
  if (pkt.dst == node_.id()) {
    node_.deliver_to_transport(pkt);
    return;
  }
  const auto* route = std::get_if<DsrSourceRoute>(&pkt.header);
  if (route == nullptr || route->cursor >= route->hops.size() ||
      route->hops[route->cursor] != node_.id()) {
    node_.log_packet(AuditPacketType::RouteAll, FlowDirection::Dropped);
    return;
  }
  if (node_.should_maliciously_drop(pkt)) {
    ++stats_.data_dropped_malicious;
    node_.log_packet(AuditPacketType::RouteAll, FlowDirection::Dropped);
    return;
  }
  // Learn from the source route while we're on it.
  learn_from_route(route->hops, route->cursor, 0, PathOrigin::Relay);

  if (route->cursor + 1 >= route->hops.size()) {
    node_.log_packet(AuditPacketType::RouteAll, FlowDirection::Dropped);
    return;
  }
  Packet relay = pkt;  // copy-on-write before advancing the cursor
  auto& relay_route = std::get<DsrSourceRoute>(relay.header);
  ++relay_route.cursor;
  const NodeId next = relay_route.hops[relay_route.cursor];
  node_.log_packet(AuditPacketType::RouteAll, FlowDirection::Forwarded);
  ++stats_.data_forwarded;
  node_.channel().transmit(node_.id(), std::move(relay), next);
}

void Dsr::tap(const Packet& pkt, NodeId from, NodeId to) {
  (void)to;
  // Promiscuous route learning: anything overheard with route information.
  // We can reach `from` directly (we just heard it), so any sub-path of the
  // overheard route anchored at `from` is usable, prefixed with that hop.
  const auto learn_anchored = [&](const std::vector<NodeId>& route,
                                  SeqNo freshness) {
    const auto it = std::find(route.begin(), route.end(), from);
    if (it == route.end()) return;
    const std::size_t j = static_cast<std::size_t>(it - route.begin());
    // Downstream of `from`.
    for (std::size_t k = j; k < route.size(); ++k) {
      std::vector<NodeId> hops(route.begin() + j, route.begin() + k + 1);
      learn_path(std::move(hops), freshness, PathOrigin::Overheard);
    }
    // Upstream of `from` (reverse direction).
    for (std::size_t k = 0; k < j; ++k) {
      std::vector<NodeId> hops;
      hops.reserve(j - k + 1);
      for (std::size_t m = j + 1; m-- > k;) hops.push_back(route[m]);
      learn_path(std::move(hops), freshness, PathOrigin::Overheard);
    }
  };

  if (const auto* route = std::get_if<DsrSourceRoute>(&pkt.header)) {
    learn_anchored(route->hops, 0);
  } else if (const auto* rrep = std::get_if<DsrRrepHeader>(&pkt.header)) {
    learn_anchored(rrep->route, rrep->freshness);
  } else if (const auto* rerr = std::get_if<DsrRerrHeader>(&pkt.header)) {
    const std::size_t removed = cache_.remove_link(
        rerr->broken_from, rerr->broken_to, node_.id());
    for (std::size_t i = 0; i < removed; ++i)
      node_.log_route_event(RouteEventKind::Remove);
  }
}

void Dsr::link_failure(const Packet& pkt, NodeId to) {
  const std::size_t removed = cache_.remove_link(node_.id(), to, node_.id());
  for (std::size_t i = 0; i < removed; ++i)
    node_.log_route_event(RouteEventKind::Remove);

  if (pkt.kind != PacketKind::Data) return;

  // Report the broken link to the packet's source.
  if (pkt.src != node_.id()) send_rerr_to(pkt.src, node_.id(), to);

  // Salvage: retry via an alternative cached path (route repair).
  Packet retry = pkt;
  const SimTime now = node_.sim().now();
  if (cache_.best_path(retry.dst, now) != nullptr) {
    node_.log_route_event(RouteEventKind::Repair);
    source_route_and_send(std::move(retry));
    return;
  }
  if (retry.src == node_.id()) {
    // Our own packet: buffer and rediscover.
    node_.log_route_event(RouteEventKind::Repair);
    const NodeId dst = retry.dst;
    buffer_.push(std::move(retry));
    if (!pending_discovery_.contains(dst))
      start_discovery(dst, config_.max_rreq_retries, next_attempt_id_++);
    return;
  }
  ++stats_.data_dropped_no_route;
  node_.log_packet(AuditPacketType::RouteAll, FlowDirection::Dropped);
}

void Dsr::send_rerr_to(NodeId source, NodeId broken_from, NodeId broken_to) {
  const SimTime now = node_.sim().now();
  const DsrCachePath* back = cache_.best_path(source, now);
  DsrRerrHeader header;
  header.broken_from = broken_from;
  header.broken_to = broken_to;
  header.origin = node_.id();
  header.travel = {node_.id()};
  if (back != nullptr)
    header.travel.insert(header.travel.end(), back->hops.begin(),
                         back->hops.end());
  header.travel_cursor = 1;

  Packet pkt;
  pkt.kind = PacketKind::RouteError;
  pkt.src = node_.id();
  pkt.dst = source;
  pkt.ttl = config_.net_diameter_ttl;
  pkt.size_bytes = kControlPacketBytes;
  const NodeId next =
      header.travel.size() > 1 ? header.travel[1] : kInvalidNode;
  pkt.header = std::move(header);
  node_.log_packet(AuditPacketType::RouteError, FlowDirection::Sent);
  ++stats_.control_originated;
  ++stats_.rerr_sent;
  if (next != kInvalidNode) {
    node_.channel().transmit(node_.id(), std::move(pkt), next);
  } else {
    // No path back to the source: broadcast one hop so neighbors still
    // unlearn the broken link.
    pkt.ttl = 1;
    node_.channel().transmit(node_.id(), std::move(pkt), kBroadcast);
  }
}

void Dsr::flush_buffer(NodeId dst) {
  for (Packet& pkt : buffer_.take(dst)) {
    if (!source_route_and_send(std::move(pkt))) {
      ++stats_.data_dropped_no_route;
      node_.log_packet(AuditPacketType::RouteAll, FlowDirection::Dropped);
    }
  }
}

void Dsr::purge_tick() {
  const std::size_t removed = cache_.purge_expired(node_.sim().now());
  for (std::size_t i = 0; i < removed; ++i)
    node_.log_route_event(RouteEventKind::Remove);
}

void Dsr::inject_bogus_route_advert(NodeId victim) {
  // Paper §4.1: a bogus ROUTE REQUEST "with selected source and destination"
  // whose recorded source route claims a one-hop path [victim -> attacker],
  // with a forged maximum freshness. Receivers reverse it and prefer the
  // fake route to the victim. The selected destination is a phantom node no
  // one has a cached route to, so no intermediate cache reply can answer the
  // flood — the REQUEST propagates network-wide, producing both the paper's
  // flooding overhead and network-wide poisoning.
  Packet pkt;
  pkt.kind = PacketKind::RouteRequest;
  pkt.src = node_.id();
  pkt.dst = kBroadcast;
  pkt.ttl = config_.net_diameter_ttl;
  pkt.size_bytes = kControlPacketBytes;
  DsrRreqHeader header;
  // High-range id: must not collide with the victim's genuine request ids in
  // the network's duplicate-suppression caches.
  header.request_id = 0x80000000u | next_request_id_++;
  header.origin = victim;
  header.target = victim + 1000000;  // phantom destination
  header.route_so_far = {victim, node_.id()};
  header.freshness = kMaxSeqNo;
  pkt.header = header;
  node_.log_packet(AuditPacketType::RouteRequest, FlowDirection::Sent);
  ++stats_.control_originated;
  node_.channel().transmit(node_.id(), std::move(pkt), kBroadcast);
}

}  // namespace xfa
