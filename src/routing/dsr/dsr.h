// DSR routing agent (Johnson & Maltz), the ns-2 DSR agent equivalent.
//
// Implements: source-routed data delivery, flooded ROUTE REQUEST with route
// accumulation, ROUTE REPLY from the target or from an intermediate node's
// cache, promiscuous route learning ("notice"), ROUTE ERROR + salvaging on
// link failure ("repair"), discovery retry with backoff, and a bounded send
// buffer.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "net/channel.h"
#include "net/node.h"
#include "routing/dsr/route_cache.h"
#include "routing/route_events.h"
#include "sim/rng.h"

namespace xfa {

struct DsrConfig {
  SimTime rreq_retry_timeout = 1.0;  // doubled per retry
  int max_rreq_retries = 2;
  std::uint16_t net_diameter_ttl = 32;
  SimTime purge_interval = 1.0;
  double forward_jitter_s = 0.002;
  std::size_t max_paths_per_dst = 3;
  SimTime path_lifetime = 60.0;
  bool intermediate_cache_replies = true;
};

class Dsr final : public RoutingProtocol {
 public:
  Dsr(Node& node, const DsrConfig& config = {});

  void start() override;
  void send_data(Packet&& pkt) override;
  void receive(PacketPtr pkt, NodeId from) override;
  void tap(const Packet& pkt, NodeId from, NodeId to) override;
  void link_failure(const Packet& pkt, NodeId to) override;
  double average_route_length() const override;
  std::size_t route_count() const override;
  const char* name() const override { return "DSR"; }

  const DsrRouteCache& cache() const { return cache_; }
  const RoutingStats& stats() const { return stats_; }

  /// Attack surface used by the black hole script: broadcasts a forged
  /// one-hop ROUTE REQUEST "victim -> me" with maximum freshness, so every
  /// overhearing neighbor reverses it into "victim is reachable through me".
  void inject_bogus_route_advert(NodeId victim);

 private:
  void start_discovery(NodeId dst, int retries_left, std::uint32_t attempt_id);
  // Handlers read the shared (zero-copy fan-out) packet through a const ref
  // and deep-copy only on the relay paths that mutate it.
  void handle_rreq(const Packet& pkt, NodeId from);
  void handle_rrep(const Packet& pkt, NodeId from);
  void handle_rerr(const Packet& pkt, NodeId from);
  void handle_data(const Packet& pkt, NodeId from);
  void flush_buffer(NodeId dst);
  /// Attaches the best cached source route and transmits. Returns false when
  /// no route is cached.
  bool source_route_and_send(Packet&& pkt);
  void learn_path(std::vector<NodeId> hops, SeqNo freshness,
                  PathOrigin origin);
  /// Extracts the sub-path from this node to every suffix node of `route`
  /// (standard DSR link-by-link learning), relative to `self_index`.
  void learn_from_route(const std::vector<NodeId>& route,
                        std::size_t self_index, SeqNo freshness,
                        PathOrigin origin);
  void send_rerr_to(NodeId source, NodeId broken_from, NodeId broken_to);
  void purge_tick();

  Node& node_;
  DsrConfig config_;
  Rng rng_;
  DsrRouteCache cache_;
  SendBuffer buffer_;
  FloodIdCache rreq_seen_;
  RoutingStats stats_;

  std::uint32_t next_request_id_ = 1;
  std::unordered_map<NodeId, std::uint32_t> pending_discovery_;
  std::uint32_t next_attempt_id_ = 1;
  std::unique_ptr<PeriodicTimer> purge_timer_;
};

}  // namespace xfa
