#include "routing/dsr/route_cache.h"

#include <algorithm>

#include "common/check.h"

namespace xfa {

bool DsrRouteCache::add_path(std::vector<NodeId> hops, SeqNo freshness,
                             SimTime now) {
  if (hops.empty()) return false;
  const NodeId dst = hops.back();
  auto& paths = by_dst_[dst];

  for (DsrCachePath& existing : paths) {
    if (existing.hops == hops) {
      // Duplicate: refresh timestamps/freshness only.
      existing.learned_at = now;
      if (freshness > existing.freshness) existing.freshness = freshness;
      return false;
    }
  }

  if (paths.size() >= max_paths_per_dst_) {
    // Evict the worst path (stalest freshness, then longest, then oldest).
    auto worst = std::min_element(
        paths.begin(), paths.end(),
        [](const DsrCachePath& a, const DsrCachePath& b) {
          if (a.freshness != b.freshness) return a.freshness < b.freshness;
          if (a.hops.size() != b.hops.size())
            return a.hops.size() > b.hops.size();
          return a.learned_at < b.learned_at;
        });
    *worst = DsrCachePath{std::move(hops), freshness, now};
    return true;
  }
  paths.push_back(DsrCachePath{std::move(hops), freshness, now});
  return true;
}

const DsrCachePath* DsrRouteCache::best_path(NodeId dst, SimTime now) const {
  const auto it = by_dst_.find(dst);
  if (it == by_dst_.end()) return nullptr;
  const DsrCachePath* best = nullptr;
  for (const DsrCachePath& path : it->second) {
    if (expired(path, now)) continue;
    if (best == nullptr || path.freshness > best->freshness ||
        (path.freshness == best->freshness &&
         path.hops.size() < best->hops.size())) {
      best = &path;
    }
  }
  return best;
}

std::size_t DsrRouteCache::remove_link(NodeId from, NodeId to, NodeId owner) {
  std::size_t removed = 0;
  for (auto& [dst, paths] : by_dst_) {
    const auto uses_link = [&](const DsrCachePath& path) {
      NodeId prev = owner;
      for (const NodeId hop : path.hops) {
        if (prev == from && hop == to) return true;
        prev = hop;
      }
      return false;
    };
    const auto new_end =
        std::remove_if(paths.begin(), paths.end(), uses_link);
    removed += static_cast<std::size_t>(paths.end() - new_end);
    paths.erase(new_end, paths.end());
  }
  return removed;
}

std::size_t DsrRouteCache::purge_expired(SimTime now) {
  std::size_t removed = 0;
  for (auto& [dst, paths] : by_dst_) {
    const auto new_end = std::remove_if(
        paths.begin(), paths.end(),
        [&](const DsrCachePath& path) { return expired(path, now); });
    removed += static_cast<std::size_t>(paths.end() - new_end);
    paths.erase(new_end, paths.end());
  }
  return removed;
}

std::size_t DsrRouteCache::path_count(SimTime now) const {
  std::size_t count = 0;
  for (const auto& [dst, paths] : by_dst_)
    for (const DsrCachePath& path : paths)
      if (!expired(path, now)) ++count;
  return count;
}

double DsrRouteCache::average_path_length(SimTime now) const {
  std::size_t count = 0;
  double total = 0;
  for (const auto& [dst, paths] : by_dst_) {
    for (const DsrCachePath& path : paths) {
      if (!expired(path, now)) {
        ++count;
        total += static_cast<double>(path.hops.size());
      }
    }
  }
  return count == 0 ? 0.0 : total / static_cast<double>(count);
}

}  // namespace xfa
