#include "routing/dsr/route_cache.h"

#include <algorithm>

#include "common/check.h"

namespace xfa {

void DsrRouteCache::index_links(const std::vector<NodeId>& hops, int delta) {
  XFA_DCHECK(!hops.empty());
  const auto adjust = [delta](auto& refs, auto key) {
    if (delta > 0) {
      ++refs[key];
    } else {
      const auto it = refs.find(key);
      XFA_DCHECK(it != refs.end() && it->second > 0);
      if (--it->second == 0) refs.erase(it);
    }
  };
  adjust(first_hop_refs_, hops.front());
  for (std::size_t i = 0; i + 1 < hops.size(); ++i)
    adjust(link_refs_, link_key(hops[i], hops[i + 1]));
}

bool DsrRouteCache::add_path(std::vector<NodeId> hops, SeqNo freshness,
                             SimTime now) {
  if (hops.empty()) return false;
  const NodeId dst = hops.back();
  auto& paths = by_dst_[dst];

  for (DsrCachePath& existing : paths) {
    if (existing.hops == hops) {
      // Duplicate: refresh timestamps/freshness only.
      existing.learned_at = now;
      if (freshness > existing.freshness) existing.freshness = freshness;
      return false;
    }
  }

  if (paths.size() >= max_paths_per_dst_) {
    // Evict the worst path (stalest freshness, then longest, then oldest).
    auto worst = std::min_element(
        paths.begin(), paths.end(),
        [](const DsrCachePath& a, const DsrCachePath& b) {
          if (a.freshness != b.freshness) return a.freshness < b.freshness;
          if (a.hops.size() != b.hops.size())
            return a.hops.size() > b.hops.size();
          return a.learned_at < b.learned_at;
        });
    index_links(worst->hops, -1);
    index_links(hops, +1);
    *worst = DsrCachePath{std::move(hops), freshness, now};
    return true;
  }
  index_links(hops, +1);
  paths.push_back(DsrCachePath{std::move(hops), freshness, now});
  return true;
}

const DsrCachePath* DsrRouteCache::best_path(NodeId dst, SimTime now) const {
  const auto it = by_dst_.find(dst);
  if (it == by_dst_.end()) return nullptr;
  const DsrCachePath* best = nullptr;
  for (const DsrCachePath& path : it->second) {
    if (expired(path, now)) continue;
    if (best == nullptr || path.freshness > best->freshness ||
        (path.freshness == best->freshness &&
         path.hops.size() < best->hops.size())) {
      best = &path;
    }
  }
  return best;
}

std::size_t DsrRouteCache::remove_link(NodeId from, NodeId to, NodeId owner) {
  // O(1) rejection for the common case: DSR calls this for every overheard
  // or received RERR and every missing ACK, and the named link is almost
  // never in the cache. The refcounts are an exact multiset of stored links,
  // so a miss here proves no path can match the scan below.
  if (!link_refs_.contains(link_key(from, to)) &&
      !(from == owner && first_hop_refs_.contains(to))) {
    return 0;
  }
  std::size_t removed = 0;
  for (auto& [dst, paths] : by_dst_) {
    const auto uses_link = [&](const DsrCachePath& path) {
      NodeId prev = owner;
      for (const NodeId hop : path.hops) {
        if (prev == from && hop == to) {
          index_links(path.hops, -1);
          return true;
        }
        prev = hop;
      }
      return false;
    };
    const auto new_end =
        std::remove_if(paths.begin(), paths.end(), uses_link);
    removed += static_cast<std::size_t>(paths.end() - new_end);
    paths.erase(new_end, paths.end());
  }
  return removed;
}

std::size_t DsrRouteCache::purge_expired(SimTime now) {
  std::size_t removed = 0;
  for (auto& [dst, paths] : by_dst_) {
    const auto new_end =
        std::remove_if(paths.begin(), paths.end(),
                       [&](const DsrCachePath& path) {
                         if (!expired(path, now)) return false;
                         index_links(path.hops, -1);
                         return true;
                       });
    removed += static_cast<std::size_t>(paths.end() - new_end);
    paths.erase(new_end, paths.end());
  }
  return removed;
}

std::size_t DsrRouteCache::path_count(SimTime now) const {
  std::size_t count = 0;
  for (const auto& [dst, paths] : by_dst_)
    for (const DsrCachePath& path : paths)
      if (!expired(path, now)) ++count;
  return count;
}

double DsrRouteCache::average_path_length(SimTime now) const {
  std::size_t count = 0;
  double total = 0;
  for (const auto& [dst, paths] : by_dst_) {
    for (const DsrCachePath& path : paths) {
      if (!expired(path, now)) {
        ++count;
        total += static_cast<double>(path.hops.size());
      }
    }
  }
  return count == 0 ? 0.0 : total / static_cast<double>(count);
}

}  // namespace xfa
