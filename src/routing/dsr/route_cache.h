// DSR path cache: complete source routes learned from discovery, relaying
// and promiscuous eavesdropping.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/packet.h"
#include "sim/types.h"

namespace xfa {

struct DsrCachePath {
  // Path from the cache owner to the destination, *excluding* the owner
  // itself: hops.front() is the first hop, hops.back() is the destination.
  std::vector<NodeId> hops;
  SeqNo freshness = 0;  // the black hole forges kMaxSeqNo here
  SimTime learned_at = 0;
};

/// How a path entered the cache; determines the audit event the agent logs.
enum class PathOrigin {
  Discovery,  // ROUTE REPLY for our own request -> "add"
  Relay,      // accumulated while relaying control     -> "notice"
  Overheard,  // promiscuous tap                        -> "notice"
};

class DsrRouteCache {
 public:
  explicit DsrRouteCache(std::size_t max_paths_per_dst = 3,
                         SimTime path_lifetime = 60.0)
      : max_paths_per_dst_(max_paths_per_dst), path_lifetime_(path_lifetime) {}

  /// Inserts a path to `hops.back()`. Returns true if the cache changed
  /// (new path or refreshed freshness), false for duplicates/rejects.
  bool add_path(std::vector<NodeId> hops, SeqNo freshness, SimTime now);

  /// Best current path to `dst`: freshest first, then shortest, then most
  /// recently learned. Returns nullptr if none.
  const DsrCachePath* best_path(NodeId dst, SimTime now) const;

  /// Removes every path using the directed link from->to. Returns the number
  /// of paths removed (each is a route "remove" event).
  std::size_t remove_link(NodeId from, NodeId to, NodeId owner);

  /// Drops expired paths; returns how many were removed.
  std::size_t purge_expired(SimTime now);

  std::size_t path_count(SimTime now) const;
  double average_path_length(SimTime now) const;

 private:
  bool expired(const DsrCachePath& path, SimTime now) const {
    return path.learned_at + path_lifetime_ < now;
  }

  std::size_t max_paths_per_dst_;
  SimTime path_lifetime_;
  std::unordered_map<NodeId, std::vector<DsrCachePath>> by_dst_;
};

}  // namespace xfa
