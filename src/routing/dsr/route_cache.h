// DSR path cache: complete source routes learned from discovery, relaying
// and promiscuous eavesdropping.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/packet.h"
#include "sim/types.h"

namespace xfa {

struct DsrCachePath {
  // Path from the cache owner to the destination, *excluding* the owner
  // itself: hops.front() is the first hop, hops.back() is the destination.
  std::vector<NodeId> hops;
  SeqNo freshness = 0;  // the black hole forges kMaxSeqNo here
  SimTime learned_at = 0;
};

/// How a path entered the cache; determines the audit event the agent logs.
enum class PathOrigin {
  Discovery,  // ROUTE REPLY for our own request -> "add"
  Relay,      // accumulated while relaying control     -> "notice"
  Overheard,  // promiscuous tap                        -> "notice"
};

class DsrRouteCache {
 public:
  explicit DsrRouteCache(std::size_t max_paths_per_dst = 3,
                         SimTime path_lifetime = 60.0)
      : max_paths_per_dst_(max_paths_per_dst), path_lifetime_(path_lifetime) {}

  /// Inserts a path to `hops.back()`. Returns true if the cache changed
  /// (new path or refreshed freshness), false for duplicates/rejects.
  bool add_path(std::vector<NodeId> hops, SeqNo freshness, SimTime now);

  /// Best current path to `dst`: freshest first, then shortest, then most
  /// recently learned. Returns nullptr if none.
  const DsrCachePath* best_path(NodeId dst, SimTime now) const;

  /// Removes every path using the directed link from->to. Returns the number
  /// of paths removed (each is a route "remove" event).
  std::size_t remove_link(NodeId from, NodeId to, NodeId owner);

  /// Drops expired paths; returns how many were removed.
  std::size_t purge_expired(SimTime now);

  std::size_t path_count(SimTime now) const;
  double average_path_length(SimTime now) const;

 private:
  bool expired(const DsrCachePath& path, SimTime now) const {
    return path.learned_at + path_lifetime_ < now;
  }

  static std::uint64_t link_key(NodeId from, NodeId to) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(from))
            << 32) |
           static_cast<std::uint32_t>(to);
  }
  /// Adjusts the link reference counts for one stored path (+1 on insert,
  /// -1 on removal).
  void index_links(const std::vector<NodeId>& hops, int delta);

  std::size_t max_paths_per_dst_;
  SimTime path_lifetime_;
  std::unordered_map<NodeId, std::vector<DsrCachePath>> by_dst_;
  // Exact multiset of links present in stored paths, so remove_link — called
  // on every overheard/received RERR and every missing ACK — can reject the
  // common "no cached path uses that link" case in O(1) instead of scanning
  // the whole cache. Interior links (hops[i] -> hops[i+1]) live in
  // link_refs_; the implicit owner -> hops[0] link is tracked by first hop
  // alone (stored paths never contain the owner, so `from == owner` can only
  // match a path's leading link).
  std::unordered_map<std::uint64_t, std::uint32_t> link_refs_;
  std::unordered_map<NodeId, std::uint32_t> first_hop_refs_;
};

}  // namespace xfa
