#include "ml/dataset.h"

#include "common/check.h"

namespace xfa {

bool Dataset::valid() const {
  for (const auto& row : rows) {
    if (row.size() != cardinality.size()) {
      // valid() is a query: trap in debug builds, report in release.
      XFA_DCHECK(false) << "row width mismatch";
      return false;
    }
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (row[c] < 0 || row[c] >= cardinality[c]) {
        XFA_DCHECK(false) << "value out of cardinality range";
        return false;
      }
    }
  }
  return true;
}

int Classifier::predict(const std::vector<int>& row) const {
  const std::vector<double> dist = predict_dist(row);
  int best = 0;
  for (std::size_t v = 1; v < dist.size(); ++v)
    if (dist[v] > dist[best]) best = static_cast<int>(v);
  return best;
}

double Classifier::probability_of(const std::vector<int>& row,
                                  int class_value) const {
  const std::vector<double> dist = predict_dist(row);
  if (class_value < 0 || static_cast<std::size_t>(class_value) >= dist.size())
    return 0.0;
  return dist[static_cast<std::size_t>(class_value)];
}

std::vector<double> laplace_distribution(const std::vector<double>& counts) {
  std::vector<double> dist(counts.size());
  double total = 0;
  for (const double c : counts) total += c;
  const double denominator = total + static_cast<double>(counts.size());
  for (std::size_t v = 0; v < counts.size(); ++v)
    dist[v] = (counts[v] + 1.0) / denominator;
  return dist;
}

}  // namespace xfa
