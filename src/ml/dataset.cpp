#include "ml/dataset.h"

#include <algorithm>

#include "common/check.h"
#include "ml/dataset_view.h"

namespace xfa {

bool Dataset::valid() const {
  for (const auto& row : rows) {
    if (row.size() != cardinality.size()) {
      // valid() is a query: trap in debug builds, report in release.
      XFA_DCHECK(false) << "row width mismatch";
      return false;
    }
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (row[c] < 0 || row[c] >= cardinality[c]) {
        XFA_DCHECK(false) << "value out of cardinality range";
        return false;
      }
    }
  }
  return true;
}

void Classifier::fit(const DatasetView& view,
                     const std::vector<std::size_t>& feature_columns,
                     std::size_t label_column) {
  fit(view.source(), feature_columns, label_column);
}

std::size_t Classifier::predict_dist_into(const std::vector<int>& row,
                                          std::span<double> out) const {
  const std::vector<double> dist = predict_dist(row);
  XFA_CHECK_GE(out.size(), dist.size()) << "scoring scratch buffer too small";
  std::copy(dist.begin(), dist.end(), out.begin());
  return dist.size();
}

std::span<const double> Classifier::predict_dist_span(
    const std::vector<int>& row, std::span<double> scratch) const {
  return {scratch.data(), predict_dist_into(row, scratch)};
}

int Classifier::predict(const std::vector<int>& row) const {
  const std::vector<double> dist = predict_dist(row);
  int best = 0;
  for (std::size_t v = 1; v < dist.size(); ++v)
    if (dist[v] > dist[best]) best = static_cast<int>(v);
  return best;
}

double Classifier::probability_of(const std::vector<int>& row,
                                  int class_value) const {
  const std::vector<double> dist = predict_dist(row);
  if (class_value < 0 || static_cast<std::size_t>(class_value) >= dist.size())
    return 0.0;
  return dist[static_cast<std::size_t>(class_value)];
}

std::vector<double> laplace_distribution(const std::vector<double>& counts) {
  std::vector<double> dist(counts.size());
  double total = 0;
  for (const double c : counts) total += c;
  const double denominator = total + static_cast<double>(counts.size());
  for (std::size_t v = 0; v < counts.size(); ++v)
    dist[v] = (counts[v] + 1.0) / denominator;
  return dist;
}

void laplace_distribution_into(std::span<const double> counts,
                               std::span<double> out) {
  XFA_CHECK_GE(out.size(), counts.size()) << "scoring scratch buffer too small";
  double total = 0;
  for (const double c : counts) total += c;
  const double denominator = total + static_cast<double>(counts.size());
  for (std::size_t v = 0; v < counts.size(); ++v)
    out[v] = (counts[v] + 1.0) / denominator;
}

}  // namespace xfa
