#include "ml/c45.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/check.h"

namespace xfa {
namespace {

double entropy(const std::vector<double>& counts, double total) {
  if (total <= 0) return 0.0;
  double h = 0;
  for (const double c : counts) {
    if (c > 0) {
      const double p = c / total;
      h -= p * std::log2(p);
    }
  }
  return h;
}

/// Upper confidence bound on the error rate of a leaf that misclassifies
/// `errors` of `n` examples (Quinlan's pessimistic estimate; normal
/// approximation to the binomial upper limit with confidence CF).
double pessimistic_errors(double n, double errors, double cf) {
  if (n <= 0) return 0.0;
  // z for the one-sided upper bound at confidence cf (cf=0.25 -> z~0.6745).
  // Inverse normal CDF via Acklam-lite rational approximation is overkill;
  // for the CF range C4.5 uses (0.05..0.5) a small table + interpolation is
  // plenty and keeps this dependency-free.
  static constexpr struct {
    double cf, z;
  } kTable[] = {{0.05, 1.6449}, {0.10, 1.2816}, {0.20, 0.8416},
                {0.25, 0.6745}, {0.33, 0.4399}, {0.50, 0.0}};
  double z = 0.6745;
  for (std::size_t i = 1; i < std::size(kTable); ++i) {
    if (cf <= kTable[i].cf) {
      const auto& a = kTable[i - 1];
      const auto& b = kTable[i];
      const double frac = (cf - a.cf) / (b.cf - a.cf);
      z = a.z + frac * (b.z - a.z);
      break;
    }
  }
  const double f = errors / n;
  const double z2 = z * z;
  const double bound =
      (f + z2 / (2 * n) + z * std::sqrt(f / n - f * f / n + z2 / (4 * n * n))) /
      (1 + z2 / n);
  return bound * n;
}

}  // namespace

C45::C45(const C45Config& config) : config_(config) {}

void C45::fit(const Dataset& data,
              const std::vector<std::size_t>& feature_columns,
              std::size_t label_column) {
  XFA_CHECK(!data.rows.empty());
  XFA_CHECK_LT(label_column, data.columns());
  label_cardinality_ = data.cardinality[label_column];

  std::vector<std::size_t> all_rows(data.size());
  for (std::size_t i = 0; i < all_rows.size(); ++i) all_rows[i] = i;
  root_ = build(data, all_rows, feature_columns, label_column);
  if (config_.prune) prune_node(*root_);
}

std::unique_ptr<C45::TreeNode> C45::build(
    const Dataset& data, const std::vector<std::size_t>& rows,
    std::vector<std::size_t> available, std::size_t label_column) {
  auto node = std::make_unique<TreeNode>();
  node->class_counts.assign(static_cast<std::size_t>(label_cardinality_), 0.0);
  for (const std::size_t r : rows)
    node->class_counts[static_cast<std::size_t>(
        data.rows[r][label_column])] += 1.0;

  const double total = static_cast<double>(rows.size());
  const double node_entropy = entropy(node->class_counts, total);
  const bool pure = std::count_if(node->class_counts.begin(),
                                  node->class_counts.end(),
                                  [](double c) { return c > 0; }) <= 1;
  if (pure || available.empty() || rows.size() < config_.min_split_samples)
    return node;

  // Evaluate every candidate attribute: information gain and split info.
  struct Candidate {
    std::size_t column = 0;
    double gain = 0;
    double ratio = 0;
  };
  std::vector<Candidate> candidates;
  candidates.reserve(available.size());
  for (const std::size_t col : available) {
    const auto values = static_cast<std::size_t>(data.cardinality[col]);
    if (values < 2) continue;
    std::vector<std::vector<double>> partition_counts(
        values,
        std::vector<double>(static_cast<std::size_t>(label_cardinality_), 0));
    std::vector<double> partition_totals(values, 0);
    for (const std::size_t r : rows) {
      const auto v = static_cast<std::size_t>(data.rows[r][col]);
      partition_counts[v][static_cast<std::size_t>(
          data.rows[r][label_column])] += 1.0;
      partition_totals[v] += 1.0;
    }
    double conditional = 0, split_info = 0;
    std::size_t non_empty = 0;
    for (std::size_t v = 0; v < values; ++v) {
      if (partition_totals[v] <= 0) continue;
      ++non_empty;
      const double weight = partition_totals[v] / total;
      conditional += weight * entropy(partition_counts[v], partition_totals[v]);
      split_info -= weight * std::log2(weight);
    }
    if (non_empty < 2 || split_info <= 0) continue;
    Candidate c;
    c.column = col;
    c.gain = node_entropy - conditional;
    c.ratio = c.gain / split_info;
    if (c.gain > 1e-12) candidates.push_back(c);
  }
  if (candidates.empty()) return node;

  // C4.5's admissibility rule: choose the best gain *ratio* among attributes
  // whose gain is at least the average gain of all candidates.
  double avg_gain = 0;
  for (const Candidate& c : candidates) avg_gain += c.gain;
  avg_gain /= static_cast<double>(candidates.size());
  const Candidate* best = nullptr;
  for (const Candidate& c : candidates) {
    if (c.gain + 1e-12 >= avg_gain && (best == nullptr || c.ratio > best->ratio))
      best = &c;
  }
  if (best == nullptr) return node;

  node->split_column = best->column;
  std::vector<std::size_t> remaining;
  remaining.reserve(available.size() - 1);
  for (const std::size_t col : available)
    if (col != best->column) remaining.push_back(col);

  const auto values = static_cast<std::size_t>(
      data.cardinality[best->column]);
  std::vector<std::vector<std::size_t>> partitions(values);
  for (const std::size_t r : rows)
    partitions[static_cast<std::size_t>(data.rows[r][best->column])]
        .push_back(r);

  node->children.resize(values);
  for (std::size_t v = 0; v < values; ++v) {
    if (partitions[v].empty()) {
      // Empty branch: a leaf inheriting the parent distribution.
      auto leaf = std::make_unique<TreeNode>();
      leaf->class_counts = node->class_counts;
      node->children[v] = std::move(leaf);
    } else {
      node->children[v] =
          build(data, partitions[v], remaining, label_column);
    }
  }
  return node;
}

double C45::prune_node(TreeNode& node) {
  double total = 0, best = 0;
  for (const double c : node.class_counts) {
    total += c;
    best = std::max(best, c);
  }
  const double leaf_errors =
      pessimistic_errors(total, total - best, config_.prune_confidence);
  if (node.children.empty()) return leaf_errors;

  double subtree_errors = 0;
  for (const auto& child : node.children)
    subtree_errors += prune_node(*child);

  if (leaf_errors <= subtree_errors + 0.1) {
    // Replace the subtree with a leaf.
    node.children.clear();
    return leaf_errors;
  }
  return subtree_errors;
}

const C45::TreeNode* C45::walk(const std::vector<int>& row) const {
  XFA_CHECK(root_ != nullptr) << "predict before fit";
  const TreeNode* node = root_.get();
  while (!node->children.empty()) {
    const auto v = static_cast<std::size_t>(row[node->split_column]);
    if (v >= node->children.size()) break;  // unseen value: stop here
    node = node->children[v].get();
  }
  return node;
}

std::vector<double> C45::predict_dist(const std::vector<int>& row) const {
  return laplace_distribution(walk(row)->class_counts);
}

std::size_t C45::node_count() const {
  std::size_t count = 0;
  const std::function<void(const TreeNode&)> visit =
      [&](const TreeNode& node) {
        ++count;
        for (const auto& child : node.children) visit(*child);
      };
  if (root_) visit(*root_);
  return count;
}

std::string C45::describe(
    const std::vector<std::string>& feature_names) const {
  std::string out;
  const auto name_of = [&](std::size_t column) -> std::string {
    if (column < feature_names.size()) return feature_names[column];
    // Built up with += rather than `"f" + std::to_string(...)`: GCC 12's
    // -Wrestrict misfires on that operator+ chain at -O3 under -Werror.
    std::string fallback = "f";
    fallback += std::to_string(column);
    return fallback;
  };
  const std::function<void(const TreeNode&, int)> visit =
      [&](const TreeNode& node, int indent) {
        if (node.children.empty()) {
          double total = 0, best = 0;
          std::size_t best_class = 0;
          for (std::size_t v = 0; v < node.class_counts.size(); ++v) {
            total += node.class_counts[v];
            if (node.class_counts[v] > best) {
              best = node.class_counts[v];
              best_class = v;
            }
          }
          out += "-> class " + std::to_string(best_class) + "  (" +
                 std::to_string(static_cast<long>(best)) + "/" +
                 std::to_string(static_cast<long>(total)) + ")\n";
          return;
        }
        out += "split on " + name_of(node.split_column) + "\n";
        for (std::size_t v = 0; v < node.children.size(); ++v) {
          out.append(static_cast<std::size_t>(indent + 2), ' ');
          out += "= " + std::to_string(v) + ": ";
          visit(*node.children[v], indent + 2);
        }
      };
  if (root_) visit(*root_, 0);
  return out;
}

std::size_t C45::depth() const {
  const std::function<std::size_t(const TreeNode&)> visit =
      [&](const TreeNode& node) -> std::size_t {
    std::size_t deepest = 0;
    for (const auto& child : node.children)
      deepest = std::max(deepest, visit(*child));
    return deepest + 1;
  };
  return root_ ? visit(*root_) : 0;
}

}  // namespace xfa
