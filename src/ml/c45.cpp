#include "ml/c45.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/check.h"
#include "ml/log2_cache.h"

namespace xfa {
namespace {

double entropy(std::span<const double> counts, double total, Log2Memo& log2) {
  if (total <= 0) return 0.0;
  double h = 0;
  for (const double c : counts) {
    if (c > 0) {
      const double p = c / total;
      h -= p * log2(p);
    }
  }
  return h;
}

/// Upper confidence bound on the error rate of a leaf that misclassifies
/// `errors` of `n` examples (Quinlan's pessimistic estimate; normal
/// approximation to the binomial upper limit with confidence CF).
double pessimistic_errors(double n, double errors, double cf) {
  if (n <= 0) return 0.0;
  // z for the one-sided upper bound at confidence cf (cf=0.25 -> z~0.6745).
  // Inverse normal CDF via Acklam-lite rational approximation is overkill;
  // for the CF range C4.5 uses (0.05..0.5) a small table + interpolation is
  // plenty and keeps this dependency-free.
  static constexpr struct {
    double cf, z;
  } kTable[] = {{0.05, 1.6449}, {0.10, 1.2816}, {0.20, 0.8416},
                {0.25, 0.6745}, {0.33, 0.4399}, {0.50, 0.0}};
  // Clamp to the table's supported range instead of silently falling back
  // to the cf=0.25 z-value outside it (C45's constructor rejects configs
  // beyond (0, 0.5], so the clamp only matters for direct callers).
  cf = std::clamp(cf, kTable[0].cf, kTable[std::size(kTable) - 1].cf);
  double z = kTable[0].z;
  for (std::size_t i = 1; i < std::size(kTable); ++i) {
    if (cf <= kTable[i].cf) {
      const auto& a = kTable[i - 1];
      const auto& b = kTable[i];
      const double frac = (cf - a.cf) / (b.cf - a.cf);
      z = a.z + frac * (b.z - a.z);
      break;
    }
  }
  const double f = errors / n;
  const double z2 = z * z;
  const double bound =
      (f + z2 / (2 * n) + z * std::sqrt(f / n - f * f / n + z2 / (4 * n * n))) /
      (1 + z2 / n);
  return bound * n;
}

}  // namespace

C45::C45(const C45Config& config) : config_(config) {
  // The pessimistic-error z table covers (0, 0.5]; a CF above one half would
  // mean pruning on an *optimistic* error bound, which is never intended.
  XFA_CHECK_GT(config_.prune_confidence, 0.0)
      << "prune_confidence must be positive";
  XFA_CHECK_LE(config_.prune_confidence, 0.5)
      << "prune_confidence beyond 0.5 is outside the pessimistic-bound range";
}

void C45::fit(const Dataset& data,
              const std::vector<std::size_t>& feature_columns,
              std::size_t label_column) {
  fit(DatasetView(data), feature_columns, label_column);
}

void C45::fit(const DatasetView& view,
              const std::vector<std::size_t>& feature_columns,
              std::size_t label_column) {
  XFA_CHECK_GT(view.rows(), 0u);
  XFA_CHECK_LT(label_column, view.columns());
  label_cardinality_ = view.cardinality(label_column);
  const auto labels = static_cast<std::size_t>(label_cardinality_);
  const std::span<const std::int32_t> label_data = view.column(label_column);

  FitScratch scratch;
  scratch.rows = view.rows();
  scratch.index.resize(view.rows());
  for (std::size_t i = 0; i < view.rows(); ++i)
    scratch.index[i] = static_cast<std::uint32_t>(i);
  scratch.scatter.resize(view.rows());
  // Fused `value * labels + label` codes, one array per feature: the joint
  // (value, label) histogram every candidate needs becomes a single gather
  // plus a single increment per row.
  scratch.ordinal.assign(view.columns(), 0);
  scratch.codes.resize(feature_columns.size() * view.rows());
  for (std::size_t f = 0; f < feature_columns.size(); ++f) {
    scratch.ordinal[feature_columns[f]] = f;
    const std::span<const std::int32_t> col = view.column(feature_columns[f]);
    std::int32_t* const codes = scratch.codes.data() + f * view.rows();
    for (std::size_t r = 0; r < view.rows(); ++r)
      codes[r] = col[r] * label_cardinality_ + label_data[r];
  }
  // One private histogram slice per candidate so the winner's counts survive
  // the whole evaluation pass (children inherit them, no rescan).
  scratch.counts.resize(feature_columns.size() *
                        static_cast<std::size_t>(view.max_cardinality()) *
                        labels);
  // Depth is bounded by the feature count (every split consumes one), so the
  // per-level buffers can be pre-sized: ancestors hold references into
  // `levels` across the recursion, which must therefore never reallocate.
  scratch.levels.resize(feature_columns.size() + 1);

  root_ = std::make_unique<TreeNode>();
  root_->class_counts.assign(labels, 0.0);
  for (std::size_t r = 0; r < view.rows(); ++r)
    root_->class_counts[static_cast<std::size_t>(label_data[r])] += 1.0;
  grow(view, scratch, *root_, 0, view.rows(), 0, feature_columns,
       label_column);
  if (config_.prune) prune_node(*root_);
  cache_distributions(*root_);
}

void C45::grow(const DatasetView& view, FitScratch& scratch, TreeNode& node,
               std::size_t begin, std::size_t end, std::size_t depth,
               const std::vector<std::size_t>& available,
               std::size_t label_column) {
  const auto labels = static_cast<std::size_t>(label_cardinality_);

  const double total = static_cast<double>(end - begin);
  const double node_entropy =
      entropy(node.class_counts, total, scratch.log2);
  const bool pure = std::count_if(node.class_counts.begin(),
                                  node.class_counts.end(),
                                  [](double c) { return c > 0; }) <= 1;
  if (pure || available.empty() || end - begin < config_.min_split_samples)
    return;

  // Evaluate every candidate attribute: information gain and split info.
  // Each candidate gets a private slice of the histogram arena (value-major,
  // label-minor), so the winner's counts are still live after the pass.
  const std::size_t slice =
      static_cast<std::size_t>(view.max_cardinality()) * labels;
  std::vector<ScanSlot>& scans = scratch.scans;
  scans.clear();
  for (const std::size_t col : available) {
    const auto values = static_cast<std::size_t>(view.cardinality(col));
    if (values < 2) continue;
    ScanSlot s;
    s.column = col;
    s.values = values;
    s.codes = scratch.codes.data() + scratch.ordinal[col] * scratch.rows;
    s.counts = scratch.counts.data() + scans.size() * slice;
    std::fill_n(s.counts, values * labels, 0.0);
    scans.push_back(s);
  }
  // Histogram pass, two candidates at a time: one row-index load feeds both
  // fused-code gathers. Each bucket still receives exactly its own +1.0
  // increments in row order, so every histogram is bit-identical to the
  // one-candidate-at-a-time scan.
  std::size_t pair = 0;
  for (; pair + 1 < scans.size(); pair += 2) {
    const ScanSlot& a = scans[pair];
    const ScanSlot& b = scans[pair + 1];
    for (std::size_t i = begin; i < end; ++i) {
      const std::uint32_t r = scratch.index[i];
      a.counts[static_cast<std::size_t>(a.codes[r])] += 1.0;
      b.counts[static_cast<std::size_t>(b.codes[r])] += 1.0;
    }
  }
  if (pair < scans.size()) {
    const ScanSlot& a = scans[pair];
    for (std::size_t i = begin; i < end; ++i)
      a.counts[static_cast<std::size_t>(a.codes[scratch.index[i]])] += 1.0;
  }
  std::vector<Candidate>& candidates = scratch.candidates;
  candidates.clear();
  for (const ScanSlot& s : scans) {
    const std::size_t values = s.values;
    const double* const counts = s.counts;
    // One fused pass per value: total (the row sum of the joint counts —
    // integral additions, exactly the doubles the interleaved increments
    // produced), then the value's entropy and split-info terms, with no
    // intermediate totals array and no out-of-line entropy call. Every
    // double operation happens in the same order as the two-pass version.
    double conditional = 0, split_info = 0;
    std::size_t non_empty = 0;
    // Counts are integral, so each p*log2(p) term is keyed by its (count,
    // total) pair: small totals hit the direct-indexed table, large ones
    // fall back to the bit-pattern memo — both return the exact double the
    // division-plus-log2 computed the first time.
    const bool small = RatioMemo<PLog2PFn>::covers(total);
    for (std::size_t v = 0; v < values; ++v) {
      const double* const bucket = counts + v * labels;
      double t = 0;
      for (std::size_t l = 0; l < labels; ++l) t += bucket[l];
      if (t <= 0) continue;
      ++non_empty;
      double h = 0;
      if (small) {  // t <= total, so the whole value fits the pair table
        for (std::size_t l = 0; l < labels; ++l)
          if (bucket[l] > 0) h -= scratch.plogp(bucket[l], t);
        split_info -= scratch.plogp(t, total);
      } else {
        for (std::size_t l = 0; l < labels; ++l) {
          if (bucket[l] > 0) {
            const double p = bucket[l] / t;
            h -= p * scratch.log2(p);
          }
        }
        const double w = t / total;
        split_info -= w * scratch.log2(w);
      }
      conditional += (t / total) * h;
    }
    if (non_empty < 2 || split_info <= 0) continue;
    Candidate c;
    c.column = s.column;
    c.gain = node_entropy - conditional;
    c.ratio = c.gain / split_info;
    c.counts = counts;
    if (c.gain > 1e-12) candidates.push_back(c);
  }
  if (candidates.empty()) return;

  // C4.5's admissibility rule: choose the best gain *ratio* among attributes
  // whose gain is at least the average gain of all candidates.
  double avg_gain = 0;
  for (const Candidate& c : candidates) avg_gain += c.gain;
  avg_gain /= static_cast<double>(candidates.size());
  const Candidate* best = nullptr;
  for (const Candidate& c : candidates) {
    if (c.gain + 1e-12 >= avg_gain && (best == nullptr || c.ratio > best->ratio))
      best = &c;
  }
  if (best == nullptr) return;

  node.split_column = best->column;
  LevelScratch& level = scratch.levels[depth];
  std::vector<std::size_t>& remaining = level.remaining;
  remaining.clear();
  for (const std::size_t col : available)
    if (col != best->column) remaining.push_back(col);

  // The winner's histogram slice is still live: its per-value rows are
  // exactly the children's class counts, and its totals drive the counting
  // sort — children skip both their class-count pass and the histogram pass,
  // and the old winner-column rescan over the node's rows is gone entirely.
  const auto values = static_cast<std::size_t>(
      view.cardinality(best->column));
  const double* const counts = best->counts;

  std::vector<std::size_t>& child_begin = level.child_begin;
  child_begin.assign(values + 1, 0);
  for (std::size_t v = 0; v < values; ++v) {
    double t = 0;
    for (std::size_t l = 0; l < labels; ++l) t += counts[v * labels + l];
    child_begin[v + 1] = child_begin[v] + static_cast<std::size_t>(t);
  }

  // Children are created (class counts inherited from the winner's slices)
  // before any recursion, because descendants clobber the scratch counts.
  node.children.resize(values);
  for (std::size_t v = 0; v < values; ++v) {
    auto child = std::make_unique<TreeNode>();
    if (child_begin[v] == child_begin[v + 1]) {
      // Empty branch: a leaf inheriting the parent distribution.
      child->class_counts = node.class_counts;
    } else {
      child->class_counts.assign(counts + v * labels,
                                 counts + (v + 1) * labels);
    }
    node.children[v] = std::move(child);
  }

  // Stable counting sort of the index range by split value: children see
  // rows in the same relative order the per-value row-id vectors used to
  // produce, so the grown tree is identical.
  const std::span<const std::int32_t> split_data = view.column(best->column);
  {
    std::vector<std::size_t>& cursor = scratch.cursor;
    cursor.assign(child_begin.begin(), child_begin.begin() + values);
    for (std::size_t i = begin; i < end; ++i) {
      const std::uint32_t r = scratch.index[i];
      const auto v = static_cast<std::size_t>(split_data[r]);
      scratch.scatter[begin + cursor[v]++] = r;
    }
  }
  std::copy(scratch.scatter.begin() + static_cast<std::ptrdiff_t>(begin),
            scratch.scatter.begin() + static_cast<std::ptrdiff_t>(end),
            scratch.index.begin() + static_cast<std::ptrdiff_t>(begin));

  for (std::size_t v = 0; v < values; ++v) {
    if (child_begin[v] == child_begin[v + 1]) continue;
    grow(view, scratch, *node.children[v], begin + child_begin[v],
         begin + child_begin[v + 1], depth + 1, remaining, label_column);
  }
}

double C45::prune_node(TreeNode& node) {
  double total = 0, best = 0;
  for (const double c : node.class_counts) {
    total += c;
    best = std::max(best, c);
  }
  const double leaf_errors =
      pessimistic_errors(total, total - best, config_.prune_confidence);
  if (node.children.empty()) return leaf_errors;

  double subtree_errors = 0;
  for (const auto& child : node.children)
    subtree_errors += prune_node(*child);

  if (leaf_errors <= subtree_errors + 0.1) {
    // Replace the subtree with a leaf.
    node.children.clear();
    return leaf_errors;
  }
  return subtree_errors;
}

void C45::cache_distributions(TreeNode& node) {
  // Every node gets a distribution, not just leaves: walk() stops at an
  // internal node when it meets an attribute value unseen in training.
  node.dist = laplace_distribution(node.class_counts);
  for (const auto& child : node.children) cache_distributions(*child);
}

const C45::TreeNode* C45::walk(const std::vector<int>& row) const {
  XFA_CHECK(root_ != nullptr) << "predict before fit";
  const TreeNode* node = root_.get();
  while (!node->children.empty()) {
    const auto v = static_cast<std::size_t>(row[node->split_column]);
    if (v >= node->children.size()) break;  // unseen value: stop here
    node = node->children[v].get();
  }
  return node;
}

std::vector<double> C45::predict_dist(const std::vector<int>& row) const {
  return walk(row)->dist;
}

std::size_t C45::predict_dist_into(const std::vector<int>& row,
                                   std::span<double> out) const {
  const std::vector<double>& dist = walk(row)->dist;
  XFA_CHECK_GE(out.size(), dist.size()) << "scoring scratch buffer too small";
  std::copy(dist.begin(), dist.end(), out.begin());
  return dist.size();
}

std::span<const double> C45::predict_dist_span(
    const std::vector<int>& row, std::span<double> /*scratch*/) const {
  // Zero-copy: the walk ends at a node whose Laplace distribution was cached
  // at fit time; batch scoring reads it in place.
  const std::vector<double>& dist = walk(row)->dist;
  return {dist.data(), dist.size()};
}

std::size_t C45::count_nodes(const TreeNode& node) {
  std::size_t count = 1;
  for (const auto& child : node.children) count += count_nodes(*child);
  return count;
}

std::size_t C45::node_count() const {
  return root_ ? count_nodes(*root_) : 0;
}

std::string C45::describe(
    const std::vector<std::string>& feature_names) const {
  std::string out;
  const auto name_of = [&](std::size_t column) -> std::string {
    if (column < feature_names.size()) return feature_names[column];
    // Built up with += rather than `"f" + std::to_string(...)`: GCC 12's
    // -Wrestrict misfires on that operator+ chain at -O3 under -Werror.
    std::string fallback = "f";
    fallback += std::to_string(column);
    return fallback;
  };
  const std::function<void(const TreeNode&, int)> visit =
      [&](const TreeNode& node, int indent) {
        if (node.children.empty()) {
          double total = 0, best = 0;
          std::size_t best_class = 0;
          for (std::size_t v = 0; v < node.class_counts.size(); ++v) {
            total += node.class_counts[v];
            if (node.class_counts[v] > best) {
              best = node.class_counts[v];
              best_class = v;
            }
          }
          out += "-> class " + std::to_string(best_class) + "  (" +
                 std::to_string(static_cast<long>(best)) + "/" +
                 std::to_string(static_cast<long>(total)) + ")\n";
          return;
        }
        out += "split on " + name_of(node.split_column) + "\n";
        for (std::size_t v = 0; v < node.children.size(); ++v) {
          out.append(static_cast<std::size_t>(indent + 2), ' ');
          out += "= " + std::to_string(v) + ": ";
          visit(*node.children[v], indent + 2);
        }
      };
  if (root_) visit(*root_, 0);
  return out;
}

std::size_t C45::subtree_depth(const TreeNode& node) {
  std::size_t deepest = 0;
  for (const auto& child : node.children)
    deepest = std::max(deepest, subtree_depth(*child));
  return deepest + 1;
}

std::size_t C45::depth() const { return root_ ? subtree_depth(*root_) : 0; }

}  // namespace xfa
