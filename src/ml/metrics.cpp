#include "ml/metrics.h"

#include "common/check.h"
#include "sim/rng.h"

namespace xfa {

double accuracy(const Classifier& classifier, const Dataset& data,
                std::size_t label_column) {
  if (data.rows.empty()) return 0.0;
  std::size_t correct = 0;
  for (const auto& row : data.rows)
    if (classifier.predict(row) == row[label_column]) ++correct;
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

std::vector<std::vector<std::size_t>> confusion_matrix(
    const Classifier& classifier, const Dataset& data,
    std::size_t label_column) {
  const auto classes = static_cast<std::size_t>(
      data.cardinality[label_column]);
  std::vector<std::vector<std::size_t>> confusion(
      classes, std::vector<std::size_t>(classes, 0));
  for (const auto& row : data.rows) {
    const auto truth = static_cast<std::size_t>(row[label_column]);
    const auto predicted = static_cast<std::size_t>(classifier.predict(row));
    if (predicted < classes) ++confusion[truth][predicted];
  }
  return confusion;
}

std::vector<std::size_t> kfold_assignment(std::size_t rows, std::size_t folds,
                                          std::uint64_t seed) {
  XFA_CHECK_GT(folds, 0);
  std::vector<std::size_t> assignment(rows);
  for (std::size_t i = 0; i < rows; ++i) assignment[i] = i % folds;
  Rng rng(seed);
  for (std::size_t i = rows; i > 1; --i)
    std::swap(assignment[i - 1],
              assignment[static_cast<std::size_t>(rng.uniform_int(i))]);
  return assignment;
}

}  // namespace xfa
