#include "ml/naive_bayes.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "ml/log2_cache.h"

namespace xfa {

void NaiveBayes::fit(const Dataset& data,
                     const std::vector<std::size_t>& feature_columns,
                     std::size_t label_column) {
  fit(DatasetView(data), feature_columns, label_column);
}

void NaiveBayes::fit(const DatasetView& view,
                     const std::vector<std::size_t>& feature_columns,
                     std::size_t label_column) {
  XFA_CHECK_GT(view.rows(), 0u);
  feature_columns_ = feature_columns;
  const auto classes = static_cast<std::size_t>(view.cardinality(label_column));
  class_counts_.assign(classes, 0);
  total_ = static_cast<double>(view.rows());

  const std::span<const std::int32_t> label_data = view.column(label_column);
  for (std::size_t r = 0; r < view.rows(); ++r)
    class_counts_[static_cast<std::size_t>(label_data[r])] += 1.0;

  cond_offset_.resize(feature_columns_.size());
  feature_cardinality_.resize(feature_columns_.size());
  std::size_t flat_size = 0;
  for (std::size_t f = 0; f < feature_columns_.size(); ++f) {
    cond_offset_[f] = flat_size;
    feature_cardinality_[f] = view.cardinality(feature_columns_[f]);
    flat_size += classes * static_cast<std::size_t>(feature_cardinality_[f]);
  }
  cond_flat_.assign(flat_size, 0.0);

  // Column-major accumulation: one pass over (label, feature) column pairs.
  // Counts are integral +1.0 increments, so the totals are exactly the same
  // values the old row-major interleaved pass produced.
  for (std::size_t f = 0; f < feature_columns_.size(); ++f) {
    const std::span<const std::int32_t> col_data =
        view.column(feature_columns_[f]);
    const auto card = static_cast<std::size_t>(feature_cardinality_[f]);
    double* const table = cond_flat_.data() + cond_offset_[f];
    for (std::size_t r = 0; r < view.rows(); ++r) {
      table[static_cast<std::size_t>(label_data[r]) * card +
            static_cast<std::size_t>(col_data[r])] += 1.0;
    }
  }

  // Convert counts to the Laplace-smoothed log terms predict sums — the
  // exact doubles std::log produced per prediction before, computed once.
  // The memo collapses the heavily repeated (count+1)/denominator ratios to
  // one libm call each (bit-identical values).
  LnMemo log;
  prior_log_.resize(classes);
  for (std::size_t c = 0; c < classes; ++c)
    prior_log_[c] = log((class_counts_[c] + 1.0) /
                        (total_ + static_cast<double>(classes)));
  unseen_log_.resize(feature_columns_.size() * classes);
  for (std::size_t f = 0; f < feature_columns_.size(); ++f) {
    const auto card = static_cast<std::size_t>(feature_cardinality_[f]);
    double* const table = cond_flat_.data() + cond_offset_[f];
    for (std::size_t c = 0; c < classes; ++c) {
      const double denominator =
          class_counts_[c] + static_cast<double>(card);
      for (std::size_t v = 0; v < card; ++v)
        table[c * card + v] = log((table[c * card + v] + 1.0) /
                                  denominator);
      unseen_log_[f * classes + c] = log(1.0 / denominator);
    }
  }
}

std::size_t NaiveBayes::predict_dist_into(const std::vector<int>& row,
                                          std::span<double> out) const {
  XFA_CHECK(!class_counts_.empty()) << "predict before fit";
  const std::size_t classes = class_counts_.size();
  XFA_CHECK_GE(out.size(), classes) << "scoring scratch buffer too small";
  // Work in log space to avoid underflow across ~140 factors; `out` holds
  // the log scores, then is normalized in place. All log terms were
  // precomputed at fit time, so this is a pure table walk.
  for (std::size_t c = 0; c < classes; ++c) {
    out[c] = prior_log_[c];
    for (std::size_t f = 0; f < feature_columns_.size(); ++f) {
      const auto card = static_cast<std::size_t>(feature_cardinality_[f]);
      const double* const table =
          cond_flat_.data() + cond_offset_[f] + c * card;
      const auto v = static_cast<std::size_t>(row[feature_columns_[f]]);
      out[c] += v < card ? table[v] : unseen_log_[f * classes + c];
    }
  }
  // Normalize: p(l_i|x) = n(l_i|x) / sum_k n(l_k|x).
  const double max_log =
      *std::max_element(out.begin(), out.begin() + classes);
  double sum = 0;
  for (std::size_t c = 0; c < classes; ++c) {
    out[c] = std::exp(out[c] - max_log);
    sum += out[c];
  }
  for (std::size_t c = 0; c < classes; ++c) out[c] /= sum;
  return classes;
}

std::vector<double> NaiveBayes::predict_dist(
    const std::vector<int>& row) const {
  XFA_CHECK(!class_counts_.empty()) << "predict before fit";
  std::vector<double> dist(class_counts_.size());
  predict_dist_into(row, dist);
  return dist;
}

}  // namespace xfa
