#include "ml/naive_bayes.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace xfa {

void NaiveBayes::fit(const Dataset& data,
                     const std::vector<std::size_t>& feature_columns,
                     std::size_t label_column) {
  XFA_CHECK(!data.rows.empty());
  feature_columns_ = feature_columns;
  const auto classes = static_cast<std::size_t>(
      data.cardinality[label_column]);
  class_counts_.assign(classes, 0);
  total_ = static_cast<double>(data.size());

  cond_.assign(feature_columns_.size(), {});
  for (std::size_t f = 0; f < feature_columns_.size(); ++f) {
    cond_[f].assign(classes,
                    std::vector<double>(static_cast<std::size_t>(
                                            data.cardinality[
                                                feature_columns_[f]]),
                                        0.0));
  }

  for (const auto& row : data.rows) {
    const auto label = static_cast<std::size_t>(row[label_column]);
    class_counts_[label] += 1.0;
    for (std::size_t f = 0; f < feature_columns_.size(); ++f)
      cond_[f][label][static_cast<std::size_t>(
          row[feature_columns_[f]])] += 1.0;
  }
}

std::vector<double> NaiveBayes::predict_dist(
    const std::vector<int>& row) const {
  XFA_CHECK(!class_counts_.empty()) << "predict before fit";
  const std::size_t classes = class_counts_.size();
  // Work in log space to avoid underflow across ~140 factors.
  std::vector<double> log_score(classes);
  for (std::size_t c = 0; c < classes; ++c) {
    log_score[c] = std::log((class_counts_[c] + 1.0) /
                            (total_ + static_cast<double>(classes)));
    for (std::size_t f = 0; f < feature_columns_.size(); ++f) {
      const auto& counts = cond_[f][c];
      const auto v = static_cast<std::size_t>(row[feature_columns_[f]]);
      const double value_count = v < counts.size() ? counts[v] : 0.0;
      log_score[c] += std::log(
          (value_count + 1.0) /
          (class_counts_[c] + static_cast<double>(counts.size())));
    }
  }
  // Normalize: p(l_i|x) = n(l_i|x) / sum_k n(l_k|x).
  const double max_log = *std::max_element(log_score.begin(), log_score.end());
  std::vector<double> dist(classes);
  double sum = 0;
  for (std::size_t c = 0; c < classes; ++c) {
    dist[c] = std::exp(log_score[c] - max_log);
    sum += dist[c];
  }
  for (double& p : dist) p /= sum;
  return dist;
}

}  // namespace xfa
