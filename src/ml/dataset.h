// Discrete dataset and the classifier interface shared by C4.5, RIPPER and
// the naive Bayes classifier.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace xfa {

class DatasetView;

/// A table of nominal (bucket-indexed) values. Every classifier consumes
/// this; which column acts as the label is chosen per fit() call, which is
/// exactly what cross-feature analysis needs.
struct Dataset {
  std::vector<std::vector<int>> rows;  // row-major
  std::vector<int> cardinality;        // per column: values are [0, card)
  std::vector<std::string> names;      // optional column names

  std::size_t size() const { return rows.size(); }
  std::size_t columns() const { return cardinality.size(); }

  /// Validates invariants (row widths, value ranges). Aborts in debug builds
  /// on violation; returns false in release builds.
  bool valid() const;
};

/// Supervised classifier over nominal features with probabilistic output.
class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Trains to predict `data.rows[*][label_column]` from `feature_columns`.
  /// `feature_columns` must not contain `label_column`.
  virtual void fit(const Dataset& data,
                   const std::vector<std::size_t>& feature_columns,
                   std::size_t label_column) = 0;

  /// Column-major fast path: trains from a prebuilt DatasetView (the
  /// cross-feature model builds one view and shares it across all L
  /// sub-model fits). The default delegates to the row-major fit on
  /// `view.source()`; the in-tree classifiers override it with cache-linear
  /// column scans. Both paths produce bit-identical models.
  virtual void fit(const DatasetView& view,
                   const std::vector<std::size_t>& feature_columns,
                   std::size_t label_column);

  /// Probability distribution over the label's value space, for a full-width
  /// row (the classifier reads only its feature columns).
  virtual std::vector<double> predict_dist(
      const std::vector<int>& row) const = 0;

  /// Allocation-free scoring: writes the distribution into the front of
  /// `out` and returns the number of classes written. `out` must be at
  /// least label-cardinality wide (the cross-feature model sizes one
  /// scratch buffer to the widest sub-model and reuses it per row). The
  /// default shim calls predict_dist() and copies; overrides produce values
  /// bit-identical to predict_dist().
  virtual std::size_t predict_dist_into(const std::vector<int>& row,
                                        std::span<double> out) const;

  /// Zero-copy flavour of predict_dist_into: returns a view of the
  /// distribution, which either aliases `scratch` (after writing into it) or
  /// points at state cached inside the classifier at fit time — C4.5 and
  /// RIPPER return their cached per-leaf/per-rule distributions without
  /// copying. Valid only until the next call on this classifier or the next
  /// write to `scratch`. Values are bit-identical to predict_dist().
  virtual std::span<const double> predict_dist_span(
      const std::vector<int>& row, std::span<double> scratch) const;

  /// Most probable class.
  int predict(const std::vector<int>& row) const;

  /// Estimated probability of a specific class value — the p(f_i(x)|x) used
  /// by Algorithm 3.
  double probability_of(const std::vector<int>& row, int class_value) const;

  virtual const char* name() const = 0;

  /// Human-readable rendering of the fitted model (the paper: "the resulting
  /// model is fairly easy to comprehend and can be examined by human
  /// experts"). `feature_names` indexes the full-width columns; pass the
  /// dataset's names. Default: an opaque placeholder.
  virtual std::string describe(
      const std::vector<std::string>& feature_names) const {
    (void)feature_names;
    return std::string("(") + name() + ": no rendering)\n";
  }
};

/// Produces fresh classifier instances; the cross-feature model needs one
/// per labelled feature.
using ClassifierFactory = std::function<std::unique_ptr<Classifier>()>;

/// Utility: Laplace-smoothed distribution from raw class counts.
std::vector<double> laplace_distribution(const std::vector<double>& counts);

/// In-place flavour for reused scratch buffers; writes counts.size() values
/// into the front of `out` (which must be at least that wide). Arithmetic is
/// identical to laplace_distribution.
void laplace_distribution_into(std::span<const double> counts,
                               std::span<double> out);

}  // namespace xfa
