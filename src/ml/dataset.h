// Discrete dataset and the classifier interface shared by C4.5, RIPPER and
// the naive Bayes classifier.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace xfa {

/// A table of nominal (bucket-indexed) values. Every classifier consumes
/// this; which column acts as the label is chosen per fit() call, which is
/// exactly what cross-feature analysis needs.
struct Dataset {
  std::vector<std::vector<int>> rows;  // row-major
  std::vector<int> cardinality;        // per column: values are [0, card)
  std::vector<std::string> names;      // optional column names

  std::size_t size() const { return rows.size(); }
  std::size_t columns() const { return cardinality.size(); }

  /// Validates invariants (row widths, value ranges). Aborts in debug builds
  /// on violation; returns false in release builds.
  bool valid() const;
};

/// Supervised classifier over nominal features with probabilistic output.
class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Trains to predict `data.rows[*][label_column]` from `feature_columns`.
  /// `feature_columns` must not contain `label_column`.
  virtual void fit(const Dataset& data,
                   const std::vector<std::size_t>& feature_columns,
                   std::size_t label_column) = 0;

  /// Probability distribution over the label's value space, for a full-width
  /// row (the classifier reads only its feature columns).
  virtual std::vector<double> predict_dist(
      const std::vector<int>& row) const = 0;

  /// Most probable class.
  int predict(const std::vector<int>& row) const;

  /// Estimated probability of a specific class value — the p(f_i(x)|x) used
  /// by Algorithm 3.
  double probability_of(const std::vector<int>& row, int class_value) const;

  virtual const char* name() const = 0;

  /// Human-readable rendering of the fitted model (the paper: "the resulting
  /// model is fairly easy to comprehend and can be examined by human
  /// experts"). `feature_names` indexes the full-width columns; pass the
  /// dataset's names. Default: an opaque placeholder.
  virtual std::string describe(
      const std::vector<std::string>& feature_names) const {
    (void)feature_names;
    return std::string("(") + name() + ": no rendering)\n";
  }
};

/// Produces fresh classifier instances; the cross-feature model needs one
/// per labelled feature.
using ClassifierFactory = std::function<std::unique_ptr<Classifier>()>;

/// Utility: Laplace-smoothed distribution from raw class counts.
std::vector<double> laplace_distribution(const std::vector<double>& counts);

}  // namespace xfa
