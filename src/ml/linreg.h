// Multiple linear regression, for the paper's continuous-feature extension:
// "To generalize the framework to continuous features ... we can either
// discretize it or use multiple linear regression. With multiple linear
// regression, we use log distance, |log(C_i(x)/f_i(x))|, to measure the
// difference of prediction from true value."
#pragma once

#include <vector>

namespace xfa {

class LinearRegression {
 public:
  /// Fits y ~ w.x + b by least squares (normal equations with a small ridge
  /// term for numerical stability). Rows of x must all have equal width.
  void fit(const std::vector<std::vector<double>>& x,
           const std::vector<double>& y, double ridge = 1e-6);

  bool fitted() const { return !weights_.empty(); }
  double predict(const std::vector<double>& row) const;

  /// The paper's log-distance deviation measure |log(pred/actual)|, made
  /// total by an epsilon floor on both operands.
  static double log_distance(double predicted, double actual,
                             double epsilon = 1e-6);

  const std::vector<double>& weights() const { return weights_; }
  double intercept() const { return intercept_; }

 private:
  std::vector<double> weights_;
  double intercept_ = 0;
};

}  // namespace xfa
