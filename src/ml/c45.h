// C4.5 decision tree (Quinlan 1993): multiway nominal splits chosen by gain
// ratio with the average-gain admissibility heuristic, and pessimistic
// (confidence-bound) subtree-replacement pruning.
//
// Leaf probabilities follow the paper §3: "Suppose that n is the total number
// of examples in a leaf node and n_i is the number of examples with class
// label l_i in the same leaf. p(l_i|x) = n_i / n" (we Laplace-smooth so no
// class is ever impossible).
#pragma once

#include <memory>
#include <vector>

#include "ml/dataset.h"

namespace xfa {

struct C45Config {
  std::size_t min_split_samples = 4;  // don't split smaller nodes
  double prune_confidence = 0.25;     // Quinlan's CF default
  bool prune = true;
};

class C45 final : public Classifier {
 public:
  explicit C45(const C45Config& config = {});

  void fit(const Dataset& data,
           const std::vector<std::size_t>& feature_columns,
           std::size_t label_column) override;
  std::vector<double> predict_dist(const std::vector<int>& row) const override;
  const char* name() const override { return "C4.5"; }

  std::size_t node_count() const;
  std::size_t depth() const;

  /// Indented if/then rendering of the tree.
  std::string describe(
      const std::vector<std::string>& feature_names) const override;

 private:
  struct TreeNode {
    // Leaf when children is empty.
    std::vector<double> class_counts;  // training distribution at this node
    std::size_t split_column = 0;      // valid for internal nodes
    std::vector<std::unique_ptr<TreeNode>> children;  // per attribute value
  };

  std::unique_ptr<TreeNode> build(const Dataset& data,
                                  const std::vector<std::size_t>& rows,
                                  std::vector<std::size_t> available,
                                  std::size_t label_column);
  /// Pessimistic-error pruning; returns the subtree's estimated error count.
  double prune_node(TreeNode& node);
  const TreeNode* walk(const std::vector<int>& row) const;

  C45Config config_;
  std::unique_ptr<TreeNode> root_;
  int label_cardinality_ = 0;
};

}  // namespace xfa
