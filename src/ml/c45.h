// C4.5 decision tree (Quinlan 1993): multiway nominal splits chosen by gain
// ratio with the average-gain admissibility heuristic, and pessimistic
// (confidence-bound) subtree-replacement pruning.
//
// Leaf probabilities follow the paper §3: "Suppose that n is the total number
// of examples in a leaf node and n_i is the number of examples with class
// label l_i in the same leaf. p(l_i|x) = n_i / n" (we Laplace-smooth so no
// class is ever impossible).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "ml/dataset.h"
#include "ml/dataset_view.h"
#include "ml/log2_cache.h"

namespace xfa {

struct C45Config {
  std::size_t min_split_samples = 4;  // don't split smaller nodes
  double prune_confidence = 0.25;     // Quinlan's CF default; (0, 0.5]
  bool prune = true;
};

class C45 final : public Classifier {
 public:
  explicit C45(const C45Config& config = {});

  void fit(const Dataset& data,
           const std::vector<std::size_t>& feature_columns,
           std::size_t label_column) override;
  void fit(const DatasetView& view,
           const std::vector<std::size_t>& feature_columns,
           std::size_t label_column) override;
  std::vector<double> predict_dist(const std::vector<int>& row) const override;
  std::size_t predict_dist_into(const std::vector<int>& row,
                                std::span<double> out) const override;
  std::span<const double> predict_dist_span(
      const std::vector<int>& row, std::span<double> scratch) const override;
  const char* name() const override { return "C4.5"; }

  std::size_t node_count() const;
  std::size_t depth() const;

  /// Indented if/then rendering of the tree.
  std::string describe(
      const std::vector<std::string>& feature_names) const override;

 private:
  struct TreeNode {
    // Leaf when children is empty.
    std::vector<double> class_counts;  // training distribution at this node
    std::vector<double> dist;          // cached Laplace distribution
    std::size_t split_column = 0;      // valid for internal nodes
    std::vector<std::unique_ptr<TreeNode>> children;  // per attribute value
  };

  /// Per-fit scratch arena: a row-index permutation recursed over as
  /// [begin, end) ranges (partitioned in place by stable counting sort into
  /// `scatter`), fused per-feature `value * labels + label` code arrays (so
  /// every candidate scan is one gather plus one increment per row), a
  /// histogram arena holding one private slice per candidate (candidates are
  /// scanned two at a time so one row-index load feeds both gathers, and the
  /// winner's surviving slice supplies the children's class counts with no
  /// rescan), and per-depth buffers for the state that must survive the
  /// recursion into children — allocated once per tree level, not per node.
  struct Candidate {
    std::size_t column = 0;
    double gain = 0;
    double ratio = 0;
    const double* counts = nullptr;  // this candidate's slice of the arena
  };
  struct ScanSlot {
    std::size_t column = 0;
    std::size_t values = 0;
    const std::int32_t* codes = nullptr;  // fused codes for this column
    double* counts = nullptr;             // private value*label histogram
  };
  struct LevelScratch {
    std::vector<std::size_t> remaining;    // candidate columns for children
    std::vector<std::size_t> child_begin;  // per-value partition offsets
  };
  struct FitScratch {
    std::vector<std::uint32_t> index;    // permuted row ids
    std::vector<std::uint32_t> scatter;  // counting-sort target
    std::vector<std::int32_t> codes;     // fused codes, [ordinal * rows + row]
    std::vector<std::size_t> ordinal;    // column id -> ordinal into `codes`
    std::vector<double> counts;          // candidate histograms, one slice each
    std::vector<ScanSlot> scans;         // per-node, dead before recursion
    std::vector<Candidate> candidates;   // same
    std::vector<std::size_t> cursor;     // counting-sort cursors, same
    std::vector<LevelScratch> levels;    // state outliving the recursion
    Log2Memo log2;                       // memoized entropy/split-info terms
    RatioMemo<PLog2PFn> plogp;           // small-count p*log2(p) pair table
    std::size_t rows = 0;
  };

  /// Grows the subtree under `node`, whose `class_counts` the caller has
  /// already filled (the root from the label column, children from the
  /// winning candidate's count slices).
  void grow(const DatasetView& view, FitScratch& scratch, TreeNode& node,
            std::size_t begin, std::size_t end, std::size_t depth,
            const std::vector<std::size_t>& available,
            std::size_t label_column);
  /// Pessimistic-error pruning; returns the subtree's estimated error count.
  double prune_node(TreeNode& node);
  /// Fills every node's cached Laplace distribution (run after pruning, so
  /// the per-predict smoothing arithmetic happens exactly once per node).
  static void cache_distributions(TreeNode& node);
  const TreeNode* walk(const std::vector<int>& row) const;
  static std::size_t count_nodes(const TreeNode& node);
  static std::size_t subtree_depth(const TreeNode& node);

  C45Config config_;
  std::unique_ptr<TreeNode> root_;
  int label_cardinality_ = 0;
};

}  // namespace xfa
