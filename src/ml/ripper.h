// RIPPER rule learner (Cohen 1995), decision-list flavour.
//
// Classes are handled in order of increasing frequency; for each class an
// IREP*-style loop grows rules on 2/3 of the remaining data (FOIL gain),
// prunes them on the other 1/3 (coverage value (p-n)/(p+n)), and stops when
// pruned-rule precision drops below one half. The most frequent class is the
// default. Rule probabilities are the Laplace-smoothed class counts of the
// training examples each rule covers, per the paper §3 ("We calculate
// probability in a similar way for decision rule classifiers, e.g. RIPPER").
//
// Simplification vs. Cohen's full RIPPER: the MDL-based global optimization
// passes are omitted; the decision-list construction and grow/prune core are
// faithful. (Documented in DESIGN.md.)
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ml/dataset.h"
#include "ml/dataset_view.h"

namespace xfa {

struct RipperConfig {
  double grow_fraction = 2.0 / 3.0;
  double min_prune_precision = 0.5;
  std::size_t max_rules_per_class = 32;
  std::uint64_t shuffle_seed = 17;
};

class Ripper final : public Classifier {
 public:
  explicit Ripper(const RipperConfig& config = {});

  void fit(const Dataset& data,
           const std::vector<std::size_t>& feature_columns,
           std::size_t label_column) override;
  void fit(const DatasetView& view,
           const std::vector<std::size_t>& feature_columns,
           std::size_t label_column) override;
  std::vector<double> predict_dist(const std::vector<int>& row) const override;
  std::size_t predict_dist_into(const std::vector<int>& row,
                                std::span<double> out) const override;
  std::span<const double> predict_dist_span(
      const std::vector<int>& row, std::span<double> scratch) const override;
  const char* name() const override { return "RIPPER"; }

  std::size_t rule_count() const { return rules_.size(); }

  /// Ordered rule-list rendering ("IF f3=2 AND f7=0 THEN class 1 ...").
  std::string describe(
      const std::vector<std::string>& feature_names) const override;

 private:
  struct Condition {
    std::size_t column = 0;
    int value = 0;
  };
  struct Rule {
    std::vector<Condition> conditions;
    int target_class = 0;
    std::vector<double> class_counts;  // training examples covered, per class
    std::vector<double> dist;          // cached Laplace distribution
  };

  static bool matches(const Rule& rule, const std::vector<int>& row);
  /// Coverage test against the column-major view (fit-time hot path).
  static bool matches_view(const Rule& rule, const DatasetView& view,
                           std::size_t row, std::size_t keep_conditions);

  RipperConfig config_;
  std::vector<Rule> rules_;           // ordered decision list
  std::vector<double> default_counts_;
  std::vector<double> default_dist_;  // cached Laplace distribution
  int label_cardinality_ = 0;
};

}  // namespace xfa
