#include "ml/linreg.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace xfa {

void LinearRegression::fit(const std::vector<std::vector<double>>& x,
                           const std::vector<double>& y, double ridge) {
  XFA_CHECK(!x.empty() && x.size() == y.size());
  const std::size_t d = x.front().size();
  const std::size_t n = d + 1;  // + intercept

  // Normal equations A w = b with A = X^T X + ridge*I, b = X^T y, where X is
  // augmented with a constant-1 column.
  std::vector<std::vector<double>> a(n, std::vector<double>(n, 0.0));
  std::vector<double> b(n, 0.0);
  for (std::size_t r = 0; r < x.size(); ++r) {
    XFA_CHECK_EQ(x[r].size(), d);
    const auto feature = [&](std::size_t i) {
      return i < d ? x[r][i] : 1.0;
    };
    for (std::size_t i = 0; i < n; ++i) {
      b[i] += feature(i) * y[r];
      for (std::size_t j = i; j < n; ++j) a[i][j] += feature(i) * feature(j);
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    a[i][i] += ridge;
    for (std::size_t j = 0; j < i; ++j) a[i][j] = a[j][i];
  }

  // Gaussian elimination with partial pivoting.
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r)
      if (std::abs(a[r][col]) > std::abs(a[pivot][col])) pivot = r;
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    const double diag = a[col][col];
    if (std::abs(diag) < 1e-12) continue;  // degenerate direction: leave 0
    for (std::size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      const double factor = a[r][col] / diag;
      if (factor == 0) continue;
      for (std::size_t c = col; c < n; ++c) a[r][c] -= factor * a[col][c];
      b[r] -= factor * b[col];
    }
  }
  weights_.assign(d, 0.0);
  for (std::size_t i = 0; i < d; ++i)
    weights_[i] = std::abs(a[i][i]) < 1e-12 ? 0.0 : b[i] / a[i][i];
  intercept_ = std::abs(a[d][d]) < 1e-12 ? 0.0 : b[d] / a[d][d];
}

double LinearRegression::predict(const std::vector<double>& row) const {
  XFA_CHECK(fitted() && row.size() == weights_.size());
  double y = intercept_;
  for (std::size_t i = 0; i < weights_.size(); ++i)
    y += weights_[i] * row[i];
  return y;
}

double LinearRegression::log_distance(double predicted, double actual,
                                      double epsilon) {
  const double p = std::max(std::abs(predicted), epsilon);
  const double a = std::max(std::abs(actual), epsilon);
  return std::abs(std::log(p / a));
}

}  // namespace xfa
