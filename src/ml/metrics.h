// Basic classifier quality metrics used by the test suite and examples.
#pragma once

#include <cstddef>
#include <vector>

#include "ml/dataset.h"

namespace xfa {

/// Fraction of rows whose predicted label equals the true label.
double accuracy(const Classifier& classifier, const Dataset& data,
                std::size_t label_column);

/// confusion[truth][prediction] counts.
std::vector<std::vector<std::size_t>> confusion_matrix(
    const Classifier& classifier, const Dataset& data,
    std::size_t label_column);

/// Deterministic k-fold assignment: fold index per row.
std::vector<std::size_t> kfold_assignment(std::size_t rows, std::size_t folds,
                                          std::uint64_t seed);

}  // namespace xfa
