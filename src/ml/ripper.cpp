#include "ml/ripper.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/check.h"
#include "sim/rng.h"

namespace xfa {
namespace {

/// FOIL information value of a rule covering p positives and n negatives.
double foil_value(double p, double n) {
  if (p <= 0) return -1e9;
  return std::log2(p / (p + n));
}

}  // namespace

Ripper::Ripper(const RipperConfig& config) : config_(config) {}

bool Ripper::matches(const Rule& rule, const std::vector<int>& row) {
  for (const Condition& condition : rule.conditions)
    if (row[condition.column] != condition.value) return false;
  return true;
}

void Ripper::fit(const Dataset& data,
                 const std::vector<std::size_t>& feature_columns,
                 std::size_t label_column) {
  XFA_CHECK(!data.rows.empty());
  rules_.clear();
  label_cardinality_ = data.cardinality[label_column];
  const auto classes = static_cast<std::size_t>(label_cardinality_);

  // Order classes by ascending frequency; the most frequent is the default.
  std::vector<double> class_freq(classes, 0);
  for (const auto& row : data.rows)
    class_freq[static_cast<std::size_t>(row[label_column])] += 1.0;
  std::vector<int> order(classes);
  for (std::size_t c = 0; c < classes; ++c) order[c] = static_cast<int>(c);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return class_freq[static_cast<std::size_t>(a)] <
           class_freq[static_cast<std::size_t>(b)];
  });

  // Pool of uncovered examples (indices into data.rows).
  std::vector<std::size_t> pool(data.size());
  for (std::size_t i = 0; i < pool.size(); ++i) pool[i] = i;
  Rng rng(config_.shuffle_seed);

  for (std::size_t ci = 0; ci + 1 < classes; ++ci) {
    const int target = order[ci];
    if (class_freq[static_cast<std::size_t>(target)] <= 0) continue;

    for (std::size_t r = 0; r < config_.max_rules_per_class; ++r) {
      // Any positives left in the pool?
      bool has_positive = false;
      for (const std::size_t i : pool) {
        if (data.rows[i][label_column] == target) {
          has_positive = true;
          break;
        }
      }
      if (!has_positive) break;

      // Split pool into grow / prune subsets.
      std::vector<std::size_t> shuffled = pool;
      for (std::size_t i = shuffled.size(); i > 1; --i)
        std::swap(shuffled[i - 1],
                  shuffled[static_cast<std::size_t>(rng.uniform_int(i))]);
      const std::size_t grow_size = std::max<std::size_t>(
          1, static_cast<std::size_t>(
                 static_cast<double>(shuffled.size()) * config_.grow_fraction));
      std::vector<std::size_t> grow(shuffled.begin(),
                                    shuffled.begin() + grow_size);
      std::vector<std::size_t> prune(shuffled.begin() + grow_size,
                                     shuffled.end());

      // ---- Grow: greedily add conditions maximizing FOIL gain. ----
      Rule rule;
      rule.target_class = target;
      std::vector<std::size_t> covered = grow;
      std::vector<bool> column_used(data.columns(), false);
      while (true) {
        double p = 0, n = 0;
        for (const std::size_t i : covered)
          (data.rows[i][label_column] == target ? p : n) += 1.0;
        if (n == 0 || p == 0) break;  // pure (or hopeless) on the grow set
        const double base = foil_value(p, n);

        double best_gain = 1e-9;
        std::size_t best_column = 0;
        int best_value = -1;
        for (const std::size_t col : feature_columns) {
          if (col == label_column || column_used[col]) continue;
          const auto values = static_cast<std::size_t>(data.cardinality[col]);
          std::vector<double> pos(values, 0), neg(values, 0);
          for (const std::size_t i : covered) {
            const auto v = static_cast<std::size_t>(data.rows[i][col]);
            (data.rows[i][label_column] == target ? pos[v] : neg[v]) += 1.0;
          }
          for (std::size_t v = 0; v < values; ++v) {
            if (pos[v] <= 0) continue;
            const double gain = pos[v] * (foil_value(pos[v], neg[v]) - base);
            if (gain > best_gain) {
              best_gain = gain;
              best_column = col;
              best_value = static_cast<int>(v);
            }
          }
        }
        if (best_value < 0) break;  // no condition improves the rule
        rule.conditions.push_back(Condition{best_column, best_value});
        column_used[best_column] = true;
        std::erase_if(covered, [&](std::size_t i) {
          return data.rows[i][best_column] != best_value;
        });
      }
      if (rule.conditions.empty()) break;  // nothing discriminative left

      // ---- Prune: drop trailing conditions to maximize (p-n)/(p+n). ----
      const auto prune_value = [&](std::size_t keep) {
        double p = 0, n = 0;
        for (const std::size_t i : prune) {
          bool match = true;
          for (std::size_t k = 0; k < keep && match; ++k)
            match = data.rows[i][rule.conditions[k].column] ==
                    rule.conditions[k].value;
          if (match) (data.rows[i][label_column] == target ? p : n) += 1.0;
        }
        return p + n == 0 ? -1.0 : (p - n) / (p + n);
      };
      if (!prune.empty()) {
        std::size_t best_keep = rule.conditions.size();
        double best_value = prune_value(best_keep);
        for (std::size_t keep = rule.conditions.size(); keep-- > 1;) {
          const double value = prune_value(keep);
          if (value > best_value) {
            best_value = value;
            best_keep = keep;
          }
        }
        rule.conditions.resize(best_keep);
      }

      // ---- Accept or stop: pruned-rule precision on the prune set. ----
      double pool_p = 0, pool_n = 0;
      std::vector<std::size_t> pool_covered;
      for (const std::size_t i : pool) {
        if (matches(rule, data.rows[i])) {
          pool_covered.push_back(i);
          (data.rows[i][label_column] == target ? pool_p : pool_n) += 1.0;
        }
      }
      if (pool_p + pool_n == 0 ||
          pool_p / (pool_p + pool_n) < config_.min_prune_precision)
        break;

      // Record the training class distribution of covered examples.
      rule.class_counts.assign(classes, 0);
      for (const std::size_t i : pool_covered)
        rule.class_counts[static_cast<std::size_t>(
            data.rows[i][label_column])] += 1.0;
      rules_.push_back(rule);

      // Remove covered examples from the pool.
      std::erase_if(pool, [&](std::size_t i) {
        return matches(rule, data.rows[i]);
      });
    }
  }

  // Default distribution: whatever the rules never covered (falling back to
  // the full training distribution if everything was covered).
  default_counts_.assign(classes, 0);
  for (const std::size_t i : pool)
    default_counts_[static_cast<std::size_t>(
        data.rows[i][label_column])] += 1.0;
  double total = 0;
  for (const double c : default_counts_) total += c;
  if (total == 0) default_counts_ = class_freq;
}

std::string Ripper::describe(
    const std::vector<std::string>& feature_names) const {
  const auto name_of = [&](std::size_t column) -> std::string {
    if (column < feature_names.size()) return feature_names[column];
    // Built up with += rather than `"f" + std::to_string(...)`: GCC 12's
    // -Wrestrict misfires on that operator+ chain at -O3 under -Werror.
    std::string fallback = "f";
    fallback += std::to_string(column);
    return fallback;
  };
  std::string out;
  for (const Rule& rule : rules_) {
    out += "IF ";
    for (std::size_t i = 0; i < rule.conditions.size(); ++i) {
      if (i > 0) out += " AND ";
      out += name_of(rule.conditions[i].column) + "=" +
             std::to_string(rule.conditions[i].value);
    }
    double covered = 0;
    for (const double c : rule.class_counts) covered += c;
    out += " THEN class " + std::to_string(rule.target_class) + "  (" +
           std::to_string(static_cast<long>(
               rule.class_counts[static_cast<std::size_t>(
                   rule.target_class)])) +
           "/" + std::to_string(static_cast<long>(covered)) + ")\n";
  }
  int default_class = 0;
  for (std::size_t v = 1; v < default_counts_.size(); ++v)
    if (default_counts_[v] > default_counts_[static_cast<std::size_t>(
            default_class)])
      default_class = static_cast<int>(v);
  out += "ELSE class " + std::to_string(default_class) + "\n";
  return out;
}

std::vector<double> Ripper::predict_dist(const std::vector<int>& row) const {
  XFA_CHECK(label_cardinality_ > 0) << "predict before fit";
  for (const Rule& rule : rules_)
    if (matches(rule, row)) return laplace_distribution(rule.class_counts);
  return laplace_distribution(default_counts_);
}

}  // namespace xfa
