#include "ml/ripper.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/check.h"
#include "ml/log2_cache.h"
#include "sim/rng.h"

namespace xfa {
namespace {

/// FOIL information value of a rule covering p positives and n negatives.
/// Counts are integral, so small (p, p+n) pairs index the ratio table
/// directly; larger ones fall back to the bit-pattern memo. Both return the
/// exact double log2(p / (p + n)) produced the first time (bit-identical).
double foil_value(double p, double n, RatioMemo<Log2Fn>& ratio,
                  Log2Memo& log2) {
  if (p <= 0) return -1e9;
  const double t = p + n;
  if (RatioMemo<Log2Fn>::covers(t)) return ratio(p, t);
  return log2(p / t);
}

/// One grow-phase candidate column with its private slice of the pn arena.
struct CandidateScan {
  std::size_t column = 0;
  std::size_t values = 0;
  const std::int32_t* codes = nullptr;
  double* pn = nullptr;
};

}  // namespace

Ripper::Ripper(const RipperConfig& config) : config_(config) {}

bool Ripper::matches(const Rule& rule, const std::vector<int>& row) {
  for (const Condition& condition : rule.conditions)
    if (row[condition.column] != condition.value) return false;
  return true;
}

bool Ripper::matches_view(const Rule& rule, const DatasetView& view,
                          std::size_t row, std::size_t keep_conditions) {
  for (std::size_t k = 0; k < keep_conditions; ++k) {
    const Condition& condition = rule.conditions[k];
    if (view.column(condition.column)[row] != condition.value) return false;
  }
  return true;
}

void Ripper::fit(const Dataset& data,
                 const std::vector<std::size_t>& feature_columns,
                 std::size_t label_column) {
  fit(DatasetView(data), feature_columns, label_column);
}

void Ripper::fit(const DatasetView& view,
                 const std::vector<std::size_t>& feature_columns,
                 std::size_t label_column) {
  XFA_CHECK_GT(view.rows(), 0u);
  rules_.clear();
  label_cardinality_ = view.cardinality(label_column);
  const auto classes = static_cast<std::size_t>(label_cardinality_);
  const std::span<const std::int32_t> label_data = view.column(label_column);

  // Order classes by ascending frequency; the most frequent is the default.
  std::vector<double> class_freq(classes, 0);
  for (std::size_t i = 0; i < view.rows(); ++i)
    class_freq[static_cast<std::size_t>(label_data[i])] += 1.0;
  std::vector<int> order(classes);
  for (std::size_t c = 0; c < classes; ++c) order[c] = static_cast<int>(c);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return class_freq[static_cast<std::size_t>(a)] <
           class_freq[static_cast<std::size_t>(b)];
  });

  // Pool of uncovered examples (row indices into the view).
  std::vector<std::size_t> pool(view.rows());
  for (std::size_t i = 0; i < pool.size(); ++i) pool[i] = i;
  Rng rng(config_.shuffle_seed);

  // Scratch reused across every grow/prune iteration: the shuffled pool
  // split, the covered-row set, the coverage-counter arena (one private
  // pos/neg slice per candidate column, so pairs of candidates can share
  // each covered-row load), and the per-rule covered pool.
  std::vector<std::size_t> shuffled, covered, pool_covered;
  const std::size_t slice = 2 * static_cast<std::size_t>(view.max_cardinality());
  std::vector<double> pn(feature_columns.size() * slice);
  std::vector<CandidateScan> active;
  active.reserve(feature_columns.size());
  std::vector<bool> column_used;
  // Fused `value * 2 + is-target` codes, one array per feature, rebuilt per
  // target class: the grow loop's candidate scans become a single gather
  // plus a single increment per covered row. The F * rows rebuild is repaid
  // many times over by the per-condition scans.
  std::vector<std::int32_t> codes(feature_columns.size() * view.rows());
  RatioMemo<Log2Fn> ratio_log2;
  Log2Memo log2;

  for (std::size_t ci = 0; ci + 1 < classes; ++ci) {
    const int target = order[ci];
    if (class_freq[static_cast<std::size_t>(target)] <= 0) continue;

    for (std::size_t f = 0; f < feature_columns.size(); ++f) {
      const std::span<const std::int32_t> col =
          view.column(feature_columns[f]);
      std::int32_t* const class_codes = codes.data() + f * view.rows();
      for (std::size_t i = 0; i < view.rows(); ++i)
        class_codes[i] = col[i] * 2 + (label_data[i] == target ? 1 : 0);
    }

    for (std::size_t r = 0; r < config_.max_rules_per_class; ++r) {
      // Any positives left in the pool?
      bool has_positive = false;
      for (const std::size_t i : pool) {
        if (label_data[i] == target) {
          has_positive = true;
          break;
        }
      }
      if (!has_positive) break;

      // Split pool into grow / prune subsets. `shuffled` is reused; the
      // Fisher-Yates draw order matches the old freshly-allocated copy.
      shuffled.assign(pool.begin(), pool.end());
      for (std::size_t i = shuffled.size(); i > 1; --i)
        std::swap(shuffled[i - 1],
                  shuffled[static_cast<std::size_t>(rng.uniform_int(i))]);
      const std::size_t grow_size = std::max<std::size_t>(
          1, static_cast<std::size_t>(
                 static_cast<double>(shuffled.size()) * config_.grow_fraction));
      const std::span<const std::size_t> grow(shuffled.data(), grow_size);
      const std::span<const std::size_t> prune(shuffled.data() + grow_size,
                                               shuffled.size() - grow_size);

      // ---- Grow: greedily add conditions maximizing FOIL gain. ----
      Rule rule;
      rule.target_class = target;
      covered.assign(grow.begin(), grow.end());
      column_used.assign(view.columns(), false);
      // p/n over the covered set: counted once up front, then carried from
      // the winning candidate's counters (the filtered set's counts are
      // exactly pn[2*best_value+1] / pn[2*best_value] — same integral sums
      // the per-iteration rescan produced).
      double p = 0, n = 0;
      for (const std::size_t i : covered)
        (label_data[i] == target ? p : n) += 1.0;
      while (true) {
        if (n == 0 || p == 0) break;  // pure (or hopeless) on the grow set
        const double base = foil_value(p, n, ratio_log2, log2);

        // Candidates still available this iteration, each with a private
        // pn slice; pn[2v+1] counts positives at value v, pn[2v] negatives —
        // the same integral sums the separate pos/neg increments produced.
        active.clear();
        for (std::size_t f = 0; f < feature_columns.size(); ++f) {
          const std::size_t col = feature_columns[f];
          if (col == label_column || column_used[col]) continue;
          CandidateScan s;
          s.column = col;
          s.values = static_cast<std::size_t>(view.cardinality(col));
          s.codes = codes.data() + f * view.rows();
          s.pn = pn.data() + active.size() * slice;
          std::fill_n(s.pn, 2 * s.values, 0.0);
          active.push_back(s);
        }
        // Histogram pass, two candidates at a time: one covered-row load
        // feeds both fused-code gathers; every bucket still receives exactly
        // its own +1.0 increments in covered order (bit-identical).
        std::size_t pair = 0;
        for (; pair + 1 < active.size(); pair += 2) {
          const CandidateScan& a = active[pair];
          const CandidateScan& b = active[pair + 1];
          for (const std::size_t i : covered) {
            a.pn[static_cast<std::size_t>(a.codes[i])] += 1.0;
            b.pn[static_cast<std::size_t>(b.codes[i])] += 1.0;
          }
        }
        if (pair < active.size()) {
          const CandidateScan& a = active[pair];
          for (const std::size_t i : covered)
            a.pn[static_cast<std::size_t>(a.codes[i])] += 1.0;
        }

        double best_gain = 1e-9;
        std::size_t best_column = 0;
        int best_value = -1;
        double best_pos = 0, best_neg = 0;
        for (const CandidateScan& s : active) {
          for (std::size_t v = 0; v < s.values; ++v) {
            const double pos = s.pn[2 * v + 1];
            if (pos <= 0) continue;
            const double gain =
                pos * (foil_value(pos, s.pn[2 * v], ratio_log2, log2) - base);
            if (gain > best_gain) {
              best_gain = gain;
              best_column = s.column;
              best_value = static_cast<int>(v);
              best_pos = pos;
              best_neg = s.pn[2 * v];
            }
          }
        }
        if (best_value < 0) break;  // no condition improves the rule
        // The filtered covered set's class split was already counted by the
        // winning candidate's scan.
        p = best_pos;
        n = best_neg;
        rule.conditions.push_back(Condition{best_column, best_value});
        column_used[best_column] = true;
        const std::span<const std::int32_t> best_data =
            view.column(best_column);
        std::erase_if(covered, [&](std::size_t i) {
          return best_data[i] != best_value;
        });
      }
      if (rule.conditions.empty()) break;  // nothing discriminative left

      // ---- Prune: drop trailing conditions to maximize (p-n)/(p+n). ----
      // Conditions are prefix-nested, so a row matches the first `keep`
      // conditions iff its first failing condition index is >= keep. One
      // pass buckets each prune row by that fail index; suffix sums then
      // yield every keep's (p, n) — the same integral counts the old
      // per-keep rescan produced, at a conditions-times lower cost.
      if (!prune.empty()) {
        const std::size_t conditions = rule.conditions.size();
        std::vector<double> pos_at(conditions + 1, 0.0);
        std::vector<double> neg_at(conditions + 1, 0.0);
        for (const std::size_t i : prune) {
          std::size_t fail = conditions;
          for (std::size_t k = 0; k < conditions; ++k) {
            const Condition& condition = rule.conditions[k];
            if (view.column(condition.column)[i] != condition.value) {
              fail = k;
              break;
            }
          }
          (label_data[i] == target ? pos_at : neg_at)[fail] += 1.0;
        }
        // Suffix-sum so that (p, n) at `keep` cover rows with fail >= keep.
        for (std::size_t k = conditions; k-- > 0;) {
          pos_at[k] += pos_at[k + 1];
          neg_at[k] += neg_at[k + 1];
        }
        const auto prune_value = [&](std::size_t keep) {
          const double kp = pos_at[keep], kn = neg_at[keep];
          return kp + kn == 0 ? -1.0 : (kp - kn) / (kp + kn);
        };
        std::size_t best_keep = conditions;
        double best_value = prune_value(best_keep);
        for (std::size_t keep = conditions; keep-- > 1;) {
          const double value = prune_value(keep);
          if (value > best_value) {
            best_value = value;
            best_keep = keep;
          }
        }
        rule.conditions.resize(best_keep);
      }

      // ---- Accept or stop: pruned-rule precision on the prune set. ----
      double pool_p = 0, pool_n = 0;
      pool_covered.clear();
      for (const std::size_t i : pool) {
        if (matches_view(rule, view, i, rule.conditions.size())) {
          pool_covered.push_back(i);
          (label_data[i] == target ? pool_p : pool_n) += 1.0;
        }
      }
      if (pool_p + pool_n == 0 ||
          pool_p / (pool_p + pool_n) < config_.min_prune_precision)
        break;

      // Record the training class distribution of covered examples and
      // cache its Laplace smoothing (the per-predict arithmetic, done once).
      rule.class_counts.assign(classes, 0);
      for (const std::size_t i : pool_covered)
        rule.class_counts[static_cast<std::size_t>(label_data[i])] += 1.0;
      rule.dist = laplace_distribution(rule.class_counts);
      rules_.push_back(std::move(rule));

      // Remove covered examples from the pool.
      std::erase_if(pool, [&](std::size_t i) {
        return matches_view(rules_.back(), view, i,
                            rules_.back().conditions.size());
      });
    }
  }

  // Default distribution: whatever the rules never covered (falling back to
  // the full training distribution if everything was covered).
  default_counts_.assign(classes, 0);
  for (const std::size_t i : pool)
    default_counts_[static_cast<std::size_t>(label_data[i])] += 1.0;
  double total = 0;
  for (const double c : default_counts_) total += c;
  if (total == 0) default_counts_ = class_freq;
  default_dist_ = laplace_distribution(default_counts_);
}

std::string Ripper::describe(
    const std::vector<std::string>& feature_names) const {
  const auto name_of = [&](std::size_t column) -> std::string {
    if (column < feature_names.size()) return feature_names[column];
    // Built up with += rather than `"f" + std::to_string(...)`: GCC 12's
    // -Wrestrict misfires on that operator+ chain at -O3 under -Werror.
    std::string fallback = "f";
    fallback += std::to_string(column);
    return fallback;
  };
  std::string out;
  for (const Rule& rule : rules_) {
    out += "IF ";
    for (std::size_t i = 0; i < rule.conditions.size(); ++i) {
      if (i > 0) out += " AND ";
      out += name_of(rule.conditions[i].column) + "=" +
             std::to_string(rule.conditions[i].value);
    }
    double covered = 0;
    for (const double c : rule.class_counts) covered += c;
    out += " THEN class " + std::to_string(rule.target_class) + "  (" +
           std::to_string(static_cast<long>(
               rule.class_counts[static_cast<std::size_t>(
                   rule.target_class)])) +
           "/" + std::to_string(static_cast<long>(covered)) + ")\n";
  }
  int default_class = 0;
  for (std::size_t v = 1; v < default_counts_.size(); ++v)
    if (default_counts_[v] > default_counts_[static_cast<std::size_t>(
            default_class)])
      default_class = static_cast<int>(v);
  out += "ELSE class " + std::to_string(default_class) + "\n";
  return out;
}

std::vector<double> Ripper::predict_dist(const std::vector<int>& row) const {
  XFA_CHECK(label_cardinality_ > 0) << "predict before fit";
  for (const Rule& rule : rules_)
    if (matches(rule, row)) return rule.dist;
  return default_dist_;
}

std::size_t Ripper::predict_dist_into(const std::vector<int>& row,
                                      std::span<double> out) const {
  XFA_CHECK(label_cardinality_ > 0) << "predict before fit";
  const std::vector<double>* dist = &default_dist_;
  for (const Rule& rule : rules_) {
    if (matches(rule, row)) {
      dist = &rule.dist;
      break;
    }
  }
  XFA_CHECK_GE(out.size(), dist->size()) << "scoring scratch buffer too small";
  std::copy(dist->begin(), dist->end(), out.begin());
  return dist->size();
}

std::span<const double> Ripper::predict_dist_span(
    const std::vector<int>& row, std::span<double> /*scratch*/) const {
  XFA_CHECK(label_cardinality_ > 0) << "predict before fit";
  // Zero-copy: rule and default distributions were cached at fit time.
  for (const Rule& rule : rules_)
    if (matches(rule, row)) return {rule.dist.data(), rule.dist.size()};
  return {default_dist_.data(), default_dist_.size()};
}

}  // namespace xfa
