// Naive Bayes classifier over nominal attributes (the paper's NBC).
//
// Paper §3: the score for class l_i is n(l_i|x) = p(l_i) * prod_j p(a_j|l_i)
// and the output probability is the normalized score
// p(l_i|x) = n(l_i|x) / sum_k n(l_k|x). Conditional probabilities are
// Laplace-smoothed so unseen attribute values never zero out a class.
#pragma once

#include <vector>

#include "ml/dataset.h"

namespace xfa {

class NaiveBayes final : public Classifier {
 public:
  void fit(const Dataset& data,
           const std::vector<std::size_t>& feature_columns,
           std::size_t label_column) override;
  std::vector<double> predict_dist(const std::vector<int>& row) const override;
  const char* name() const override { return "NBC"; }

 private:
  std::vector<std::size_t> feature_columns_;
  std::vector<double> class_counts_;
  // cond_[f][class][value] = count of value for feature_columns_[f] given
  // class, Laplace-ready.
  std::vector<std::vector<std::vector<double>>> cond_;
  double total_ = 0;
};

}  // namespace xfa
