// Naive Bayes classifier over nominal attributes (the paper's NBC).
//
// Paper §3: the score for class l_i is n(l_i|x) = p(l_i) * prod_j p(a_j|l_i)
// and the output probability is the normalized score
// p(l_i|x) = n(l_i|x) / sum_k n(l_k|x). Conditional probabilities are
// Laplace-smoothed so unseen attribute values never zero out a class.
#pragma once

#include <span>
#include <vector>

#include "ml/dataset.h"
#include "ml/dataset_view.h"

namespace xfa {

class NaiveBayes final : public Classifier {
 public:
  void fit(const Dataset& data,
           const std::vector<std::size_t>& feature_columns,
           std::size_t label_column) override;
  void fit(const DatasetView& view,
           const std::vector<std::size_t>& feature_columns,
           std::size_t label_column) override;
  std::vector<double> predict_dist(const std::vector<int>& row) const override;
  std::size_t predict_dist_into(const std::vector<int>& row,
                                std::span<double> out) const override;
  const char* name() const override { return "NBC"; }

 private:
  std::vector<std::size_t> feature_columns_;
  std::vector<double> class_counts_;
  // Conditional tables, flattened into one contiguous buffer:
  // cond_flat_[cond_offset_[f] + class*cardinality(f) + value]. During fit
  // they accumulate counts; fit then converts them in place to the
  // Laplace-smoothed *log* terms log((count+1)/(class_count+cardinality)),
  // so predict is a pure table-sum — no std::log per (class, feature).
  std::vector<double> cond_flat_;
  std::vector<std::size_t> cond_offset_;    // per feature, into cond_flat_
  std::vector<int> feature_cardinality_;    // per feature
  std::vector<double> prior_log_;           // log class prior, per class
  std::vector<double> unseen_log_;          // log term for out-of-range
                                            // values, [f * classes + class]
  double total_ = 0;
};

}  // namespace xfa
