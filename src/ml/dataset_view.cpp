#include "ml/dataset_view.h"

#include "common/check.h"

namespace xfa {

DatasetView::DatasetView(const Dataset& data)
    : source_(&data),
      rows_(data.rows.size()),
      cols_(data.cardinality.size()),
      cardinality_(data.cardinality) {
  for (const int card : cardinality_)
    max_cardinality_ = card > max_cardinality_ ? card : max_cardinality_;
  values_.resize(rows_ * cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    const std::vector<int>& row = data.rows[r];
    XFA_CHECK_EQ(row.size(), cols_) << "row width mismatch at row " << r;
    for (std::size_t c = 0; c < cols_; ++c) {
      XFA_DCHECK(row[c] >= 0 && row[c] < cardinality_[c])
          << "value out of cardinality range";
      values_[c * rows_ + r] = static_cast<std::int32_t>(row[c]);
    }
  }
}

}  // namespace xfa
