// Memoized logarithms for the classifier fit hot paths.
//
// Profiling the C4.5/RIPPER fits shows ~40% of training CPU inside libm:
// entropy, split-info and FOIL terms call log over p = count/total ratios,
// and the same small rationals (1/2, 2/3, 3/4, ...) recur across thousands
// of small nodes and grow iterations. A memo keyed on the argument's bit
// pattern returns the exact double the underlying libm call produced the
// first time — results stay bit-identical by construction, the transcendental
// just runs once per distinct input.
//
// One instance per fit (never shared across threads). Open addressing with a
// bounded probe; on table pressure it falls back to computing directly.
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

namespace xfa {

struct Log2Fn {
  double operator()(double x) const { return std::log2(x); }
};
struct LogFn {
  double operator()(double x) const { return std::log(x); }
};

template <class Fn>
class LogMemo {
 public:
  LogMemo() : keys_(kSlots, 0), vals_(kSlots) {}

  /// `x` must be positive (so its bit pattern is never the empty sentinel 0).
  double operator()(double x) {
    const std::uint64_t bits = std::bit_cast<std::uint64_t>(x);
    std::size_t slot = hash(bits);
    for (int probe = 0; probe < 4; ++probe, slot = (slot + 1) & (kSlots - 1)) {
      if (keys_[slot] == bits) return vals_[slot];
      if (keys_[slot] == 0) {
        keys_[slot] = bits;
        return vals_[slot] = Fn{}(x);
      }
    }
    return Fn{}(x);  // table pressure: compute without caching
  }

 private:
  static constexpr std::size_t kSlots = 4096;  // power of two

  static std::size_t hash(std::uint64_t x) {
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    return static_cast<std::size_t>(x) & (kSlots - 1);
  }

  std::vector<std::uint64_t> keys_;
  std::vector<double> vals_;
};

using Log2Memo = LogMemo<Log2Fn>;
using LnMemo = LogMemo<LogFn>;

struct PLog2PFn {
  double operator()(double p) const { return p * std::log2(p); }
};

/// Memoized f(c / t) for *integral* pairs 0 < c <= t, the shape of every
/// entropy / split-info / FOIL term in the fit hot paths (c and t are event
/// counts). For t below the cap the pair indexes a triangular table directly
/// — one multiply and one load replace the division, hash and probe of the
/// bit-pattern memo. Each slot stores the exact double f(c/t) produced the
/// first time, so results are bit-identical to computing f(c/t) every call.
/// Deep tree nodes (small t) dominate the call volume and hit the small,
/// cache-resident low-t rows; callers fall back to LogMemo when t >= cap.
template <class Fn>
class RatioMemo {
 public:
  RatioMemo() : vals_(kCap * (kCap + 1) / 2, kEmpty) {}

  /// True when (c, t) is table-representable; c <= t is the caller's
  /// invariant (counts of a subset never exceed the total).
  static bool covers(double t) { return t < static_cast<double>(kCap); }

  /// `c` and `t` must be positive integral doubles with c <= t < cap.
  double operator()(double c, double t) {
    const auto ci = static_cast<std::size_t>(c);
    const auto ti = static_cast<std::size_t>(t);
    double& slot = vals_[ti * (ti + 1) / 2 + ci];
    if (slot == kEmpty) slot = Fn{}(c / t);
    return slot;
  }

 private:
  static constexpr std::size_t kCap = 256;
  // f(c/t) <= 0 for every ratio in (0, 1], so a positive sentinel is safe.
  static constexpr double kEmpty = 1.0;

  std::vector<double> vals_;
};

}  // namespace xfa
