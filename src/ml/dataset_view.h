// Column-major view of a Dataset: one contiguous int32 array per column.
//
// The classifiers' hot loops (C4.5 candidate-split counting, RIPPER coverage
// scans, naive-Bayes conditional tables) read one or two columns for every
// row in a partition; the row-major `vector<vector<int>>` layout makes each
// of those reads a pointer chase into a separately allocated row. The view
// is built once per dataset (CrossFeatureModel::train builds a single view
// shared by all L sub-model fits) and hands out cache-linear `std::span`s.
//
// The view copies values (int32, column-major) and keeps a pointer to the
// source Dataset so code that still needs the row-major layout (the default
// Classifier::fit shim) can reach it. It must not outlive the Dataset.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ml/dataset.h"

namespace xfa {

class DatasetView {
 public:
  explicit DatasetView(const Dataset& data);

  std::size_t rows() const { return rows_; }
  std::size_t columns() const { return cols_; }

  /// All values of column `c`, indexed by row.
  std::span<const std::int32_t> column(std::size_t c) const {
    return {values_.data() + c * rows_, rows_};
  }

  int cardinality(std::size_t c) const { return cardinality_[c]; }
  /// Largest column cardinality — the scratch-buffer sizing bound.
  int max_cardinality() const { return max_cardinality_; }

  const Dataset& source() const { return *source_; }

 private:
  const Dataset* source_;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::int32_t> values_;  // column-major: values_[c*rows_ + r]
  std::vector<int> cardinality_;
  int max_cardinality_ = 0;
};

}  // namespace xfa
