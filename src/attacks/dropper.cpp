#include "attacks/dropper.h"

namespace xfa {

SelectiveDropAttack::SelectiveDropAttack(Node& node, NodeId target_dst,
                                         IntrusionSchedule schedule)
    : node_(node), target_(target_dst), schedule_(std::move(schedule)) {}

void SelectiveDropAttack::start() {
  node_.add_forward_filter([this](const Packet& pkt) {
    if (pkt.dst != target_) return false;
    if (!schedule_.active(node_.sim().now())) return false;
    ++matched_;
    return true;
  });
}

}  // namespace xfa
