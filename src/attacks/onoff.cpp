#include "attacks/onoff.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace xfa {

IntrusionSchedule IntrusionSchedule::periodic(SimTime start, SimTime duration,
                                              SimTime end) {
  XFA_CHECK_GT(duration, 0);
  IntrusionSchedule schedule;
  schedule.periodic_ = true;
  schedule.start_ = start;
  schedule.duration_ = duration;
  schedule.end_ = end;
  return schedule;
}

IntrusionSchedule IntrusionSchedule::sessions(
    std::vector<std::pair<SimTime, SimTime>> sessions) {
  IntrusionSchedule schedule;
  schedule.sessions_ = std::move(sessions);
  std::sort(schedule.sessions_.begin(), schedule.sessions_.end());
  return schedule;
}

IntrusionSchedule IntrusionSchedule::never() { return IntrusionSchedule{}; }

bool IntrusionSchedule::active(SimTime t) const {
  if (periodic_) {
    if (t < start_ || t >= end_) return false;
    return std::fmod(t - start_, 2 * duration_) < duration_;
  }
  for (const auto& [start, duration] : sessions_) {
    if (t >= start && t < start + duration) return true;
    if (t < start) break;
  }
  return false;
}

SimTime IntrusionSchedule::first_start() const {
  if (periodic_) return start_;
  return sessions_.empty() ? kNever : sessions_.front().first;
}

bool IntrusionSchedule::active_in(SimTime from, SimTime to) const {
  if (periodic_) {
    if (to <= start_ || from >= end_) return false;
    const SimTime lo = std::max(from, start_);
    if (to - lo >= duration_) return true;  // window spans an on phase
    const SimTime phase = std::fmod(lo - start_, 2 * duration_);
    return phase < duration_ ||
           phase + (to - lo) > 2 * duration_;  // tail wraps into next session
  }
  for (const auto& [start, duration] : sessions_) {
    if (start < to && from < start + duration) return true;
  }
  return false;
}

}  // namespace xfa
