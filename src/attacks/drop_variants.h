// The packet-dropping family of paper §2.3: "A random dropping attack drops
// packets randomly. A constant dropping attack drops packets all the time.
// A periodic dropping drops packets periodically to escape from being
// suspected. A selective dropping attack drops packets based on its
// destination or some other characteristics."
//
// Constant / random / selective are drop modes; periodic is the schedule
// (every mode composes with any IntrusionSchedule). SelectiveDropAttack in
// dropper.h remains the evaluation's script; this is the full taxonomy.
#pragma once

#include "attacks/onoff.h"
#include "net/node.h"
#include "sim/rng.h"

namespace xfa {

enum class DropMode {
  Constant,   // drop every packet asked to forward
  Random,     // drop with probability `probability`
  Selective,  // drop packets for `target_dst` only
};

const char* to_string(DropMode mode);

struct DropSpec {
  DropMode mode = DropMode::Constant;
  double probability = 0.5;           // Random mode
  NodeId target_dst = kInvalidNode;   // Selective mode
  bool data_only = true;              // also drop relayed control when false
};

class DropAttack {
 public:
  DropAttack(Node& node, DropSpec spec, IntrusionSchedule schedule);

  void start();

  std::uint64_t drops_matched() const { return matched_; }
  const DropSpec& spec() const { return spec_; }

 private:
  bool should_drop(const Packet& pkt);

  Node& node_;
  DropSpec spec_;
  IntrusionSchedule schedule_;
  Rng rng_;
  std::uint64_t matched_ = 0;
};

}  // namespace xfa
