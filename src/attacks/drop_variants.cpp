#include "attacks/drop_variants.h"

namespace xfa {

const char* to_string(DropMode mode) {
  switch (mode) {
    case DropMode::Constant: return "constant";
    case DropMode::Random: return "random";
    case DropMode::Selective: return "selective";
  }
  return "?";
}

DropAttack::DropAttack(Node& node, DropSpec spec, IntrusionSchedule schedule)
    : node_(node),
      spec_(spec),
      schedule_(std::move(schedule)),
      rng_(node.sim().fork_rng()) {}

void DropAttack::start() {
  node_.add_forward_filter(
      [this](const Packet& pkt) { return should_drop(pkt); });
}

bool DropAttack::should_drop(const Packet& pkt) {
  if (spec_.data_only && pkt.kind != PacketKind::Data) return false;
  if (!schedule_.active(node_.sim().now())) return false;
  switch (spec_.mode) {
    case DropMode::Constant:
      break;
    case DropMode::Random:
      if (!rng_.chance(spec_.probability)) return false;
      break;
    case DropMode::Selective:
      if (pkt.dst != spec_.target_dst) return false;
      break;
  }
  ++matched_;
  return true;
}

}  // namespace xfa
