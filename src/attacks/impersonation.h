// Identity impersonation attack (paper §2.3, traffic-distortion category):
// "Attackers can impersonate another user ... IP and MAC addresses ... are
// easy to be forged during the transmission of data packets."
//
// While a session is active the compromised node originates data packets
// whose source address is forged to a victim's, framing the victim as the
// traffic's origin (the paper: "pointing to an innocent individual as the
// culprit can be even worse than not finding any identity responsible").
#pragma once

#include <memory>

#include "attacks/onoff.h"
#include "net/node.h"
#include "sim/rng.h"
#include "sim/simulator.h"

namespace xfa {

struct ImpersonationConfig {
  double packets_per_second = 1.0;
  std::uint32_t packet_bytes = kDataPacketBytes;
  std::uint32_t flow_id = 0;  // 0 never collides with generated flows
};

class ImpersonationAttack {
 public:
  /// Forges `victim` as the source of data packets toward `target`.
  ImpersonationAttack(Node& node, NodeId victim, NodeId target,
                      IntrusionSchedule schedule,
                      const ImpersonationConfig& config = {});

  void start();

  std::uint64_t packets_forged() const { return forged_; }

 private:
  void tick();

  Node& node_;
  NodeId victim_;
  NodeId target_;
  IntrusionSchedule schedule_;
  ImpersonationConfig config_;
  std::uint32_t next_seq_ = 0;
  std::uint64_t forged_ = 0;
  std::unique_ptr<PeriodicTimer> timer_;
};

}  // namespace xfa
