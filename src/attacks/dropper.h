// Selective packet dropping attack (paper §4.1, Table 6): "drop packets to
// specific destination"; the destination is a script parameter.
#pragma once

#include "attacks/onoff.h"
#include "net/node.h"

namespace xfa {

class SelectiveDropAttack {
 public:
  /// While a session is active, any packet routed through `node` whose final
  /// destination is `target_dst` is silently discarded.
  SelectiveDropAttack(Node& node, NodeId target_dst,
                      IntrusionSchedule schedule);

  void start();

  NodeId target() const { return target_; }
  std::uint64_t drops_matched() const { return matched_; }

 private:
  Node& node_;
  NodeId target_;
  IntrusionSchedule schedule_;
  std::uint64_t matched_ = 0;
};

}  // namespace xfa
