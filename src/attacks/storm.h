// Update storm attack (paper §2.3, route-logic category): "The malicious
// node deliberately floods the whole network with meaningless route
// discovery messages ... to exhaust the network bandwidth and effectively
// paralyze the network."
//
// Implemented by spraying data toward phantom destinations: each spray
// triggers a genuine network-wide ROUTE REQUEST flood (plus the protocol's
// retry floods), which is exactly a storm of meaningless route discoveries.
#pragma once

#include <memory>

#include "attacks/onoff.h"
#include "net/node.h"
#include "sim/simulator.h"

namespace xfa {

struct UpdateStormConfig {
  double discoveries_per_second = 2.0;
  /// Phantom destination ids start here (must exceed every real node id).
  NodeId phantom_base = 100000;
  std::size_t phantom_count = 32;  // rotate so duplicate caches don't dampen
};

class UpdateStormAttack {
 public:
  UpdateStormAttack(Node& node, IntrusionSchedule schedule,
                    const UpdateStormConfig& config = {});

  void start();

  std::uint64_t discoveries_triggered() const { return triggered_; }
  const IntrusionSchedule& schedule() const { return schedule_; }

 private:
  void tick();

  Node& node_;
  IntrusionSchedule schedule_;
  UpdateStormConfig config_;
  std::size_t next_phantom_ = 0;
  std::uint64_t triggered_ = 0;
  std::unique_ptr<PeriodicTimer> timer_;
};

}  // namespace xfa
