// Black hole attack (paper §4.1, Table 6): "generate bogus shortest route to
// all nodes and absorb all traffic nearby".
//
// While a session is active the compromised node (a) periodically broadcasts
// forged route advertisements covering every other node as victim source,
// with the maximum allowed sequence number, and (b) silently discards all
// data packets routed through it. The forged max-seqno routes are never
// superseded by the routing protocol — the persistence effect the paper
// reports ("will never be automatically rectified").
#pragma once

#include <memory>

#include "attacks/onoff.h"
#include "net/node.h"
#include "sim/simulator.h"

namespace xfa {

struct BlackholeConfig {
  SimTime advert_interval = 2.0;  // seconds between advertisement rounds
  std::size_t victims_per_round = 10;
};

class BlackholeAttack {
 public:
  /// `node` must already have its routing agent (AODV or DSR) installed.
  BlackholeAttack(Node& node, IntrusionSchedule schedule,
                  const BlackholeConfig& config = {});

  /// Arms the periodic advertisement timer and installs the drop filter.
  void start();

  const IntrusionSchedule& schedule() const { return schedule_; }
  std::uint64_t adverts_sent() const { return adverts_sent_; }

 private:
  void advert_round();

  Node& node_;
  IntrusionSchedule schedule_;
  BlackholeConfig config_;
  NodeId next_victim_ = 0;
  std::uint64_t adverts_sent_ = 0;
  std::unique_ptr<PeriodicTimer> timer_;
};

}  // namespace xfa
