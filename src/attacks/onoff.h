// The paper's intrusion session model: "we introduce a simple on-off model
// where intrusion sessions are inserted periodically ... the duration of each
// intrusion session and the gap between two adjacent intrusion sessions are
// same", plus an explicit session-list form for the Figure-5 experiments
// (three sessions at 2500/5000/7500 s, 100 s each).
#pragma once

#include <vector>

#include "sim/types.h"

namespace xfa {

class IntrusionSchedule {
 public:
  /// Equal on/off periods of `duration` seconds, starting at `start`,
  /// running until `end` (defaults to forever).
  static IntrusionSchedule periodic(SimTime start, SimTime duration,
                                    SimTime end = kNever);

  /// Explicit sessions: (start, duration) pairs.
  static IntrusionSchedule sessions(
      std::vector<std::pair<SimTime, SimTime>> sessions);

  /// Never active (placebo, for control runs).
  static IntrusionSchedule never();

  bool active(SimTime t) const;

  /// Time the first session begins; kNever if none.
  SimTime first_start() const;

  /// True if some session is active anywhere in [from, to).
  bool active_in(SimTime from, SimTime to) const;

 private:
  IntrusionSchedule() = default;

  bool periodic_ = false;
  SimTime start_ = kNever;
  SimTime duration_ = 0;
  SimTime end_ = kNever;
  std::vector<std::pair<SimTime, SimTime>> sessions_;
};

}  // namespace xfa
