#include "attacks/blackhole.h"

#include "net/channel.h"
#include "routing/aodv/aodv.h"
#include "routing/dsr/dsr.h"

namespace xfa {

BlackholeAttack::BlackholeAttack(Node& node, IntrusionSchedule schedule,
                                 const BlackholeConfig& config)
    : node_(node), schedule_(std::move(schedule)), config_(config) {}

void BlackholeAttack::start() {
  // The DoS half: swallow every data packet we are asked to forward while a
  // session is active.
  node_.add_forward_filter([this](const Packet& pkt) {
    return pkt.kind == PacketKind::Data && schedule_.active(node_.sim().now());
  });

  timer_ = std::make_unique<PeriodicTimer>(
      node_.sim(), config_.advert_interval, [this] { advert_round(); });
  timer_->start(config_.advert_interval);
}

void BlackholeAttack::advert_round() {
  if (!schedule_.active(node_.sim().now())) return;
  const auto node_count = static_cast<NodeId>(node_.channel().node_count());
  if (node_count < 2) return;

  // Round-robin over all other nodes so "all sources are covered" within a
  // few advertisement rounds.
  auto* aodv = dynamic_cast<Aodv*>(&node_.routing());
  auto* dsr = dynamic_cast<Dsr*>(&node_.routing());
  for (std::size_t i = 0; i < config_.victims_per_round; ++i) {
    const NodeId victim = next_victim_;
    next_victim_ = (next_victim_ + 1) % node_count;
    if (victim == node_.id()) continue;
    if (aodv != nullptr) {
      aodv->inject_bogus_route_advert(victim);
    } else if (dsr != nullptr) {
      dsr->inject_bogus_route_advert(victim);
    }
    ++adverts_sent_;
  }
}

}  // namespace xfa
