#include "attacks/impersonation.h"

#include "common/check.h"

namespace xfa {

ImpersonationAttack::ImpersonationAttack(Node& node, NodeId victim,
                                         NodeId target,
                                         IntrusionSchedule schedule,
                                         const ImpersonationConfig& config)
    : node_(node),
      victim_(victim),
      target_(target),
      schedule_(std::move(schedule)),
      config_(config) {
  XFA_CHECK(victim != node.id()) << "impersonating yourself is just sending";
  XFA_CHECK_GT(config.packets_per_second, 0);
}

void ImpersonationAttack::start() {
  timer_ = std::make_unique<PeriodicTimer>(
      node_.sim(), 1.0 / config_.packets_per_second, [this] { tick(); });
  timer_->start();
}

void ImpersonationAttack::tick() {
  if (!schedule_.active(node_.sim().now())) return;
  // Craft the forged packet directly (bypassing Node::send_data, which would
  // stamp the true source address) and hand it to the routing agent — the
  // link/network layer cannot tell a forged source apart (paper §2.3).
  Packet pkt;
  pkt.kind = PacketKind::Data;
  pkt.src = victim_;
  pkt.dst = target_;
  pkt.flow_id = config_.flow_id;
  pkt.seq = next_seq_++;
  pkt.size_bytes = config_.packet_bytes;
  ++forged_;
  node_.routing().send_data(std::move(pkt));
}

}  // namespace xfa
