#include "attacks/storm.h"

#include "common/check.h"

namespace xfa {

UpdateStormAttack::UpdateStormAttack(Node& node, IntrusionSchedule schedule,
                                     const UpdateStormConfig& config)
    : node_(node), schedule_(std::move(schedule)), config_(config) {
  XFA_CHECK_GT(config.discoveries_per_second, 0);
  XFA_CHECK_GT(config.phantom_count, 0);
}

void UpdateStormAttack::start() {
  timer_ = std::make_unique<PeriodicTimer>(
      node_.sim(), 1.0 / config_.discoveries_per_second, [this] { tick(); });
  timer_->start();
}

void UpdateStormAttack::tick() {
  if (!schedule_.active(node_.sim().now())) return;
  const NodeId phantom =
      config_.phantom_base + static_cast<NodeId>(next_phantom_);
  next_phantom_ = (next_phantom_ + 1) % config_.phantom_count;
  // One data packet toward a phantom destination = one flooded discovery
  // (plus the protocol's retry floods). flow id 0 is never used by real
  // traffic (generator ids start at 1).
  node_.send_data(phantom, /*flow_id=*/0, /*seq=*/0, kControlPacketBytes,
                  /*is_ack=*/false);
  ++triggered_;
}

}  // namespace xfa
