// FaultInjector: turns a FaultPlan into scheduled, deterministic chaos.
//
// The entire chaos timeline (burst windows, link flaps, node crash/reboot
// cycles) is drawn from one dedicated RNG stream at construction and placed
// on the event scheduler, so it is a pure function of (plan, node count,
// duration) — independent of packet traffic. Per-delivery draws (corruption,
// duplication, reorder jitter, burst losses) consume the same stream in
// scheduler order, which the determinism tests pin down byte-for-byte.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "faults/plan.h"
#include "net/channel.h"
#include "sim/rng.h"
#include "sim/simulator.h"

namespace xfa {

class FaultInjector final : public FaultModel {
 public:
  /// Schedules the plan's chaos over [0, duration]. `monitor_node` is never
  /// crashed — the monitored node must keep producing audit data (its links
  /// still flap and its deliveries still corrupt). Install on the channel
  /// with Channel::set_fault_model; the injector must outlive the run.
  FaultInjector(Simulator& sim, const FaultPlan& plan, std::size_t node_count,
                NodeId monitor_node, SimTime duration);

  // FaultModel:
  bool node_down(NodeId node) const override;
  bool link_down(NodeId a, NodeId b) const override;
  bool loses_delivery() override;
  bool corrupts_delivery() override;
  bool duplicates_delivery() override;
  SimTime extra_delay() override;

  /// Chaos volume scheduled at construction (diagnostics and tests).
  struct ScheduledCounts {
    std::uint64_t bursts = 0;
    std::uint64_t flaps = 0;
    std::uint64_t crashes = 0;
  };
  const ScheduledCounts& scheduled() const { return scheduled_; }

  const FaultPlan& plan() const { return plan_; }

 private:
  std::uint64_t link_key(NodeId a, NodeId b) const;
  /// Poisson arrivals of `rate` per second over [0, duration].
  std::vector<SimTime> arrival_times(double rate, SimTime duration);

  FaultPlan plan_;
  std::size_t node_count_;
  Rng rng_;
  // Counters rather than booleans: independent fault episodes may overlap.
  std::vector<int> node_down_;
  std::unordered_map<std::uint64_t, int> links_down_;
  int active_bursts_ = 0;
  ScheduledCounts scheduled_;
};

}  // namespace xfa
