// Benign-fault plan: the knobs describing *non-malicious* network chaos —
// mobility-era MANETs lose, corrupt, duplicate and reorder frames, links
// flap, and nodes crash and reboot, all without any intruder present.
//
// The paper's core claim is that cross-feature analysis separates attacks
// from exactly this normal-but-messy behaviour, so the simulator must be
// able to produce it on demand. A FaultPlan rides on ScenarioConfig; the
// scenario runner turns an enabled plan into a FaultInjector whose entire
// chaos timeline is drawn from a dedicated seeded RNG stream and scheduled
// on the event scheduler — same seed + same plan => byte-identical traces.
#pragma once

#include <cstdint>
#include <string>

#include "sim/types.h"

namespace xfa {

struct FaultPlan {
  // --- Per-delivery frame faults (applied by the channel) ----------------
  /// Probability a delivered frame arrives corrupted; the receiver's CRC
  /// rejects it, so it behaves like a loss the sender may notice via a
  /// missing ACK.
  double corruption_rate = 0;
  /// Probability a delivered data frame is duplicated (MAC retransmission
  /// whose ACK was lost).
  double duplication_rate = 0;
  /// Extra uniform per-delivery delay in [0, reorder_jitter_s): deep
  /// interface queues and retries, which also reorder same-source frames.
  double reorder_jitter_s = 0;

  // --- Loss bursts (interference episodes, all links) --------------------
  /// Mean burst arrivals per second (Poisson); 0 disables bursts.
  double loss_burst_rate_per_s = 0;
  /// Length of one burst, seconds.
  SimTime loss_burst_duration_s = 0;
  /// Extra independent per-receiver loss probability while a burst is on.
  double loss_burst_loss_rate = 0.8;

  // --- Link flapping (obstruction/fading on one pair) ---------------------
  /// Mean flap arrivals per second (Poisson); each flap takes one random
  /// node pair down in both directions.
  double link_flap_rate_per_s = 0;
  /// How long a flapped link stays down, seconds.
  SimTime link_flap_down_s = 0;

  // --- Node churn (crash/reboot) ------------------------------------------
  /// Mean crash arrivals per second (Poisson); each crash silences one
  /// random node (never the monitored node — the trace must keep flowing).
  double node_crash_rate_per_s = 0;
  /// How long a crashed node stays down before rebooting, seconds.
  SimTime node_crash_down_s = 0;

  /// Seed of the dedicated fault stream. Part of the cache key: two plans
  /// differing only in seed are different scenarios.
  std::uint64_t fault_seed = 1337;

  /// True when any fault mechanism can fire.
  bool enabled() const;

  /// Appends the canonical key fragment (only called for enabled plans, so
  /// fault-free configs keep their pre-fault cache keys).
  void append_key(std::string& key) const;
};

/// Canonical benign-chaos preset used by tests and the robustness workload
/// axis: every mechanism on, scaled by `intensity` (1.0 = moderate chaos a
/// healthy detector should tolerate without raising its false-alarm rate).
FaultPlan benign_chaos(double intensity = 1.0);

}  // namespace xfa
