#include "faults/plan.h"

#include <sstream>

namespace xfa {
namespace {

void append_number(std::string& key, double value) {
  std::ostringstream os;
  os.precision(12);
  os << value << ';';
  key += os.str();
}

}  // namespace

bool FaultPlan::enabled() const {
  return corruption_rate > 0 || duplication_rate > 0 || reorder_jitter_s > 0 ||
         (loss_burst_rate_per_s > 0 && loss_burst_duration_s > 0 &&
          loss_burst_loss_rate > 0) ||
         (link_flap_rate_per_s > 0 && link_flap_down_s > 0) ||
         (node_crash_rate_per_s > 0 && node_crash_down_s > 0);
}

void FaultPlan::append_key(std::string& key) const {
  key += "faults:";
  append_number(key, corruption_rate);
  append_number(key, duplication_rate);
  append_number(key, reorder_jitter_s);
  append_number(key, loss_burst_rate_per_s);
  append_number(key, loss_burst_duration_s);
  append_number(key, loss_burst_loss_rate);
  append_number(key, link_flap_rate_per_s);
  append_number(key, link_flap_down_s);
  append_number(key, node_crash_rate_per_s);
  append_number(key, node_crash_down_s);
  append_number(key, static_cast<double>(fault_seed));
}

FaultPlan benign_chaos(double intensity) {
  FaultPlan plan;
  plan.corruption_rate = 0.02 * intensity;
  plan.duplication_rate = 0.02 * intensity;
  plan.reorder_jitter_s = 0.002 * intensity;
  plan.loss_burst_rate_per_s = 0.01 * intensity;  // a burst every ~100 s
  plan.loss_burst_duration_s = 5;
  plan.loss_burst_loss_rate = 0.5;
  plan.link_flap_rate_per_s = 0.02 * intensity;
  plan.link_flap_down_s = 10;
  plan.node_crash_rate_per_s = 0.002 * intensity;  // a crash every ~500 s
  plan.node_crash_down_s = 20;
  return plan;
}

}  // namespace xfa
