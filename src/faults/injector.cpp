#include "faults/injector.h"

#include <algorithm>

#include "common/check.h"

namespace xfa {

FaultInjector::FaultInjector(Simulator& sim, const FaultPlan& plan,
                             std::size_t node_count, NodeId monitor_node,
                             SimTime duration)
    : plan_(plan),
      node_count_(node_count),
      rng_(plan.fault_seed),
      node_down_(node_count, 0) {
  XFA_CHECK_GE(node_count, 2u);
  XFA_CHECK(monitor_node >= 0 &&
            static_cast<std::size_t>(monitor_node) < node_count);

  // The three timelines are drawn in a fixed order so the stream consumed by
  // per-delivery draws afterwards starts at a plan-determined offset.
  if (plan_.loss_burst_rate_per_s > 0 && plan_.loss_burst_duration_s > 0 &&
      plan_.loss_burst_loss_rate > 0) {
    for (const SimTime start :
         arrival_times(plan_.loss_burst_rate_per_s, duration)) {
      ++scheduled_.bursts;
      sim.at(start, [this] { ++active_bursts_; });
      sim.at(start + plan_.loss_burst_duration_s,
             [this] { --active_bursts_; });
    }
  }

  if (plan_.link_flap_rate_per_s > 0 && plan_.link_flap_down_s > 0) {
    for (const SimTime start :
         arrival_times(plan_.link_flap_rate_per_s, duration)) {
      const auto a = static_cast<NodeId>(rng_.uniform_int(node_count_));
      auto b = static_cast<NodeId>(rng_.uniform_int(node_count_ - 1));
      if (b >= a) ++b;
      const std::uint64_t key = link_key(a, b);
      ++scheduled_.flaps;
      sim.at(start, [this, key] { ++links_down_[key]; });
      sim.at(start + plan_.link_flap_down_s,
             [this, key] { --links_down_[key]; });
    }
  }

  if (plan_.node_crash_rate_per_s > 0 && plan_.node_crash_down_s > 0) {
    for (const SimTime start :
         arrival_times(plan_.node_crash_rate_per_s, duration)) {
      // Uniform over every node except the monitor.
      auto victim = static_cast<NodeId>(rng_.uniform_int(node_count_ - 1));
      if (victim >= monitor_node) ++victim;
      ++scheduled_.crashes;
      sim.at(start, [this, victim] {
        ++node_down_[static_cast<std::size_t>(victim)];
      });
      sim.at(start + plan_.node_crash_down_s, [this, victim] {
        --node_down_[static_cast<std::size_t>(victim)];
      });
    }
  }
}

std::vector<SimTime> FaultInjector::arrival_times(double rate,
                                                  SimTime duration) {
  std::vector<SimTime> times;
  for (SimTime t = rng_.exponential(1.0 / rate); t < duration;
       t += rng_.exponential(1.0 / rate)) {
    times.push_back(t);
  }
  return times;
}

std::uint64_t FaultInjector::link_key(NodeId a, NodeId b) const {
  const auto lo = static_cast<std::uint64_t>(std::min(a, b));
  const auto hi = static_cast<std::uint64_t>(std::max(a, b));
  return lo * node_count_ + hi;
}

bool FaultInjector::node_down(NodeId node) const {
  return node_down_[static_cast<std::size_t>(node)] > 0;
}

bool FaultInjector::link_down(NodeId a, NodeId b) const {
  if (links_down_.empty()) return false;
  const auto it = links_down_.find(link_key(a, b));
  return it != links_down_.end() && it->second > 0;
}

bool FaultInjector::loses_delivery() {
  return active_bursts_ > 0 && rng_.chance(plan_.loss_burst_loss_rate);
}

bool FaultInjector::corrupts_delivery() {
  return plan_.corruption_rate > 0 && rng_.chance(plan_.corruption_rate);
}

bool FaultInjector::duplicates_delivery() {
  return plan_.duplication_rate > 0 && rng_.chance(plan_.duplication_rate);
}

SimTime FaultInjector::extra_delay() {
  return plan_.reorder_jitter_s > 0 ? rng_.uniform(0, plan_.reorder_jitter_s)
                                    : 0.0;
}

}  // namespace xfa
